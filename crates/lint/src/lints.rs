//! The lint passes: scope raw scan findings by the manifest, check
//! `// SAFETY:` adjacency for unsafe sites, and apply the
//! `// lint: allow(<id>) <reason>` escape hatch.

use std::collections::BTreeMap;

use crate::config::{glob_match, Config, LintScope, Severity, LINT_IDS, MALFORMED_ALLOW};
use crate::source::{scan, strip, tokenize, Finding, FindingKind, Stripped};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint id (one of [`LINT_IDS`] or `malformed-allow`).
    pub lint: String,
    pub severity: Severity,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a well-formed `lint: allow` comment.
    pub suppressed: usize,
}

/// A parsed, well-formed `lint: allow(<id>) <reason>` comment. The reason
/// is validated as non-empty at parse time; only the anchor is kept.
#[derive(Debug)]
struct Allow {
    line: usize,
    id: String,
}

/// Lints one file's source text against the manifest.
#[must_use]
pub fn lint_source(rel_path: &str, text: &str, config: &Config) -> FileReport {
    let stripped = strip(text);
    let tokens = tokenize(&stripped.code_lines);
    let file_is_test = is_test_file(rel_path);
    let findings = scan(&tokens, file_is_test);

    let (allows, mut report) = collect_allows(rel_path, &stripped);
    // A trailing allow comment covers its own line; a standalone allow
    // comment (no code on its line) covers the line directly below.
    let allow_at = |id: &str, line: usize| -> bool {
        allows.iter().any(|a| {
            a.id == id
                && (a.line == line
                    || (a.line + 1 == line
                        && stripped
                            .code_lines
                            .get(a.line - 1)
                            .is_none_or(|code| code.trim().is_empty())))
        })
    };

    for finding in findings {
        let Some((lint, scope)) = scope_for(&finding, config, rel_path) else {
            continue;
        };
        if !scope_accepts(scope, &finding) {
            continue;
        }
        if let FindingKind::UnsafeSite { .. } = finding.kind {
            if has_safety_comment(&stripped, finding.line) {
                continue;
            }
        }
        if allow_at(lint, finding.line) {
            report.suppressed += 1;
            continue;
        }
        report.diagnostics.push(Diagnostic {
            file: rel_path.to_string(),
            line: finding.line,
            lint: lint.to_string(),
            severity: scope.severity,
            message: message_for(&finding),
        });
    }
    report.diagnostics.sort_by(|a, b| (a.line, &a.lint).cmp(&(b.line, &b.lint)));
    report
}

/// Which lint (if any) a finding kind belongs to, when the file is in
/// that lint's configured paths.
fn scope_for<'c>(
    finding: &Finding,
    config: &'c Config,
    rel_path: &str,
) -> Option<(&'static str, &'c LintScope)> {
    let lint = match finding.kind {
        FindingKind::Alloc { .. } => "hot-path-alloc",
        FindingKind::PanicCall { .. } => "no-panic-serving",
        FindingKind::UnsafeSite { .. } => "unsafe-audit",
        FindingKind::Nondet { .. } => "determinism",
        FindingKind::BareWait { .. } => "condvar-loop",
    };
    debug_assert!(LINT_IDS.contains(&lint));
    let scope = config.lints.get(lint)?;
    scope.paths.iter().any(|p| glob_match(p, rel_path)).then_some((lint, scope))
}

/// Per-finding scope rules beyond path matching.
fn scope_accepts(scope: &LintScope, finding: &Finding) -> bool {
    match finding.kind {
        // Unsafe code needs a SAFETY argument even in tests; a bare wait
        // is a deadlock seed wherever it appears.
        FindingKind::UnsafeSite { .. } | FindingKind::BareWait { .. } => true,
        // Hot-path, panic, and determinism rules guard production code
        // only — tests may allocate, unwrap, and time freely.
        _ if finding.in_test => false,
        FindingKind::Alloc { .. } if !scope.functions.is_empty() => {
            finding.func.as_deref().is_some_and(|f| scope.functions.iter().any(|name| name == f))
        }
        _ => true,
    }
}

fn message_for(finding: &Finding) -> String {
    match &finding.kind {
        FindingKind::Alloc { what } => {
            let func = finding.func.as_deref().unwrap_or("?");
            format!("`{what}` allocates inside designated hot path (fn `{func}`)")
        }
        FindingKind::PanicCall { what } => {
            format!("`{what}` can panic inside the serving runtime; return an error instead")
        }
        FindingKind::UnsafeSite { kind } => {
            format!("{kind} without an adjacent `// SAFETY:` comment")
        }
        FindingKind::Nondet { what } => {
            format!("`{what}` is nondeterministic in a bit-identity crate")
        }
        FindingKind::BareWait { what } => {
            format!("`Condvar::{what}` outside a `while`/`loop` predicate re-check")
        }
    }
}

/// Whole files that are test/bench/demo context by location.
fn is_test_file(rel_path: &str) -> bool {
    rel_path.split('/').any(|segment| matches!(segment, "tests" | "benches" | "examples"))
}

/// Finds every `lint: allow` comment; malformed ones become diagnostics
/// immediately (they must never silently fail to suppress).
fn collect_allows(rel_path: &str, stripped: &Stripped) -> (Vec<Allow>, FileReport) {
    let mut allows = Vec::new();
    let mut report = FileReport::default();
    for comment in &stripped.comments {
        // A directive must *start* the comment (`// lint: allow(...)`),
        // so prose that merely mentions the grammar never matches. Doc
        // comments arrive as `/ lint: ...` (one slash is part of the
        // comment text) and are tolerated.
        let text = comment.text.trim_start().trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let Some(rest) = rest.trim_start().strip_prefix("allow") else {
            continue;
        };
        let mut bad = |why: &str| {
            report.diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: comment.line,
                lint: MALFORMED_ALLOW.to_string(),
                severity: Severity::Deny,
                message: format!("malformed `lint: allow` comment: {why}"),
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            bad("expected `(<lint-id>)` after `allow`");
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unterminated `(<lint-id>)`");
            continue;
        };
        let id = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim().to_string();
        if !LINT_IDS.contains(&id.as_str()) {
            bad(&format!("unknown lint id `{id}`"));
            continue;
        }
        if reason.is_empty() {
            bad("a justification is required after the `(<lint-id>)`");
            continue;
        }
        let _justification = reason; // validated non-empty above
        allows.push(Allow { line: comment.line, id });
    }
    (allows, report)
}

/// True when an unsafe site at `line` carries a SAFETY justification: a
/// `// SAFETY:` (or `/// # Safety` doc section) comment on the same line
/// or in the contiguous comment/attribute block directly above.
fn has_safety_comment(stripped: &Stripped, line: usize) -> bool {
    let mentions_safety = |l: usize| {
        stripped
            .comments
            .iter()
            .filter(|c| c.line == l)
            .any(|c| c.text.contains("SAFETY:") || c.text.contains("# Safety"))
    };
    if mentions_safety(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let code = stripped.code_lines.get(l - 1).map_or("", |s| s.as_str()).trim();
        let has_comment = stripped.comments.iter().any(|c| c.line == l);
        let is_attr = code.starts_with('#') || code.ends_with(']');
        if mentions_safety(l) {
            return true;
        }
        if (code.is_empty() && has_comment) || is_attr {
            l -= 1;
            continue;
        }
        break;
    }
    false
}

/// Groups diagnostics per lint id (for summaries).
#[must_use]
pub fn count_by_lint(diagnostics: &[Diagnostic]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for d in diagnostics {
        *counts.entry(d.lint.clone()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(toml: &str) -> Config {
        Config::parse(toml).unwrap()
    }

    #[test]
    fn hot_path_scopes_to_listed_functions() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"src/a.rs\"]\nfunctions = [\"hot\"]\n");
        let src = "fn hot() { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reason_reports() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"**\"]\n");
        let ok = "fn f() {\n    // lint: allow(hot-path-alloc) result vec is handed to caller\n    let v = Vec::new();\n}\n";
        let report = lint_source("src/a.rs", ok, &cfg);
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 1);

        let bad = "fn f() {\n    let v = Vec::new(); // lint: allow(hot-path-alloc)\n}\n";
        let report = lint_source("src/a.rs", bad, &cfg);
        let lints: Vec<&str> = report.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(lints, vec!["hot-path-alloc", "malformed-allow"]);
    }

    #[test]
    fn allow_of_wrong_id_does_not_suppress() {
        let cfg = config("[lints.hot-path-alloc]\npaths = [\"**\"]\n");
        let src =
            "fn f() {\n    // lint: allow(determinism) wrong id\n    let v = Vec::new();\n}\n";
        let report = lint_source("src/a.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].lint, "hot-path-alloc");
    }

    #[test]
    fn safety_comment_satisfies_unsafe_audit() {
        let cfg = config("[lints.unsafe-audit]\npaths = [\"**\"]\n");
        let good = "// SAFETY: bounds checked above.\nlet x = unsafe { *p };\n";
        assert!(lint_source("src/a.rs", good, &cfg).diagnostics.is_empty());
        let doc = "/// Reads a byte.\n///\n/// # Safety\n///\n/// `p` must be valid.\n#[inline]\npub unsafe fn read(p: *const u8) -> u8 { unsafe { *p } }\n";
        let report = lint_source("src/a.rs", doc, &cfg);
        // The decl is documented; the inner block on the same line sees
        // the same doc block.
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
        let bad = "let x = unsafe { *p };\n";
        assert_eq!(lint_source("src/a.rs", bad, &cfg).diagnostics.len(), 1);
    }

    #[test]
    fn unsafe_audit_applies_even_in_test_files() {
        let cfg = config("[lints.unsafe-audit]\npaths = [\"**\"]\n");
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(lint_source("crates/x/tests/t.rs", src, &cfg).diagnostics.len(), 1);
    }

    #[test]
    fn determinism_skips_test_modules() {
        let cfg = config("[lints.determinism]\npaths = [\"**\"]\n");
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        let report = lint_source("crates/memsim/src/lib.rs", src, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].line, 1);
    }
}
