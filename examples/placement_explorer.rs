//! Placement explorer: watch Algorithm 1 work — compare no-merge, the
//! heuristic, and brute force on a downscaled model, then print the chosen
//! bank map for the production model.
//!
//! Run with: `cargo run --example placement_explorer`

use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::{MemoryConfig, MemoryKind};
use microrec_placement::{
    brute_force_search, heuristic_search, optimality_gap, AllocStrategy, HeuristicOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A downscaled instance small enough for exhaustive search: 8 tables,
    // 3 DRAM channels.
    let toy = ModelSpec::new(
        "toy",
        (0..8).map(|i| TableSpec::new(format!("t{i}"), 150 + 80 * i as u64, 4)).collect(),
        vec![64],
        1,
    );
    let mut cramped = MemoryConfig::fpga_without_hbm(3);
    cramped.banks.retain(|b| b.id.kind.is_dram());

    let none = heuristic_search(
        &toy,
        &cramped,
        Precision::F32,
        &HeuristicOptions { allow_merge: false, ..Default::default() },
    )?;
    let heur = heuristic_search(&toy, &cramped, Precision::F32, &HeuristicOptions::default())?;
    let brute = brute_force_search(&toy, &cramped, Precision::F32, AllocStrategy::RoundRobin)?;
    println!("downscaled instance (8 tables on 3 channels):");
    println!("  no merging : {} ({} rounds)", none.cost.lookup_latency, none.cost.dram_rounds);
    println!(
        "  heuristic  : {} ({} rounds, {} pairs, {} solutions tried)",
        heur.cost.lookup_latency,
        heur.cost.dram_rounds,
        heur.plan.merge.groups.len(),
        heur.evaluated
    );
    println!(
        "  brute force: {} ({} solutions tried) -> heuristic gap {:.3}x",
        brute.cost.lookup_latency,
        brute.evaluated,
        optimality_gap(&heur.cost, &brute.cost)
    );

    // The real thing: the small production model on the U280.
    let model = ModelSpec::small_production();
    let out = heuristic_search(&model, &MemoryConfig::u280(), Precision::F32, &Default::default())?;
    println!("\n{} on the U280:", model.name);
    println!(
        "  {} physical tables, lookup {}, storage {:.2}% of baseline",
        out.plan.num_tables(),
        out.cost.lookup_latency,
        out.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64 * 100.0
    );
    println!("  merged pairs:");
    for group in &out.plan.merge.groups {
        let names: Vec<&str> = group.iter().map(|&i| model.tables[i].name.as_str()).collect();
        println!("    {}", names.join(" x "));
    }
    for kind in [MemoryKind::Bram, MemoryKind::Ddr] {
        let tables: Vec<&str> = out
            .plan
            .placed
            .iter()
            .filter(|t| t.banks[0].kind == kind)
            .map(|t| t.spec.name.as_str())
            .collect();
        println!("  {kind}: {} tables: {}", tables.len(), tables.join(", "));
    }
    Ok(())
}
