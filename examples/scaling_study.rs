//! Scaling study: how MicroRec's lookup latency, DRAM rounds, and the
//! Cartesian-product benefit move as the model's table count grows — on
//! synthetic production-like model families (§2.2's size skew at every
//! scale).
//!
//! Run with: `cargo run --example scaling_study`

use microrec_embedding::{synthetic_model, Precision, SyntheticModelConfig};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, HeuristicOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::u280();
    println!(
        "{:>7} {:>9} {:>7} {:>11} {:>7} {:>9} {:>9}",
        "tables", "no-merge", "rounds", "cartesian", "rounds", "benefit", "overhead"
    );
    for tables in [20usize, 34, 47, 68, 98, 140, 200] {
        let model = synthetic_model(&SyntheticModelConfig {
            name: format!("scale{tables}"),
            tables,
            target_bytes: 2_000_000_000,
            hidden: vec![1024, 512, 256],
            lookups_per_table: 1,
            seed: 42,
        })?;
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )?;
        let merged =
            heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())?;
        let benefit = base.cost.lookup_latency.as_ns() / merged.cost.lookup_latency.as_ns();
        let overhead =
            (merged.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64 - 1.0)
                * 100.0;
        println!(
            "{:>7} {:>7.0}ns {:>7} {:>9.0}ns {:>7} {:>8.2}x {:>8.2}%",
            tables,
            base.cost.lookup_latency.as_ns(),
            base.cost.dram_rounds,
            merged.cost.lookup_latency.as_ns(),
            merged.cost.dram_rounds,
            benefit,
            overhead
        );
    }
    println!("\nReading: below 34 tables (the channel count) merging buys nothing —");
    println!("every table already has its own channel. The benefit is largest just");
    println!("past a round boundary (47 tables: 1.7x, eliminating a nearly-empty");
    println!("second round) and vanishes at exact multiples of 34 (68 tables: a");
    println!("whole round of pairs would be needed). Storage overhead rises as");
    println!("merging digs deeper into the size distribution — the §3.3 trade-off");
    println!("at every scale.");
    Ok(())
}
