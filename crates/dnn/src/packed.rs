//! Pre-packed MLP for batched, allocation-free inference.
//!
//! [`PackedMlp`] quantizes and transposes every layer's weights **once**
//! (at precision `T`), then serves batches through [`gemm_packed`] into a
//! caller-provided [`ScratchArena`] — the steady-state serving loop never
//! allocates and never re-converts a weight. Because the packed kernel and
//! the single-item GEMV share one dot-product routine (identical lane
//! structure, and `T::from_f32(w)` gives the same element whether applied
//! at pack time or per MAC), `forward_batch_into` is **bit-identical** to
//! running [`Mlp::forward`] item by item.

use crate::error::DnnError;
use crate::fixed::FixedNum;
use crate::gemm::{gemm_packed, PackedB};
use crate::layer::Activation;
use crate::mlp::Mlp;
use crate::scratch::ScratchArena;

/// One packed dense layer: pre-quantized, pre-transposed weights plus
/// bias and activation — the unit of work a dataflow-pipeline stage owns.
///
/// [`PackedLayer::forward_batch`] is the *single* implementation of
/// per-layer forwarding on the packed path; [`PackedMlp`]'s whole-network
/// passes and the core crate's staged pipeline both drive it, so the two
/// execution modes cannot drift apart numerically.
#[derive(Debug, Clone)]
pub struct PackedLayer<T> {
    weights: PackedB<T>,
    bias: Vec<T>,
    activation: Activation,
}

impl<T: FixedNum> PackedLayer<T> {
    /// Input width of this layer.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.weights.k()
    }

    /// Output width of this layer.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.weights.n()
    }

    /// Forwards `batch` row-major input vectors through this layer into
    /// `out` (resized to `batch * output_dim`): packed GEMM, bias add,
    /// activation. Allocation-free once `out` has capacity.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `input.len()` is not
    /// `batch * input_dim`.
    pub fn forward_batch(
        &self,
        input: &[T],
        batch: usize,
        out: &mut Vec<T>,
    ) -> Result<(), DnnError> {
        let width = self.weights.n();
        out.resize(batch * width, T::ZERO);
        gemm_packed(input, batch, &self.weights, out)?;
        for row in out.chunks_exact_mut(width) {
            for (slot, &b) in row.iter_mut().zip(&self.bias) {
                let pre = *slot + b;
                *slot = match self.activation {
                    Activation::Relu => pre.relu(),
                    Activation::Identity => pre,
                    Activation::Sigmoid => T::from_f32(Activation::Sigmoid.apply(pre.to_f32())),
                };
            }
        }
        Ok(())
    }
}

/// Forwards `data` through `layers` in order, ping-ponging between
/// `data` and `scratch`; the final activation ends up back in `data`.
///
/// This is the kernel of a *fused* dataflow-pipeline stage: a stage that
/// owns several consecutive layers runs them back to back on one thread
/// with a single reusable scratch buffer (one per lane), instead of
/// paying a FIFO hop between layers. Driving [`PackedLayer::forward_batch`]
/// per layer keeps it bit-identical to the unfused per-stage path.
///
/// # Errors
///
/// Returns [`DnnError::ShapeMismatch`] if `data.len()` is not
/// `batch * input_dim` of the next layer at any step.
pub fn forward_layers<T: FixedNum>(
    layers: &[PackedLayer<T>],
    batch: usize,
    data: &mut Vec<T>,
    scratch: &mut Vec<T>,
) -> Result<(), DnnError> {
    for layer in layers {
        layer.forward_batch(data, batch, scratch)?;
        std::mem::swap(data, scratch);
    }
    Ok(())
}

/// An [`Mlp`] snapshot with per-layer pre-quantized, pre-transposed
/// weights: the batched inference fast path.
///
/// # Examples
///
/// ```
/// use microrec_dnn::{Mlp, PackedMlp, ScratchArena};
///
/// let mlp = Mlp::top_mlp(32, &[64, 16], 9)?;
/// let packed: PackedMlp<f32> = PackedMlp::pack(&mlp);
/// let mut arena = ScratchArena::new();
/// packed.warm(8, &mut arena); // one-off: serve batches up to 8 allocation-free
///
/// let batch: Vec<f32> = (0..8 * 32).map(|i| (i as f32 * 0.1).sin()).collect();
/// let ctrs = packed.forward_batch_into(&batch, 8, &mut arena)?;
/// assert_eq!(ctrs.len(), 8);
/// # Ok::<(), microrec_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PackedMlp<T> {
    layers: Vec<PackedLayer<T>>,
    input_dim: usize,
    output_dim: usize,
    max_width: usize,
}

impl<T: FixedNum> PackedMlp<T> {
    /// Packs `mlp` at precision `T`: one pass over each weight matrix and
    /// bias vector, amortized over every subsequent batch.
    #[must_use]
    pub fn pack(mlp: &Mlp) -> Self {
        let layers: Vec<PackedLayer<T>> = mlp
            .layers()
            .iter()
            .map(|layer| PackedLayer {
                // A dense layer's row-major [out x in] weight matrix *is*
                // the packed Bᵀ layout, so packing is a quantizing copy.
                weights: PackedB::from_transposed(layer.weights()),
                // lint: allow(transitive-hot-path-alloc) one-time pack of the bias vector
                bias: layer.bias().iter().map(|&b| T::from_f32(b)).collect(),
                activation: layer.activation(),
            })
            // lint: allow(transitive-hot-path-alloc) one-time pack of the layer stack
            .collect();
        PackedMlp {
            layers,
            input_dim: mlp.input_dim(),
            output_dim: mlp.output_dim(),
            max_width: mlp.max_width(),
        }
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width (1 for a CTR head).
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Widest activation vector in the network (including the input).
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.max_width
    }

    /// Warms `arena` so batches up to `batch` run allocation-free.
    pub fn warm(&self, batch: usize, arena: &mut ScratchArena<T>) {
        arena.warm(batch.max(1) * self.max_width);
    }

    /// Batched forward pass: `inputs` is `batch` row-major feature vectors
    /// back to back; the returned slice is `batch * output_dim` results in
    /// input order, borrowed from `arena`.
    ///
    /// Results are bit-identical to [`Mlp::forward`] on each row at the
    /// same precision `T`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `inputs.len()` is not
    /// `batch * input_dim`.
    pub fn forward_batch_into<'a>(
        &self,
        inputs: &[T],
        batch: usize,
        arena: &'a mut ScratchArena<T>,
    ) -> Result<&'a [T], DnnError> {
        if inputs.len() != batch * self.input_dim {
            return Err(DnnError::ShapeMismatch {
                context: "PackedMlp batch input",
                expected: batch * self.input_dim,
                actual: inputs.len(),
            });
        }
        arena.load(inputs);
        for layer in &self.layers {
            let (front, back) = arena.buffers();
            layer.forward_batch(front, batch, back)?;
            arena.swap();
        }
        Ok(arena.front())
    }

    /// Single-item forward pass through the packed path (a batch of one).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for a wrong input width.
    pub fn forward_into<'a>(
        &self,
        input: &[T],
        arena: &'a mut ScratchArena<T>,
    ) -> Result<&'a [T], DnnError> {
        self.forward_batch_into(input, 1, arena)
    }

    /// Number of packed layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The packed layers, input-first.
    #[must_use]
    pub fn layers(&self) -> &[PackedLayer<T>] {
        &self.layers
    }

    /// Forwards through layer `index` alone (see
    /// [`PackedLayer::forward_batch`]); chaining `0..num_layers` over a
    /// ping-pong buffer pair reproduces [`PackedMlp::forward_batch_into`]
    /// bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for an out-of-range layer
    /// index or a wrong input width.
    pub fn forward_layer(
        &self,
        index: usize,
        input: &[T],
        batch: usize,
        out: &mut Vec<T>,
    ) -> Result<(), DnnError> {
        let layer = self.layers.get(index).ok_or(DnnError::ShapeMismatch {
            context: "PackedMlp::forward_layer index",
            expected: self.layers.len(),
            actual: index,
        })?;
        layer.forward_batch(input, batch, out)
    }

    /// Decomposes the network into its layers, so each stage of a
    /// dataflow pipeline can own exactly one layer's packed weights.
    #[must_use]
    pub fn into_layers(self) -> Vec<PackedLayer<T>> {
        self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{Q16, Q32};

    fn mlp() -> Mlp {
        Mlp::top_mlp(24, &[40, 17], 11).unwrap()
    }

    fn features(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.17).sin() * 0.6).collect()
    }

    #[test]
    fn batched_is_bit_identical_to_sequential_f32() {
        let m = mlp();
        let packed: PackedMlp<f32> = PackedMlp::pack(&m);
        let mut arena = ScratchArena::new();
        for batch in [1usize, 7, 64] {
            let inputs = features(batch * 24);
            let out = packed.forward_batch_into(&inputs, batch, &mut arena).unwrap().to_vec();
            assert_eq!(out.len(), batch);
            for (i, chunk) in inputs.chunks_exact(24).enumerate() {
                let single = m.forward::<f32>(chunk).unwrap();
                assert_eq!(out[i].to_bits(), single[0].to_bits(), "batch {batch} item {i}");
            }
        }
    }

    #[test]
    fn batched_is_bit_identical_to_sequential_fixed() {
        let m = mlp();
        let packed16: PackedMlp<Q16> = PackedMlp::pack(&m);
        let packed32: PackedMlp<Q32> = PackedMlp::pack(&m);
        let mut a16 = ScratchArena::new();
        let mut a32 = ScratchArena::new();
        for batch in [1usize, 7, 64] {
            let raw = features(batch * 24);
            let q16: Vec<Q16> = raw.iter().map(|&v| Q16::from_f32(v)).collect();
            let q32: Vec<Q32> = raw.iter().map(|&v| Q32::from_f32(v)).collect();
            let out16 = packed16.forward_batch_into(&q16, batch, &mut a16).unwrap().to_vec();
            let out32 = packed32.forward_batch_into(&q32, batch, &mut a32).unwrap().to_vec();
            for i in 0..batch {
                let s16 = m.forward::<Q16>(&q16[i * 24..(i + 1) * 24]).unwrap();
                let s32 = m.forward::<Q32>(&q32[i * 24..(i + 1) * 24]).unwrap();
                assert_eq!(out16[i], s16[0], "Q16 batch {batch} item {i}");
                assert_eq!(out32[i], s32[0], "Q32 batch {batch} item {i}");
            }
        }
    }

    #[test]
    fn warm_then_serve_within_capacity() {
        let m = mlp();
        let packed: PackedMlp<f32> = PackedMlp::pack(&m);
        assert_eq!(packed.input_dim(), 24);
        assert_eq!(packed.output_dim(), 1);
        assert_eq!(packed.max_width(), 40);
        let mut arena = ScratchArena::new();
        packed.warm(16, &mut arena);
        assert!(arena.capacity() >= 16 * 40);
        let inputs = features(16 * 24);
        let out = packed.forward_batch_into(&inputs, 16, &mut arena).unwrap();
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn chained_forward_layer_is_bit_identical_to_whole_network() {
        // The staged pipeline drives layers one at a time; ping-ponging
        // forward_layer over plain Vecs must match both the arena-based
        // whole-network pass and the unpacked reference, bit for bit.
        fn check<T: FixedNum>(m: &Mlp, raw: &[f32]) {
            let packed: PackedMlp<T> = PackedMlp::pack(m);
            assert_eq!(packed.num_layers(), m.layers().len());
            let input: Vec<T> = raw.iter().map(|&v| T::from_f32(v)).collect();

            let mut current = input.clone();
            let mut next: Vec<T> = Vec::new();
            for (index, layer) in packed.layers().iter().enumerate() {
                assert_eq!(layer.input_dim(), current.len());
                packed.forward_layer(index, &current, 1, &mut next).unwrap();
                assert_eq!(next.len(), layer.output_dim());
                std::mem::swap(&mut current, &mut next);
            }

            let mut arena = ScratchArena::new();
            let whole = packed.forward_into(&input, &mut arena).unwrap();
            let reference = m.forward::<T>(&input).unwrap();
            assert_eq!(current, whole, "forward_layer chain vs forward_batch_into");
            assert_eq!(current, reference, "forward_layer chain vs Mlp::forward");
        }

        let m = mlp();
        let raw = features(24);
        check::<f32>(&m, &raw);
        check::<Q16>(&m, &raw);
        check::<Q32>(&m, &raw);
    }

    #[test]
    fn forward_layer_rejects_bad_index_and_width() {
        let packed: PackedMlp<f32> = PackedMlp::pack(&mlp());
        let mut out = Vec::new();
        assert!(packed.forward_layer(3, &[0.0; 17], 1, &mut out).is_err());
        assert!(packed.forward_layer(0, &[0.0; 23], 1, &mut out).is_err());
    }

    #[test]
    fn shape_errors() {
        let packed: PackedMlp<f32> = PackedMlp::pack(&mlp());
        let mut arena = ScratchArena::new();
        assert!(packed.forward_batch_into(&[0.0; 23], 1, &mut arena).is_err());
        assert!(packed.forward_into(&[0.0; 25], &mut arena).is_err());
    }
}
