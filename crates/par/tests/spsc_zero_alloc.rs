//! Proves the SPSC ring's push/pop endpoints are allocation-free at
//! steady state: after construction, moving items through the ring —
//! try and blocking variants, across wraparound — never touches the
//! global allocator.
//!
//! A single `#[test]` keeps the process to one test thread, so the
//! counting allocator's delta is attributable to the code under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator and
// only adds a relaxed atomic increment, so `GlobalAlloc`'s contract holds
// exactly as it does for `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we pass the
    // layout through to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us, forwarded to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with this
    // layout — which means it came from `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair is valid for `System` per the above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; all three
    // arguments are forwarded to `System` untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_push_pop_never_allocates() {
    use microrec_par::SpscRing;

    // Construction allocates (slot array); steady state must not.
    let ring: SpscRing<[u64; 4]> = SpscRing::new(4);

    // Warm-up lap, then measure single-threaded try-endpoint cycles
    // through many wraparounds of the slot index.
    for i in 0..8u64 {
        ring.try_push([i; 4]).unwrap();
        assert!(ring.try_pop().is_some());
    }
    let before = allocation_count();
    for i in 0..10_000u64 {
        ring.try_push([i; 4]).unwrap();
        ring.try_push([i + 1; 4]).unwrap();
        assert!(ring.try_pop().is_some());
        assert!(ring.try_pop().is_some());
    }
    assert_eq!(allocation_count() - before, 0, "try_push/try_pop allocated at steady state");

    // Blocking endpoints on their uncontended fast path (no parking).
    let before = allocation_count();
    for i in 0..10_000u64 {
        ring.push_blocking([i; 4]).unwrap();
        assert!(ring.pop_blocking().is_some());
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "push_blocking/pop_blocking allocated at steady state"
    );

    // Cross-thread streaming, including full/empty parking transitions.
    // On Linux, std's Mutex/Condvar are futex-based and do not allocate
    // on wait, so the whole contended path must stay at zero too.
    let before = allocation_count();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..20_000u64 {
                ring.push_blocking([i; 4]).unwrap();
            }
            ring.close();
        });
        let mut n = 0u64;
        while ring.pop_blocking().is_some() {
            n += 1;
        }
        assert_eq!(n, 20_000);
    });
    // The spawned-thread setup allocates (stack, JoinHandle); bound the
    // total rather than demanding zero, so the assertion pins the
    // per-item cost at none while tolerating the one-off spawn cost.
    let spent = allocation_count() - before;
    assert!(
        spent < 64,
        "cross-thread streaming of 20k items must not allocate per item (saw {spent} allocations)"
    );
}
