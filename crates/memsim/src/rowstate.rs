//! DRAM row-buffer state and page policies.
//!
//! The base cost model charges every embedding read a full row activation
//! — the right default for the *random* access patterns recommendation
//! inference produces (§2.2 cites Ke et al.'s high miss rates). Real DRAM
//! keeps the last-activated row latched in each bank's row buffer, so
//! *skewed* traffic (hot users/items under a Zipf law) occasionally hits
//! an open row and skips the activation. This module adds that state so
//! the engine can quantify how much locality CPU-style caching could ever
//! recover — and why MicroRec's parallelism wins regardless.

use crate::bank::BankId;
use crate::time::SimTime;
use crate::timing::MemTiming;

/// DRAM page (row-buffer) management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Close the row after every access: every read pays the activation.
    /// This is the conservative default matching the paper's model.
    #[default]
    ClosedPage,
    /// Leave the row open: consecutive reads to the same row hit the
    /// buffer and pay only the column access + burst.
    OpenPage,
}

/// A read with an explicit byte address inside its bank (needed for
/// row-buffer modelling; the plain [`ReadRequest`](crate::ReadRequest)
/// carries only a size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressedRead {
    /// Target bank.
    pub bank: BankId,
    /// Byte offset of the first byte inside the bank.
    pub offset: u64,
    /// Payload size in bytes.
    pub bytes: u32,
}

impl AddressedRead {
    /// Creates an addressed read.
    #[must_use]
    pub const fn new(bank: BankId, offset: u64, bytes: u32) -> Self {
        AddressedRead { bank, offset, bytes }
    }

    /// The DRAM row this read starts in, under `timing`'s row size.
    /// Returns `None` for row-less technologies (on-chip).
    #[must_use]
    pub fn row(&self, timing: &MemTiming) -> Option<u64> {
        if timing.row_bytes == 0 {
            None
        } else {
            Some(self.offset / u64::from(timing.row_bytes))
        }
    }
}

/// Row-buffer state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowState {
    open_row: Option<u64>,
}

impl RowState {
    /// A bank with no open row.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Services one read under `policy`, returning its latency and whether
    /// it hit the open row.
    pub fn service(
        &mut self,
        read: &AddressedRead,
        timing: &MemTiming,
        policy: RowPolicy,
    ) -> (SimTime, bool) {
        let row = read.row(timing);
        let hit = match (policy, row, self.open_row) {
            (RowPolicy::OpenPage, Some(r), Some(open)) => r == open,
            _ => false,
        };
        let t = if hit {
            timing.access_time_row_hit(read.bytes)
        } else {
            timing.access_time(read.bytes)
        };
        self.open_row = match policy {
            RowPolicy::OpenPage => row,
            RowPolicy::ClosedPage => None,
        };
        (t, hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::MemoryKind;

    fn hbm0() -> BankId {
        BankId::new(MemoryKind::Hbm, 0)
    }

    #[test]
    fn row_math() {
        let t = MemTiming::hbm2_vitis(); // 1024-byte rows
        let r = AddressedRead::new(hbm0(), 2048, 64);
        assert_eq!(r.row(&t), Some(2));
        let r = AddressedRead::new(hbm0(), 1023, 64);
        assert_eq!(r.row(&t), Some(0));
        let ocm = MemTiming::onchip_fpga();
        assert_eq!(r.row(&ocm), None);
    }

    #[test]
    fn closed_page_never_hits() {
        let t = MemTiming::hbm2_vitis();
        let mut state = RowState::new();
        let read = AddressedRead::new(hbm0(), 0, 64);
        for _ in 0..3 {
            let (lat, hit) = state.service(&read, &t, RowPolicy::ClosedPage);
            assert!(!hit);
            assert_eq!(lat, t.access_time(64));
        }
        assert_eq!(state.open_row(), None);
    }

    #[test]
    fn open_page_hits_repeated_row() {
        let t = MemTiming::hbm2_vitis();
        let mut state = RowState::new();
        let read = AddressedRead::new(hbm0(), 512, 64);
        let (first, hit) = state.service(&read, &t, RowPolicy::OpenPage);
        assert!(!hit, "cold buffer misses");
        let (second, hit) = state.service(&read, &t, RowPolicy::OpenPage);
        assert!(hit, "same row hits");
        assert!(second < first);
        assert_eq!(second, t.access_time_row_hit(64));
    }

    #[test]
    fn open_page_misses_on_row_change() {
        let t = MemTiming::hbm2_vitis();
        let mut state = RowState::new();
        state.service(&AddressedRead::new(hbm0(), 0, 64), &t, RowPolicy::OpenPage);
        let (lat, hit) =
            state.service(&AddressedRead::new(hbm0(), 4096, 64), &t, RowPolicy::OpenPage);
        assert!(!hit);
        assert_eq!(lat, t.access_time(64));
        assert_eq!(state.open_row(), Some(4));
    }

    #[test]
    fn onchip_never_tracks_rows() {
        let t = MemTiming::onchip_fpga();
        let mut state = RowState::new();
        let read = AddressedRead::new(BankId::new(MemoryKind::Bram, 0), 0, 16);
        let (_, hit) = state.service(&read, &t, RowPolicy::OpenPage);
        assert!(!hit);
        let (_, hit) = state.service(&read, &t, RowPolicy::OpenPage);
        assert!(!hit, "row-less memory cannot hit");
    }
}
