//! Proves the batched fast path performs zero heap allocations in steady
//! state: after one warm-up call, repeated `forward_batch_into` /
//! `forward_with` calls never touch the global allocator.
//!
//! A single `#[test]` keeps the process to one test thread, so the
//! counting allocator's delta is attributable to the code under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator and
// only adds a relaxed atomic increment, so `GlobalAlloc`'s contract holds
// exactly as it does for `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we pass the
    // layout through to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us, forwarded to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with this
    // layout — which means it came from `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair is valid for `System` per the above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; all three
    // arguments are forwarded to `System` untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_forward_never_allocates() {
    use microrec_dnn::{Mlp, PackedMlp, ScratchArena, Q16};

    let mlp = Mlp::top_mlp(64, &[128, 64], 7).unwrap();
    let batch = 64usize;
    let inputs: Vec<f32> = (0..batch * 64).map(|i| ((i as f32) * 0.013).sin() * 0.5).collect();

    // Batched packed path, f32.
    let packed: PackedMlp<f32> = PackedMlp::pack(&mlp);
    let mut arena = ScratchArena::new();
    packed.warm(batch, &mut arena);
    let warm = packed.forward_batch_into(&inputs, batch, &mut arena).unwrap().to_vec();
    let before = allocation_count();
    for _ in 0..32 {
        let out = packed.forward_batch_into(&inputs, batch, &mut arena).unwrap();
        assert_eq!(out.len(), warm.len());
    }
    assert_eq!(allocation_count() - before, 0, "forward_batch_into allocated in steady state");

    // Batched packed path, Q16 (a different element size through the arena).
    let q: Vec<Q16> = inputs.iter().map(|&v| Q16::from_f32(v)).collect();
    let packed_q: PackedMlp<Q16> = PackedMlp::pack(&mlp);
    let mut arena_q = ScratchArena::new();
    packed_q.warm(batch, &mut arena_q);
    packed_q.forward_batch_into(&q, batch, &mut arena_q).unwrap();
    let before = allocation_count();
    for _ in 0..32 {
        packed_q.forward_batch_into(&q, batch, &mut arena_q).unwrap();
    }
    assert_eq!(allocation_count() - before, 0, "Q16 forward_batch_into allocated in steady state");

    // Single-query scratch path on the unpacked Mlp.
    let x = &inputs[..64];
    let mut arena1 = ScratchArena::new();
    arena1.warm(mlp.max_width());
    mlp.forward_with::<f32>(x, &mut arena1).unwrap();
    let before = allocation_count();
    for _ in 0..32 {
        mlp.forward_with::<f32>(x, &mut arena1).unwrap();
    }
    assert_eq!(allocation_count() - before, 0, "forward_with allocated in steady state");
}
