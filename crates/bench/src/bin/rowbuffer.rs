//! Extension study: DRAM row-buffer locality under skewed traffic.
//!
//! The paper's model charges every lookup a full row activation — correct
//! for uniform traffic. Production traffic is Zipf-skewed, so an open-page
//! policy occasionally hits an open row. This bench measures how much
//! that locality is actually worth on the accelerator (spoiler: little —
//! each bank interleaves lookups of *different* queries to the same table,
//! so only immediate same-row repeats hit), feeding per-query lookup times
//! into the event-driven pipeline simulator.

use microrec_accel::FlowSim;
use microrec_bench::print_table;
use microrec_core::MicroRec;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{MemoryKind, RowPolicy, SimTime};
use microrec_workload::{QueryGenConfig, QueryGenerator};

fn main() {
    let model = ModelSpec::small_production();
    let queries = 2_000usize;
    let mut rows = Vec::new();

    for (label, zipf) in [("uniform", 0.0), ("zipf-0.9", 0.9), ("zipf-1.2", 1.2)] {
        for policy in [RowPolicy::ClosedPage, RowPolicy::OpenPage] {
            let mut engine = MicroRec::builder(model.clone())
                .precision(Precision::Fixed16)
                .build()
                .expect("engine");
            engine.set_row_policy(policy);
            let mut gen =
                QueryGenerator::new(&model, QueryGenConfig { zipf_exponent: zipf, seed: 99 })
                    .expect("generator");

            let mut lookup_times = Vec::with_capacity(queries);
            for _ in 0..queries {
                let q = gen.next_query();
                lookup_times.push(engine.measure_lookup(&q).expect("lookup"));
            }
            let mean: SimTime = lookup_times.iter().copied().sum::<SimTime>() / queries as u64;
            let dram_hits = engine
                .memory()
                .stats()
                .by_kind(MemoryKind::Hbm)
                .row_hit_rate()
                .max(engine.memory().stats().by_kind(MemoryKind::Ddr).row_hit_rate());
            // Feed the measured per-query lookup times into the event-driven
            // pipeline: does locality move end-to-end throughput?
            let sim = FlowSim::new(engine.pipeline(), 2);
            let report = sim.run_with(&vec![SimTime::ZERO; queries], |item, stage| {
                if stage == 0 {
                    lookup_times[item]
                } else {
                    engine.pipeline().stages()[stage].time
                }
            });
            rows.push(vec![
                label.to_string(),
                format!("{policy:?}"),
                format!("{:.0} ns", mean.as_ns()),
                format!("{:.1}%", dram_hits * 100.0),
                format!("{:.0}k items/s", report.throughput_items_per_sec() / 1e3),
            ]);
        }
    }
    print_table(
        "Row-buffer study: lookup time and end-to-end throughput by skew and policy",
        &["Traffic", "Policy", "Mean lookup", "DRAM row-hit rate", "Pipeline throughput"],
        &rows,
    );
    println!("\nReading: even heavy Zipf skew recovers only a small fraction of");
    println!("lookups via open rows, because consecutive accesses on one channel");
    println!("come from different queries and rows. The closed-page model the");
    println!("paper (and our Table 3/4 numbers) assume is the right default;");
    println!("MicroRec's win comes from channel parallelism, not locality.");
}
