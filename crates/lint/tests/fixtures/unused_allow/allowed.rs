//! A stale exemption that is itself exempted: the allow(unused-allow)
//! suppresses the staleness finding on the line below it.

pub fn tidy() -> u32 {
    // lint: allow(unused-allow) retained on purpose: documents the next quantization pass
    // lint: allow(determinism) placeholder for the planned table-shuffle rework
    7
}
