//! A one-shot wait justified: the caller re-checks the flag itself.

use std::sync::{Condvar, Mutex};

pub fn wait_once(lock: &Mutex<bool>, ready: &Condvar) {
    let guard = lock.lock().unwrap();
    if !*guard {
        // lint: allow(condvar-loop) caller re-checks the flag after return
        let _guard = ready.wait(guard).unwrap();
    }
}
