//! Quantization study: how datapath precision affects recommendation
//! quality — not just CTR error, but the *ranking* the model exists to
//! produce (the lens §5.3's fp16-vs-fp32 trade-off should be judged by).
//!
//! Run with: `cargo run --example quantization_study`

use microrec_core::{ranking_fidelity, MicroRec};
use microrec_cpu::CpuReferenceEngine;
use microrec_dnn::QuantizedMlp;
use microrec_embedding::{ModelSpec, Precision};
use microrec_workload::{QueryGenConfig, QueryGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelSpec::dlrm_rmc2(8, 16);
    let seed = 33;
    let cpu = CpuReferenceEngine::build(&model, seed)?;
    let mut gen = QueryGenerator::new(&model, QueryGenConfig::default())?;
    let candidates = gen.next_batch(64);
    let reference: Vec<f32> =
        candidates.iter().map(|q| cpu.predict(q)).collect::<Result<_, _>>()?;

    println!("ranking fidelity vs f32 reference, 64 candidates ({})\n", model.name);
    println!("{:>22} {:>12} {:>8} {:>14}", "datapath", "kendall tau", "top-1", "top-10 overlap");

    // The paper's two fixed-point datapaths.
    for precision in [Precision::Fixed32, Precision::Fixed16] {
        let mut engine =
            MicroRec::builder(model.clone()).precision(precision).seed(seed).build()?;
        let scores: Vec<f32> =
            candidates.iter().map(|q| engine.predict(q)).collect::<Result<_, _>>()?;
        let f = ranking_fidelity(&reference, &scores);
        println!(
            "{:>22} {:>12.3} {:>8} {:>13.0}%",
            format!("Q-format {precision}"),
            f.kendall_tau,
            if f.top1_match { "match" } else { "MISS" },
            f.top10_overlap * 100.0
        );
    }

    // Per-tensor calibrated integer quantization (extension).
    let calibration: Vec<Vec<f32>> =
        candidates.iter().take(16).map(|q| cpu.gather_features(q)).collect::<Result<_, _>>()?;
    for bits in [16u8, 8, 6, 4] {
        let q = QuantizedMlp::quantize(cpu.mlp(), bits, &calibration)?;
        let scores: Vec<f32> = candidates
            .iter()
            .map(|query| {
                let features = cpu.gather_features(query)?;
                q.predict_ctr(&features).map_err(Into::into)
            })
            .collect::<Result<_, Box<dyn std::error::Error>>>()?;
        let f = ranking_fidelity(&reference, &scores);
        println!(
            "{:>22} {:>12.3} {:>8} {:>13.0}% ({} weight bytes)",
            format!("per-tensor int{bits}"),
            f.kendall_tau,
            if f.top1_match { "match" } else { "MISS" },
            f.top10_overlap * 100.0,
            q.weight_bytes(),
        );
    }

    println!("\nReading: the paper's fixed-32 datapath ranks identically to f32;");
    println!("fixed-16 is slightly noisy but keeps the winning candidate. With");
    println!("per-tensor calibration (an extension the paper forgoes), even 8-bit");
    println!("integers preserve the ranking — halving weight storage again.");
    Ok(())
}
