//! Error types for table combination and allocation.

use std::error::Error;
use std::fmt;

use microrec_embedding::EmbeddingError;
use microrec_memsim::MemsimError;

/// Errors returned by placement search and plan application.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The underlying memory simulator rejected an operation.
    Memory(MemsimError),
    /// The embedding layer rejected an operation.
    Embedding(EmbeddingError),
    /// No valid placement exists (e.g. a table exceeds every bank).
    Infeasible(String),
    /// A plan failed validation.
    InvalidPlan(String),
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Memory(e) => write!(f, "memory error: {e}"),
            PlacementError::Embedding(e) => write!(f, "embedding error: {e}"),
            PlacementError::Infeasible(why) => write!(f, "no feasible placement: {why}"),
            PlacementError::InvalidPlan(why) => write!(f, "invalid plan: {why}"),
        }
    }
}

impl Error for PlacementError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlacementError::Memory(e) => Some(e),
            PlacementError::Embedding(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemsimError> for PlacementError {
    fn from(e: MemsimError) -> Self {
        PlacementError::Memory(e)
    }
}

impl From<EmbeddingError> for PlacementError {
    fn from(e: EmbeddingError) -> Self {
        PlacementError::Embedding(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_memsim::{BankId, MemoryKind};

    #[test]
    fn wraps_sources() {
        let inner = MemsimError::UnknownBank(BankId::new(MemoryKind::Hbm, 0));
        let e: PlacementError = inner.clone().into();
        assert!(e.to_string().contains("HBM[0]"));
        assert!(e.source().is_some());
        let e: PlacementError = EmbeddingError::DegenerateProduct.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn infeasible_has_no_source() {
        let e = PlacementError::Infeasible("table bigger than any bank".into());
        assert!(e.source().is_none());
        assert!(e.to_string().contains("bigger"));
    }
}
