//! FPGA resource-utilization model (appendix Table 6).
//!
//! Real HLS resource consumption is not derivable from first principles, so
//! this model combines the appendix's stated per-PE costs with base terms
//! (embedding-lookup unit, inter-module FIFOs, AXI infrastructure) fitted
//! to the paper's four published configurations. It exists so the Table 6
//! bench can regenerate the utilization table for arbitrary PE counts, and
//! so design-space exploration (more PEs vs. clock) stays resource-aware.

use microrec_embedding::{ModelSpec, Precision};

use crate::config::AccelConfig;

/// U280 totals per resource (from the device data sheet; the percentages
/// in Table 6 resolve against these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// 18 Kbit BRAM slices.
    pub bram_18k: u32,
    /// DSP48E slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Lookup tables.
    pub lut: u32,
    /// 288 Kbit URAM blocks.
    pub uram: u32,
}

/// The Alveo U280's resource capacity.
pub const U280_CAPACITY: DeviceCapacity =
    DeviceCapacity { bram_18k: 2016, dsp: 9024, ff: 2_607_360, lut: 1_303_680, uram: 960 };

/// Estimated resource usage of one accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUsage {
    /// 18 Kbit BRAM slices.
    pub bram_18k: u32,
    /// DSP48E slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Lookup tables.
    pub lut: u32,
    /// 288 Kbit URAM blocks.
    pub uram: u32,
}

impl ResourceUsage {
    /// Utilization of each resource as a fraction of `capacity`.
    #[must_use]
    pub fn utilization(&self, capacity: &DeviceCapacity) -> ResourceUtilization {
        ResourceUtilization {
            bram_18k: f64::from(self.bram_18k) / f64::from(capacity.bram_18k),
            dsp: f64::from(self.dsp) / f64::from(capacity.dsp),
            ff: f64::from(self.ff) / f64::from(capacity.ff),
            lut: f64::from(self.lut) / f64::from(capacity.lut),
            uram: f64::from(self.uram) / f64::from(capacity.uram),
        }
    }

    /// Whether the design fits the device.
    #[must_use]
    pub fn fits(&self, capacity: &DeviceCapacity) -> bool {
        self.bram_18k <= capacity.bram_18k
            && self.dsp <= capacity.dsp
            && self.ff <= capacity.ff
            && self.lut <= capacity.lut
            && self.uram <= capacity.uram
    }
}

/// Fractional utilization per resource.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceUtilization {
    /// BRAM fraction used.
    pub bram_18k: f64,
    /// DSP fraction used.
    pub dsp: f64,
    /// Flip-flop fraction used.
    pub ff: f64,
    /// LUT fraction used.
    pub lut: f64,
    /// URAM fraction used.
    pub uram: f64,
}

impl ResourceUtilization {
    /// The highest single-resource utilization.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.bram_18k.max(self.dsp).max(self.ff).max(self.lut).max(self.uram)
    }
}

/// Per-PE and base coefficients for one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Coefficients {
    bram_per_pe: f64,
    dsp_per_pe: f64,
    ff_per_pe: f64,
    lut_per_pe: f64,
    bram_base: f64,
    dsp_base: f64,
    ff_base: f64,
    lut_base: f64,
    uram_weights: u32,
    // Large models carry wider FIFOs and feature paths.
    ff_per_feature: f64,
    lut_per_feature: f64,
}

fn coefficients(precision: Precision) -> Coefficients {
    match precision {
        Precision::Fixed16 => Coefficients {
            bram_per_pe: 4.0,
            dsp_per_pe: 14.0,
            ff_per_pe: 960.0,
            lut_per_pe: 630.0,
            bram_base: 414.0,
            dsp_base: 593.0,
            ff_base: 400_000.0,
            lut_base: 284_000.0,
            uram_weights: 642,
            ff_per_feature: 14.0,
            lut_per_feature: 56.0,
        },
        Precision::F32 | Precision::Fixed32 => Coefficients {
            bram_per_pe: 4.3,
            dsp_per_pe: 16.0,
            ff_per_pe: 1_240.0,
            lut_per_pe: 940.0,
            bram_base: 414.0,
            dsp_base: 593.0,
            ff_base: 400_000.0,
            lut_base: 288_000.0,
            uram_weights: 770,
            ff_per_feature: 26.0,
            lut_per_feature: 29.0,
        },
    }
}

/// Estimates resource usage for `model` under `config`.
#[must_use]
pub fn estimate_usage(model: &ModelSpec, config: &AccelConfig) -> ResourceUsage {
    let c = coefficients(config.precision);
    let pes = f64::from(config.total_pes());
    let feat = f64::from(model.feature_len());
    ResourceUsage {
        bram_18k: (c.bram_base + c.bram_per_pe * pes).round() as u32,
        dsp: (c.dsp_base + c.dsp_per_pe * pes).round() as u32,
        ff: (c.ff_base + c.ff_per_pe * pes + c.ff_per_feature * feat).round() as u32,
        lut: (c.lut_base + c.lut_per_pe * pes + c.lut_per_feature * feat).round() as u32,
        uram: c.uram_weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn assert_within(actual: u32, paper: u32, tol: f64, what: &str) {
        let err = (f64::from(actual) - f64::from(paper)).abs() / f64::from(paper);
        assert!(err <= tol, "{what}: model {actual} vs paper {paper} ({:.1}%)", err * 100.0);
    }

    #[test]
    fn matches_paper_table6() {
        // (model, precision, bram, dsp, ff, lut, uram)
        let cases = [
            (
                ModelSpec::small_production(),
                Precision::Fixed16,
                1_566,
                4_625,
                683_641,
                485_323,
                642,
            ),
            (
                ModelSpec::small_production(),
                Precision::Fixed32,
                1_657,
                5_193,
                764_067,
                568_864,
                770,
            ),
            (
                ModelSpec::large_production(),
                Precision::Fixed16,
                1_566,
                4_625,
                691_042,
                514_517,
                642,
            ),
            (
                ModelSpec::large_production(),
                Precision::Fixed32,
                1_721,
                5_193,
                777_527,
                584_220,
                770,
            ),
        ];
        for (model, precision, bram, dsp, ff, lut, uram) in cases {
            let cfg = AccelConfig::for_model(&model, precision);
            let usage = estimate_usage(&model, &cfg);
            let label = format!("{} {precision}", model.name);
            assert_within(usage.bram_18k, bram, 0.06, &format!("{label} BRAM"));
            assert_within(usage.dsp, dsp, 0.03, &format!("{label} DSP"));
            assert_within(usage.ff, ff, 0.05, &format!("{label} FF"));
            assert_within(usage.lut, lut, 0.06, &format!("{label} LUT"));
            assert_eq!(usage.uram, uram, "{label} URAM");
        }
    }

    #[test]
    fn every_paper_config_fits_the_u280() {
        for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
            for precision in [Precision::Fixed16, Precision::Fixed32] {
                let cfg = AccelConfig::for_model(&model, precision);
                let usage = estimate_usage(&model, &cfg);
                assert!(usage.fits(&U280_CAPACITY), "{} {precision}", model.name);
                let util = usage.utilization(&U280_CAPACITY);
                // Table 6 reports >50% DSP, >66% URAM, >78% BRAM.
                assert!(util.bram_18k > 0.7, "BRAM util {:.2}", util.bram_18k);
                assert!(util.max() < 1.0);
            }
        }
    }

    #[test]
    fn utilization_percentages_match_table6() {
        let model = ModelSpec::small_production();
        let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
        let util = estimate_usage(&model, &cfg).utilization(&U280_CAPACITY);
        // Paper: BRAM 78 %, DSP 51 %, URAM 66 %.
        assert!((util.bram_18k - 0.78).abs() < 0.05);
        assert!((util.dsp - 0.51).abs() < 0.04);
        assert!((util.uram - 0.66).abs() < 0.03);
    }

    #[test]
    fn more_pes_cost_more() {
        let model = ModelSpec::small_production();
        let small_cfg = AccelConfig::for_model(&model, Precision::Fixed16);
        let mut big_cfg = small_cfg.clone();
        big_cfg.pes_per_layer = vec![256, 256, 64];
        let a = estimate_usage(&model, &small_cfg);
        let b = estimate_usage(&model, &big_cfg);
        assert!(b.dsp > a.dsp && b.bram_18k > a.bram_18k && b.lut > a.lut);
    }

    #[test]
    fn doubling_pes_would_overflow_dsp_or_bram() {
        // Sanity: the paper's designs already use >78 % BRAM; a 4x PE array
        // must not fit.
        let model = ModelSpec::small_production();
        let mut cfg = AccelConfig::for_model(&model, Precision::Fixed32);
        cfg.pes_per_layer = vec![512, 512, 128];
        assert!(!estimate_usage(&model, &cfg).fits(&U280_CAPACITY));
    }
}
