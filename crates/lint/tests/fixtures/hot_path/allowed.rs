//! The same allocation, justified through the escape hatch.

pub fn hot_fn(n: usize) -> Vec<u32> {
    // lint: allow(hot-path-alloc) output buffer handed to the caller
    let mut out = Vec::new();
    out.extend((0..n as u32).map(|i| i * 2));
    out
}
