//! Three-tier embedding parameter store: hot-row cache → resident arena →
//! file-backed cold tier.
//!
//! The paper's larger production model (98 tables, 15.1 GB) does not fit
//! the single in-memory [`EmbeddingArena`]; NVIDIA's inference parameter
//! server shows the production answer: keep the hot head of the access
//! distribution resident and serve the tail from cheaper storage, hiding
//! the miss latency with prefetch. This module supplies the two pieces the
//! repo was missing:
//!
//! * **L2½/L3 split** — [`TieredBacking`] partitions the logical tables
//!   between a budget-capped resident [`EmbeddingArena`] (whole tables,
//!   chosen by the deterministic residency policy below) and a
//!   [`ColdStore`]: the same encoded rows written to a file at build time
//!   and read back with positioned `pread` (`FileExt::read_at`), so a cold
//!   read moves exactly one row and never touches a shared cursor.
//! * **Round-classified serving with async prefetch** — [`TieredStore`]
//!   extends the batched `probe_round` protocol: a whole lookup round is
//!   classified per tier *before* any miss is serviced, cold rows are
//!   enqueued to a bounded prefetcher (worker threads fed by
//!   [`microrec_par::SpscRing`] request/response pairs, reusing its
//!   close-then-drain shutdown), resident rows are served while the cold
//!   reads are in flight, and the responses are collected in enqueue order.
//!   Job shells (row buffers) are pre-allocated and recycled, so the steady
//!   state is allocation-free.
//!
//! ## Residency policy
//!
//! Every logical table is probed exactly once per lookup round (one sparse
//! feature per table), so the expected rows served per resident byte is
//! proportional to `1 / table_bytes` — admitting the smallest tables first
//! is the optimal greedy knapsack under round traffic. The policy sorts
//! tables by (encoded bytes ascending, index ascending) and admits while
//! the running total fits the budget; ties on size resolve by index so the
//! plan is deterministic and identical across replicas.
//!
//! ## Bit identity
//!
//! Cold rows are encoded at build time by the *same* kernels the arena
//! uses (`f16_encode_slice`, `i8_quant_slice`) and decoded by byte-slice
//! twins of the same decode kernels, so a tiered gather is bit-identical
//! to an all-resident arena gather at every row format — the tier split is
//! purely a capacity/latency trade, never an accuracy one.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use microrec_dnn::{
    f16_decode_le_slice, f16_encode_slice, f32_decode_le_slice, i8_dequant_le_slice, i8_quant_slice,
};
use microrec_par::SpscRing;

use crate::arena::{EmbeddingArena, RowFormat};
use crate::error::EmbeddingError;
use crate::table::EmbeddingTable;

/// Which tier serves a logical table's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Rows live in the in-memory resident arena.
    Resident,
    /// Rows live in the file-backed cold store.
    Cold,
}

/// Monotonic tag making concurrent cold-store file names unique within a
/// process (the process id distinguishes across processes). A counter, not
/// a timestamp: the embedding crate is under the determinism lint.
static COLD_FILE_TAG: AtomicU64 = AtomicU64::new(0);

/// Encoded bytes one row occupies in `format` (the `i8` per-row scale is
/// stored inline in the cold tier, so it counts here).
fn stored_row_bytes(dim: usize, format: RowFormat) -> usize {
    dim * format.bytes_per_elem() + if format == RowFormat::I8 { 4 } else { 0 }
}

/// Deterministic frequency-aware residency plan: smallest tables first
/// under the byte budget (see the module docs for why that is the greedy
/// optimum for round traffic).
#[derive(Debug, Clone)]
pub struct ResidencyPlan {
    tiers: Vec<Tier>,
    resident_bytes: u64,
    cold_bytes: u64,
}

impl ResidencyPlan {
    /// Plans residency for `tables` encoded as `format` under
    /// `budget_bytes` of resident row storage.
    #[must_use]
    pub fn plan(tables: &[EmbeddingTable], format: RowFormat, budget_bytes: u64) -> Self {
        let bytes_of =
            |t: &EmbeddingTable| t.rows() * stored_row_bytes(t.dim() as usize, format) as u64;
        let mut order: Vec<usize> = (0..tables.len()).collect();
        order.sort_by_key(|&i| (bytes_of(&tables[i]), i));
        let mut tiers = vec![Tier::Cold; tables.len()];
        let mut resident_bytes = 0u64;
        let mut cold_bytes = 0u64;
        for &i in &order {
            let bytes = bytes_of(&tables[i]);
            if resident_bytes.saturating_add(bytes) <= budget_bytes {
                tiers[i] = Tier::Resident;
                resident_bytes += bytes;
            } else {
                cold_bytes += bytes;
            }
        }
        ResidencyPlan { tiers, resident_bytes, cold_bytes }
    }

    /// Tier assignment per logical table.
    #[must_use]
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Encoded bytes admitted to the resident arena.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Encoded bytes relegated to the cold store.
    #[must_use]
    pub fn cold_bytes(&self) -> u64 {
        self.cold_bytes
    }
}

/// Location of one cold table inside the store file.
#[derive(Debug, Clone, Copy)]
struct ColdTableLoc {
    /// Byte offset of the table's first row.
    base: u64,
    /// Fixed encoded stride per row (scale prefix included for `i8`).
    row_bytes: usize,
    rows: u64,
}

/// File-backed cold tier: arena-layout rows written once at build time and
/// read back with positioned reads. The file lives in the OS temp
/// directory and is deleted on drop (best effort).
///
/// We use `pread` rather than `mmap`: this crate is `#![forbid(unsafe_code)]`
/// and a raw-syscall mmap would need an `unsafe` block plus a lifetime
/// argument for the mapping; a positioned read into an owned buffer has
/// neither problem, and for one-row reads the page-cache hit cost is
/// dominated by the syscall either way (see DESIGN.md §15).
#[derive(Debug)]
pub struct ColdStore {
    file: File,
    path: PathBuf,
    format: RowFormat,
    /// Indexed by logical table; `None` for resident tables.
    tables: Vec<Option<ColdTableLoc>>,
    names: Vec<String>,
    total_bytes: u64,
    max_row_bytes: usize,
}

/// Builds the cold-tier error for one table (allocation lives in this
/// outlined arm so the read path itself stays allocation-free on success).
#[cold]
fn cold_io_error(name: &str, detail: &std::io::Error) -> EmbeddingError {
    EmbeddingError::ColdTierIo { table: name.to_string(), detail: detail.to_string() }
}

/// Positioned full-buffer read at `offset` (pread; never moves a cursor,
/// so one shared read-only handle serves every engine replica and
/// prefetch worker concurrently).
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Portable fallback for non-unix hosts: re-open cheaply is not an option,
/// so fall back to `seek_read` on Windows-alikes is unavailable here —
/// instead clone the handle per call. Correct but slower; every supported
/// target in CI is unix.
#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut dup = file.try_clone()?;
    dup.seek(SeekFrom::Start(offset))?;
    dup.read_exact(buf)
}

impl ColdStore {
    /// Writes every `Cold`-assigned table's encoded rows to a fresh store
    /// file and returns the handle. Row encoding is identical to
    /// [`EmbeddingArena::build`]'s (same kernels, row by row).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::ColdTierIo`] if the store file cannot be
    /// created or written, or propagates table read errors.
    pub fn build(
        tables: &[EmbeddingTable],
        format: RowFormat,
        tiers: &[Tier],
    ) -> Result<Self, EmbeddingError> {
        let tag = COLD_FILE_TAG.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("microrec-cold-{}-{tag}.rows", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| cold_io_error("<store>", &e))?;

        let max_dim = tables.iter().map(|t| t.dim() as usize).max().unwrap_or(0);
        let mut row_f32 = vec![0.0f32; max_dim];
        let mut encoded = vec![0u8; stored_row_bytes(max_dim, format)];
        let mut locs: Vec<Option<ColdTableLoc>> = Vec::with_capacity(tables.len());
        let mut names = Vec::with_capacity(tables.len());
        let mut offset = 0u64;
        let mut max_row_bytes = 0usize;
        {
            let mut writer = BufWriter::new(&file);
            for (i, table) in tables.iter().enumerate() {
                names.push(table.name().to_string());
                if tiers[i] != Tier::Cold {
                    locs.push(None);
                    continue;
                }
                let dim = table.dim() as usize;
                let row_bytes = stored_row_bytes(dim, format);
                max_row_bytes = max_row_bytes.max(row_bytes);
                locs.push(Some(ColdTableLoc { base: offset, row_bytes, rows: table.rows() }));
                for row in 0..table.rows() {
                    table.read_row(row, &mut row_f32[..dim])?;
                    let n = encode_row(&row_f32[..dim], format, &mut encoded);
                    writer.write_all(&encoded[..n]).map_err(|e| cold_io_error(table.name(), &e))?;
                }
                offset += table.rows() * row_bytes as u64;
            }
            writer.flush().map_err(|e| cold_io_error("<store>", &e))?;
        }
        file.sync_data().map_err(|e| cold_io_error("<store>", &e))?;
        Ok(ColdStore {
            file,
            path,
            format,
            tables: locs,
            names,
            total_bytes: offset,
            max_row_bytes,
        })
    }

    /// Reads one encoded row into the prefix of `buf` (which must hold at
    /// least [`ColdStore::max_row_bytes`]).
    ///
    /// # Errors
    ///
    /// [`EmbeddingError::IndexOutOfRange`] for a bad row or a table that is
    /// not cold; [`EmbeddingError::ColdTierIo`] when the positioned read
    /// fails (missing, truncated, or unreadable store file).
    #[inline]
    pub fn read_row(&self, table: usize, row: u64, buf: &mut [u8]) -> Result<(), EmbeddingError> {
        let loc = match self.tables.get(table) {
            Some(Some(loc)) if row < loc.rows => *loc,
            _ => {
                return Err(EmbeddingError::IndexOutOfRange {
                    table: self.names.get(table).cloned().unwrap_or_default(),
                    index: row,
                    rows: self.tables.get(table).and_then(|l| l.map(|l| l.rows)).unwrap_or(0),
                });
            }
        };
        let offset = loc.base + row * loc.row_bytes as u64;
        match read_exact_at(&self.file, &mut buf[..loc.row_bytes], offset) {
            Ok(()) => Ok(()),
            Err(e) => Err(cold_io_error(&self.names[table], &e)),
        }
    }

    /// Decodes an encoded row previously read by [`ColdStore::read_row`]
    /// into `out` (length = the table's dim), using the same dequantize
    /// kernels as the resident arena.
    #[inline]
    pub fn decode_row(&self, buf: &[u8], out: &mut [f32]) {
        let dim = out.len();
        match self.format {
            RowFormat::F32 => f32_decode_le_slice(&buf[..dim * 4], out),
            RowFormat::F16 => f16_decode_le_slice(&buf[..dim * 2], out),
            RowFormat::I8 => {
                let scale = f32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
                i8_dequant_le_slice(&buf[4..4 + dim], scale, out);
            }
        }
    }

    /// Encoded bytes one row of `table` moves from the file.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range or not cold.
    #[must_use]
    pub fn row_bytes(&self, table: usize) -> usize {
        match &self.tables[table] {
            Some(loc) => loc.row_bytes,
            None => 0,
        }
    }

    /// Largest encoded row stride in the store (read-buffer size).
    #[must_use]
    pub fn max_row_bytes(&self) -> usize {
        self.max_row_bytes
    }

    /// Total encoded bytes on disk.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Path of the backing file (exposed for fault-injection tests and
    /// operator diagnostics).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ColdStore {
    fn drop(&mut self) {
        // Best effort: the file is process-private scratch.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Encodes one f32 row into `out`'s prefix; returns the encoded length.
fn encode_row(row: &[f32], format: RowFormat, out: &mut [u8]) -> usize {
    match format {
        RowFormat::F32 => {
            for (chunk, v) in out.chunks_exact_mut(4).zip(row) {
                chunk.copy_from_slice(&v.to_le_bytes());
            }
            row.len() * 4
        }
        RowFormat::F16 => {
            let mut half = [0u16; 1];
            for (chunk, v) in out.chunks_exact_mut(2).zip(row) {
                f16_encode_slice(std::slice::from_ref(v), &mut half);
                chunk.copy_from_slice(&half[0].to_le_bytes());
            }
            row.len() * 2
        }
        RowFormat::I8 => {
            let (scale_prefix, elems) = out.split_at_mut(4);
            let mut q = vec![0i8; row.len()];
            let scale = i8_quant_slice(row, &mut q);
            scale_prefix.copy_from_slice(&scale.to_le_bytes());
            for (dst, &v) in elems.iter_mut().zip(&q) {
                *dst = v as u8;
            }
            4 + row.len()
        }
    }
}

/// The shared, read-only half of the tiered store: the residency plan, the
/// budget-capped resident arena (over the resident subset only), and the
/// cold store. Built once and shared via `Arc` across engine replicas, so
/// pre-warming workers never multiplies resident memory.
#[derive(Debug)]
pub struct TieredBacking {
    format: RowFormat,
    tiers: Vec<Tier>,
    /// Arena over the resident subset, in logical-table order; empty when
    /// nothing fits the budget.
    resident: EmbeddingArena,
    /// Logical table index → arena-local index (resident tables only).
    resident_index: Vec<Option<usize>>,
    /// `None` when every table fits the budget (the 100% case pays no I/O).
    /// Shared (`Arc`) so an online re-shard can relocate the resident
    /// arena without rewriting the cold file: cold rows never move.
    cold: Option<Arc<ColdStore>>,
    dims: Vec<usize>,
    rows: Vec<u64>,
    feature_len: usize,
    budget_bytes: u64,
    resident_bytes: u64,
    cold_bytes: u64,
}

impl TieredBacking {
    /// Plans residency under `budget_bytes`, materializes the resident
    /// arena, and writes the cold store. `channel_of` assigns each logical
    /// table to a memory channel exactly as [`EmbeddingArena::build`] does;
    /// the assignment is filtered down to the resident subset.
    ///
    /// # Errors
    ///
    /// Propagates arena build and cold-store I/O errors;
    /// [`EmbeddingError::BufferSizeMismatch`] if `channel_of` is the wrong
    /// length.
    pub fn build(
        tables: &[EmbeddingTable],
        format: RowFormat,
        channel_of: &[usize],
        budget_bytes: u64,
    ) -> Result<Arc<Self>, EmbeddingError> {
        if channel_of.len() != tables.len() {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: tables.len(),
                actual: channel_of.len(),
            });
        }
        let plan = ResidencyPlan::plan(tables, format, budget_bytes);
        let mut resident_tables = Vec::new();
        let mut resident_channels = Vec::new();
        let mut resident_index = vec![None; tables.len()];
        for (i, table) in tables.iter().enumerate() {
            if plan.tiers[i] == Tier::Resident {
                resident_index[i] = Some(resident_tables.len());
                // Build-time clone of the source table handle; procedural
                // tables are a few words, materialized ones briefly double
                // until the arena encodes them.
                resident_tables.push(table.clone());
                resident_channels.push(channel_of[i]);
            }
        }
        let resident =
            EmbeddingArena::build(&resident_tables, format, &resident_channels, u64::MAX)?;
        let any_cold = plan.tiers.contains(&Tier::Cold);
        let cold = if any_cold {
            Some(Arc::new(ColdStore::build(tables, format, &plan.tiers)?))
        } else {
            None
        };
        let dims: Vec<usize> = tables.iter().map(|t| t.dim() as usize).collect();
        let rows: Vec<u64> = tables.iter().map(EmbeddingTable::rows).collect();
        let feature_len = dims.iter().sum();
        Ok(Arc::new(TieredBacking {
            format,
            tiers: plan.tiers,
            resident,
            resident_index,
            cold,
            dims,
            rows,
            feature_len,
            budget_bytes,
            resident_bytes: plan.resident_bytes,
            cold_bytes: plan.cold_bytes,
        }))
    }

    /// The row storage format (shared by both tiers).
    #[must_use]
    pub fn format(&self) -> RowFormat {
        self.format
    }

    /// Tier serving logical table `table`.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[must_use]
    pub fn tier(&self, table: usize) -> Tier {
        self.tiers[table]
    }

    /// Number of logical tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.tiers.len()
    }

    /// Concatenated feature length (Σ dims) of one lookup round.
    #[must_use]
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// The configured resident byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Encoded bytes admitted to the resident arena (≤ the budget; the
    /// arena itself adds only alignment padding, reported by
    /// [`TieredBacking::resident_arena_bytes`]).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Actual allocated size of the resident arena, padding included.
    #[must_use]
    pub fn resident_arena_bytes(&self) -> u64 {
        self.resident.total_bytes()
    }

    /// Encoded bytes served from the cold store.
    #[must_use]
    pub fn cold_bytes(&self) -> u64 {
        self.cold_bytes
    }

    /// Number of tables admitted to the resident arena.
    #[must_use]
    pub fn num_resident_tables(&self) -> usize {
        self.resident_index.iter().filter(|i| i.is_some()).count()
    }

    /// Path of the cold store file, when a cold tier exists (exposed for
    /// fault-injection tests and operator diagnostics).
    #[must_use]
    pub fn cold_store_path(&self) -> Option<&Path> {
        self.cold.as_ref().map(|c| c.path())
    }

    /// The layout generation of the resident arena (0 = as built; bumped
    /// by [`TieredBacking::rebuild_with_channels`]).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.resident.generation()
    }

    /// Re-materializes the backing under a new per-logical-table channel
    /// assignment. Only the resident arena is relocated (raw encoded-byte
    /// copy, bit-identical rows — see
    /// [`EmbeddingArena::rebuild_with_channels`]); the cold store file is
    /// shared untouched, since cold rows are addressed by file offset and
    /// never move. Tier membership is deliberately preserved: residency is
    /// a byte-budget decision, not a channel decision.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::BufferSizeMismatch`] if `channel_of` does
    /// not have one entry per logical table.
    pub fn rebuild_with_channels(
        &self,
        channel_of: &[usize],
        generation: u64,
    ) -> Result<Arc<Self>, EmbeddingError> {
        if channel_of.len() != self.tiers.len() {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: self.tiers.len(),
                actual: channel_of.len(),
            });
        }
        let resident_channels: Vec<usize> = self
            .resident_index
            .iter()
            .zip(channel_of)
            .filter_map(|(local, &ch)| local.map(|_| ch))
            .collect();
        let resident = self.resident.rebuild_with_channels(&resident_channels, generation)?;
        Ok(Arc::new(TieredBacking {
            format: self.format,
            tiers: self.tiers.clone(),
            resident,
            resident_index: self.resident_index.clone(),
            cold: self.cold.clone(),
            dims: self.dims.clone(),
            rows: self.rows.clone(),
            feature_len: self.feature_len,
            budget_bytes: self.budget_bytes,
            resident_bytes: self.resident_bytes,
            cold_bytes: self.cold_bytes,
        }))
    }

    /// Whether this backing stores exactly the shapes of `tables` (used to
    /// validate a shared backing against an engine's catalog, mirroring
    /// [`EmbeddingArena::matches`]).
    #[must_use]
    pub fn matches(&self, tables: &[EmbeddingTable]) -> bool {
        self.dims.len() == tables.len()
            && self
                .dims
                .iter()
                .zip(&self.rows)
                .zip(tables)
                .all(|((&dim, &rows), t)| rows == t.rows() && dim == t.dim() as usize)
    }

    /// Bytes one row read moves from its tier (elements + `i8` scale).
    #[must_use]
    pub fn source_row_bytes(&self, table: usize) -> usize {
        stored_row_bytes(self.dims[table], self.format)
    }
}

/// A cold-row fetch in flight between an engine and a prefetch worker.
/// The buffer is pre-sized to the largest cold row and recycled, so a
/// job round-trip performs no allocation.
#[derive(Debug)]
struct PrefetchJob {
    table: usize,
    row: u64,
    buf: Vec<u8>,
    result: Result<(), EmbeddingError>,
}

/// Worker threads plus their request/response rings. Each worker owns one
/// SPSC pair (the engine is the single producer of requests and single
/// consumer of responses), so no ring ever sees two producers.
#[derive(Debug)]
struct Prefetcher {
    requests: Vec<Arc<SpscRing<PrefetchJob>>>,
    responses: Vec<Arc<SpscRing<PrefetchJob>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns `workers` threads over rings of `depth` jobs each. Returns
    /// `None` if the OS refuses to spawn (the caller falls back to
    /// synchronous reads).
    fn spawn(backing: &Arc<TieredBacking>, workers: usize, depth: usize) -> Option<Prefetcher> {
        let mut prefetcher = Prefetcher {
            requests: Vec::with_capacity(workers),
            responses: Vec::with_capacity(workers),
            workers: Vec::with_capacity(workers),
        };
        for i in 0..workers {
            let requests = Arc::new(SpscRing::new(depth));
            let responses = Arc::new(SpscRing::new(depth));
            let thread_backing = Arc::clone(backing);
            let thread_requests = Arc::clone(&requests);
            let thread_responses = Arc::clone(&responses);
            let spawned = std::thread::Builder::new()
                .name(format!("microrec-prefetch-{i}"))
                .spawn(move || prefetch_loop(&thread_backing, &thread_requests, &thread_responses));
            match spawned {
                Ok(handle) => {
                    prefetcher.requests.push(requests);
                    prefetcher.responses.push(responses);
                    prefetcher.workers.push(handle);
                }
                Err(_) => {
                    prefetcher.shutdown();
                    return None;
                }
            }
        }
        Some(prefetcher)
    }

    /// Close-then-drain shutdown: stop accepting requests, drain every
    /// response ring until the workers close their end, then join.
    fn shutdown(&mut self) {
        for ring in &self.requests {
            ring.close();
        }
        for ring in &self.responses {
            while ring.pop_blocking().is_some() {}
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One prefetch worker: pop a job, perform the positioned read, hand the
/// job back. Ends when the request ring is closed and drained; closes the
/// response ring so the engine's collector can never block forever.
fn prefetch_loop(
    backing: &TieredBacking,
    requests: &SpscRing<PrefetchJob>,
    responses: &SpscRing<PrefetchJob>,
) {
    while let Some(mut job) = requests.pop_blocking() {
        job.result = match &backing.cold {
            Some(cold) => cold.read_row(job.table, job.row, &mut job.buf),
            // Jobs are only enqueued for cold tables; a missing cold store
            // means the backing was built all-resident.
            None => Err(EmbeddingError::IndexOutOfRange {
                table: String::new(),
                index: job.row,
                rows: 0,
            }),
        };
        if responses.push_blocking(job).is_err() {
            break;
        }
    }
    responses.close();
}

/// Per-tier serving counters for one engine's [`TieredStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Rows served by the resident arena (L2).
    pub resident_hits: u64,
    /// Rows read from the cold store (L3), async or synchronous.
    pub cold_reads: u64,
    /// Cold reads whose response was already complete when collected —
    /// i.e. reads fully overlapped with resident-tier work.
    pub prefetch_hits: u64,
    /// Bytes moved out of the resident arena.
    pub bytes_from_resident: u64,
    /// Bytes moved off the cold store.
    pub bytes_from_cold: u64,
    /// Cold reads that failed (truncated/unreadable store file). The tier
    /// is unhealthy while this grows, but serving keeps draining — only
    /// the affected lookups fail.
    pub cold_errors: u64,
}

impl TierCounters {
    /// Counter movement since `prev` (for per-batch delta publishing).
    #[must_use]
    pub fn delta_since(&self, prev: &TierCounters) -> TierCounters {
        TierCounters {
            resident_hits: self.resident_hits - prev.resident_hits,
            cold_reads: self.cold_reads - prev.cold_reads,
            prefetch_hits: self.prefetch_hits - prev.prefetch_hits,
            bytes_from_resident: self.bytes_from_resident - prev.bytes_from_resident,
            bytes_from_cold: self.bytes_from_cold - prev.bytes_from_cold,
            cold_errors: self.cold_errors - prev.cold_errors,
        }
    }
}

/// The per-engine serving half of the tiered store: classification,
/// prefetch dispatch, engine-owned scratch, and counters over a shared
/// [`TieredBacking`].
///
/// Cloning (engine replicas derive `Clone`) shares the backing but starts
/// with a fresh, unspawned prefetcher and zeroed counters — worker threads
/// hold `JoinHandle`s, which cannot be cloned, and each replica wants its
/// own SPSC endpoints anyway.
#[derive(Debug)]
pub struct TieredStore {
    backing: Arc<TieredBacking>,
    /// Prefetch worker threads to run (0 = synchronous cold reads).
    prefetch_workers: usize,
    /// Spawned lazily on the first cold miss so that freshly built or
    /// cloned engines that never touch the cold tier pay nothing.
    prefetcher: Option<Prefetcher>,
    /// Recycled job shells (capacity = one full round of cold misses).
    free: Vec<PrefetchJob>,
    /// Worker index of each in-flight job, in enqueue order.
    pending: Vec<usize>,
    /// Read buffer for the synchronous (0-worker) cold path.
    sync_buf: Vec<u8>,
    /// Prebuilt 0..n table list backing [`TieredStore::gather_round`].
    all_tables: Box<[usize]>,
    counters: TierCounters,
}

impl TieredStore {
    /// Creates a serving view over `backing` with `prefetch_workers`
    /// asynchronous cold readers (0 serves cold rows synchronously).
    #[must_use]
    pub fn new(backing: Arc<TieredBacking>, prefetch_workers: usize) -> Self {
        let tables = backing.num_tables();
        let buf_bytes = backing.cold.as_ref().map_or(0, |c| c.max_row_bytes());
        let free: Vec<PrefetchJob> = (0..tables)
            .map(|_| PrefetchJob { table: 0, row: 0, buf: vec![0u8; buf_bytes], result: Ok(()) })
            .collect();
        TieredStore {
            backing,
            prefetch_workers,
            prefetcher: None,
            free,
            pending: Vec::with_capacity(tables),
            sync_buf: vec![0u8; buf_bytes],
            all_tables: (0..tables).collect(),
            counters: TierCounters::default(),
        }
    }

    /// The shared backing.
    #[must_use]
    pub fn backing(&self) -> &Arc<TieredBacking> {
        &self.backing
    }

    /// A serving view over `backing` that *carries this store's counters
    /// forward* — the epoch-swap path. Counter continuity matters: callers
    /// publish per-batch [`TierCounters::delta_since`] deltas against a
    /// previous snapshot, so a swapped-in store that reset its counters to
    /// zero would make those raw-subtraction deltas underflow. The
    /// prefetcher is fresh and unspawned (worker threads hold the *old*
    /// backing's `Arc`; they die with the old store).
    #[must_use]
    pub fn with_backing(&self, backing: Arc<TieredBacking>) -> TieredStore {
        let mut store = TieredStore::new(backing, self.prefetch_workers);
        store.counters = self.counters;
        store
    }

    /// Whether `table` is served by the resident arena.
    #[must_use]
    pub fn is_resident(&self, table: usize) -> bool {
        self.backing.tiers[table] == Tier::Resident
    }

    /// Current counter values.
    #[must_use]
    pub fn counters(&self) -> TierCounters {
        self.counters
    }

    /// Resets the serving counters (the backing is untouched).
    pub fn reset_stats(&mut self) {
        self.counters = TierCounters::default();
    }

    /// Serves one whole lookup round (every logical table) into `out`,
    /// with `offsets[t]` giving each table's start inside the feature
    /// vector. The round is classified per tier before any row is
    /// serviced; cold rows overlap with resident ones via the prefetcher.
    ///
    /// # Errors
    ///
    /// Propagates the first row failure after the round is fully drained
    /// (in-flight cold reads are always collected, so a failure never
    /// desynchronizes the rings).
    #[inline]
    pub fn gather_round(
        &mut self,
        indices: &[u64],
        offsets: &[usize],
        out: &mut [f32],
    ) -> Result<(), EmbeddingError> {
        if indices.len() != self.backing.dims.len() {
            return Err(EmbeddingError::ArityMismatch {
                expected: self.backing.dims.len(),
                actual: indices.len(),
            });
        }
        if out.len() != self.backing.feature_len {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: self.backing.feature_len,
                actual: out.len(),
            });
        }
        let all = std::mem::take(&mut self.all_tables);
        let result = self.serve_rows(indices, &all, offsets, out, |_, _, _| {});
        self.all_tables = all;
        result
    }

    /// Serves the listed `tables` of one lookup round into `out`
    /// (`offsets[t]` = feature-vector start of table `t`), invoking
    /// `on_row(table, filled_slot, source_bytes)` for each served row —
    /// the hook the hot-row cache uses to admit fresh rows.
    ///
    /// Protocol: classify the whole round, enqueue every cold row to the
    /// prefetcher, serve the resident rows while those reads are in
    /// flight, then collect the cold responses in enqueue order.
    ///
    /// # Errors
    ///
    /// Returns the first row failure; the round is always fully drained
    /// first, and surviving rows (including later ones) are still written
    /// and reported to `on_row`.
    #[inline]
    pub fn serve_rows<F>(
        &mut self,
        indices: &[u64],
        tables: &[usize],
        offsets: &[usize],
        out: &mut [f32],
        mut on_row: F,
    ) -> Result<(), EmbeddingError>
    where
        F: FnMut(usize, &[f32], usize),
    {
        let mut first_err: Option<EmbeddingError> = None;

        // Phase 1: classify and launch. Cold rows go to the prefetch
        // rings round-robin; resident rows are deferred to phase 2.
        self.pending.clear();
        let mut next_worker = 0usize;
        if self.prefetch_workers > 0 && self.prefetcher.is_none() && self.backing.cold.is_some() {
            let any_cold = tables.iter().any(|&t| self.backing.tiers[t] == Tier::Cold);
            if any_cold {
                let depth = self.backing.num_tables().max(1);
                self.prefetcher =
                    // lint: allow(transitive-hot-path-alloc) one-time lazy spawn on the first cold round; every later round reuses the workers and rings
                    Prefetcher::spawn(&self.backing, self.prefetch_workers, depth);
                if self.prefetcher.is_none() {
                    // Spawn refused: degrade to synchronous reads for good.
                    self.prefetch_workers = 0;
                }
            }
        }
        if let Some(prefetcher) = &self.prefetcher {
            let lanes = prefetcher.requests.len();
            for &t in tables {
                if self.backing.tiers[t] != Tier::Cold {
                    continue;
                }
                let Some(mut job) = self.free.pop() else { break };
                job.table = t;
                job.row = indices[t];
                job.result = Ok(());
                match prefetcher.requests[next_worker].push_blocking(job) {
                    Ok(()) => {
                        self.pending.push(next_worker);
                        next_worker = (next_worker + 1) % lanes;
                    }
                    Err(rejected) => {
                        // Ring closed (shutdown race): recycle and fall
                        // back to the synchronous path below.
                        self.free.push(rejected);
                        break;
                    }
                }
            }
        }

        // Phase 2: resident rows (and, with no prefetcher, cold rows
        // synchronously), while the async reads are in flight.
        let launched = self.pending.len();
        let mut seen_cold = 0usize;
        for &t in tables {
            let dim = self.backing.dims[t];
            let offset = offsets[t];
            let slot = &mut out[offset..offset + dim];
            match self.backing.tiers[t] {
                Tier::Resident => {
                    let local = match self.backing.resident_index[t] {
                        Some(local) => local,
                        None => continue,
                    };
                    match self.backing.resident.read_row_into(local, indices[t], slot) {
                        Ok(()) => {
                            let bytes = self.backing.source_row_bytes(t);
                            self.counters.resident_hits += 1;
                            self.counters.bytes_from_resident += bytes as u64;
                            on_row(t, slot, bytes);
                        }
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                Tier::Cold => {
                    seen_cold += 1;
                    if seen_cold <= launched {
                        continue; // travelling through the prefetcher
                    }
                    let Some(cold) = &self.backing.cold else { continue };
                    match cold.read_row(t, indices[t], &mut self.sync_buf) {
                        Ok(()) => {
                            cold.decode_row(&self.sync_buf, slot);
                            let bytes = cold.row_bytes(t);
                            self.counters.cold_reads += 1;
                            self.counters.bytes_from_cold += bytes as u64;
                            on_row(t, slot, bytes);
                        }
                        Err(e) => {
                            self.counters.cold_errors += 1;
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
            }
        }

        // Phase 3: collect the in-flight cold rows in enqueue order. Every
        // launched job is drained even after a failure, so the rings stay
        // consistent for the next round.
        for i in 0..self.pending.len() {
            let worker = self.pending[i];
            let Some(prefetcher) = &self.prefetcher else { break };
            let mut job = match prefetcher.responses[worker].try_pop() {
                Some(job) => {
                    self.counters.prefetch_hits += 1;
                    job
                }
                None => match prefetcher.responses[worker].pop_blocking() {
                    Some(job) => job,
                    None => {
                        // Response ring closed mid-round: shutdown race.
                        if first_err.is_none() {
                            first_err = Some(EmbeddingError::ColdTierIo {
                                table: String::new(),
                                detail: "prefetcher shut down mid-round".to_string(),
                            });
                        }
                        break;
                    }
                },
            };
            let t = job.table;
            // Move the result out of the shell (replaced with Ok) so error
            // propagation transfers ownership instead of cloning.
            match std::mem::replace(&mut job.result, Ok(())) {
                Ok(()) => {
                    if let Some(cold) = &self.backing.cold {
                        let dim = self.backing.dims[t];
                        let offset = offsets[t];
                        let slot = &mut out[offset..offset + dim];
                        cold.decode_row(&job.buf, slot);
                        let bytes = cold.row_bytes(t);
                        self.counters.cold_reads += 1;
                        self.counters.bytes_from_cold += bytes as u64;
                        on_row(t, slot, bytes);
                    }
                }
                Err(e) => {
                    self.counters.cold_errors += 1;
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            self.free.push(job);
        }
        self.pending.clear();

        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Clone for TieredStore {
    fn clone(&self) -> Self {
        TieredStore::new(Arc::clone(&self.backing), self.prefetch_workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TableSpec;

    fn tables() -> Vec<EmbeddingTable> {
        vec![
            EmbeddingTable::procedural(TableSpec::new("a", 40, 8), 1),
            EmbeddingTable::procedural(TableSpec::new("b", 25, 12), 2),
            EmbeddingTable::procedural(TableSpec::new("c", 60, 4), 3),
            EmbeddingTable::procedural(TableSpec::new("d", 10, 16), 4),
        ]
    }

    fn total_bytes(tabs: &[EmbeddingTable], format: RowFormat) -> u64 {
        tabs.iter().map(|t| t.rows() * stored_row_bytes(t.dim() as usize, format) as u64).sum()
    }

    fn offsets_of(tabs: &[EmbeddingTable]) -> Vec<usize> {
        let mut offsets = Vec::new();
        let mut acc = 0usize;
        for t in tabs {
            offsets.push(acc);
            acc += t.dim() as usize;
        }
        offsets
    }

    #[test]
    fn residency_plan_admits_smallest_tables_first_deterministically() {
        let tabs = tables();
        // Encoded f32 bytes: a=1280, b=1200, c=960, d=640.
        let plan = ResidencyPlan::plan(&tabs, RowFormat::F32, 1700);
        assert_eq!(plan.tiers(), &[Tier::Cold, Tier::Cold, Tier::Resident, Tier::Resident]);
        assert_eq!(plan.resident_bytes(), 960 + 640);
        assert_eq!(plan.cold_bytes(), 1280 + 1200);
        // Zero budget: everything cold. Huge budget: everything resident.
        let none = ResidencyPlan::plan(&tabs, RowFormat::F32, 0);
        assert!(none.tiers().iter().all(|&t| t == Tier::Cold));
        let all = ResidencyPlan::plan(&tabs, RowFormat::F32, u64::MAX);
        assert!(all.tiers().iter().all(|&t| t == Tier::Resident));
        assert_eq!(all.resident_bytes(), total_bytes(&tabs, RowFormat::F32));
    }

    #[test]
    fn tiered_gather_is_bit_identical_to_all_resident_at_every_format() {
        let tabs = tables();
        let channel_of = vec![0usize; tabs.len()];
        let offsets = offsets_of(&tabs);
        for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
            let full = EmbeddingArena::build(&tabs, format, &channel_of, u64::MAX).unwrap();
            let budget = total_bytes(&tabs, format) / 3;
            for workers in [0usize, 2] {
                let backing = TieredBacking::build(&tabs, format, &channel_of, budget).unwrap();
                assert!(backing.num_resident_tables() < tabs.len(), "cold tier must exist");
                assert!(backing.resident_bytes() <= budget);
                let mut store = TieredStore::new(Arc::clone(&backing), workers);
                let mut got = vec![0.0f32; backing.feature_len()];
                let mut want = vec![0.0f32; backing.feature_len()];
                for q in 0u64..50 {
                    let indices: Vec<u64> = tabs
                        .iter()
                        .enumerate()
                        .map(|(i, t)| (q * 13 + i as u64 * 7) % t.rows())
                        .collect();
                    store.gather_round(&indices, &offsets, &mut got).unwrap();
                    full.gather_into(&indices, &mut want).unwrap();
                    for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "format {format:?} workers {workers} query {q} elem {i}"
                        );
                    }
                }
                let c = store.counters();
                assert!(c.resident_hits > 0 && c.cold_reads > 0);
                assert_eq!(c.cold_errors, 0);
                if workers == 0 {
                    assert_eq!(c.prefetch_hits, 0, "sync path never prefetches");
                }
                assert!(c.bytes_from_cold > 0);
            }
        }
    }

    #[test]
    fn serve_rows_admits_to_cache_hook_and_counts_bytes() {
        let tabs = tables();
        let channel_of = vec![0usize; tabs.len()];
        let offsets = offsets_of(&tabs);
        let budget = total_bytes(&tabs, RowFormat::F32) / 3;
        let backing = TieredBacking::build(&tabs, RowFormat::F32, &channel_of, budget).unwrap();
        let mut store = TieredStore::new(backing, 1);
        let indices = vec![1u64, 2, 3, 4];
        let mut out = vec![0.0f32; store.backing().feature_len()];
        let mut admitted = Vec::new();
        let tables_list: Vec<usize> = (0..tabs.len()).collect();
        store
            .serve_rows(&indices, &tables_list, &offsets, &mut out, |t, slot, bytes| {
                admitted.push((t, slot.len(), bytes));
            })
            .unwrap();
        assert_eq!(admitted.len(), tabs.len(), "every table admits exactly once");
        for (t, dim, bytes) in admitted {
            assert_eq!(dim, tabs[t].dim() as usize);
            assert_eq!(bytes, stored_row_bytes(dim, RowFormat::F32));
        }
        let c = store.counters();
        assert_eq!(c.resident_hits + c.cold_reads, tabs.len() as u64);
    }

    #[test]
    fn truncated_store_fails_only_affected_rounds_and_reports() {
        let tabs = tables();
        let channel_of = vec![0usize; tabs.len()];
        let offsets = offsets_of(&tabs);
        let budget = total_bytes(&tabs, RowFormat::F32) / 3;
        let backing = TieredBacking::build(&tabs, RowFormat::F32, &channel_of, budget).unwrap();
        let path = backing.cold_store_path().expect("cold tier exists").to_path_buf();
        for workers in [0usize, 1] {
            let mut store = TieredStore::new(Arc::clone(&backing), workers);
            let mut out = vec![0.0f32; backing.feature_len()];
            let indices = vec![0u64; tabs.len()];
            store.gather_round(&indices, &offsets, &mut out).unwrap();

            // Truncate the store mid-serve: cold reads now hit EOF.
            OpenOptions::new().write(true).open(&path).unwrap().set_len(0).unwrap();
            let before = store.counters().cold_errors;
            let err = store.gather_round(&indices, &offsets, &mut out).unwrap_err();
            assert!(
                matches!(err, EmbeddingError::ColdTierIo { .. }),
                "workers {workers}: expected ColdTierIo, got {err:?}"
            );
            assert!(store.counters().cold_errors > before, "unhealthy tier must be visible");

            // The store keeps draining: the next round still terminates
            // (and still fails, since the file is still truncated) without
            // wedging a ring.
            let err = store.gather_round(&indices, &offsets, &mut out).unwrap_err();
            assert!(matches!(err, EmbeddingError::ColdTierIo { .. }));

            // Restore the file for the next iteration of the loop.
            drop(store);
            let restored = ColdStore::build(
                &tabs,
                RowFormat::F32,
                &ResidencyPlan::plan(&tabs, RowFormat::F32, budget).tiers,
            )
            .unwrap();
            std::fs::copy(restored.path(), &path).unwrap();
        }
    }

    #[test]
    fn all_resident_backing_has_no_cold_file() {
        let tabs = tables();
        let channel_of = vec![0usize; tabs.len()];
        let backing = TieredBacking::build(&tabs, RowFormat::F16, &channel_of, u64::MAX).unwrap();
        assert!(backing.cold_store_path().is_none());
        assert_eq!(backing.num_resident_tables(), tabs.len());
        assert_eq!(backing.cold_bytes(), 0);
        let mut store = TieredStore::new(backing, 2);
        let offsets = offsets_of(&tabs);
        let mut out = vec![0.0f32; store.backing().feature_len()];
        store.gather_round(&[0, 0, 0, 0], &offsets, &mut out).unwrap();
        let c = store.counters();
        assert_eq!(c.cold_reads, 0);
        assert_eq!(c.resident_hits, tabs.len() as u64);
    }

    #[test]
    fn clone_shares_backing_but_not_counters_or_workers() {
        let tabs = tables();
        let channel_of = vec![0usize; tabs.len()];
        let budget = total_bytes(&tabs, RowFormat::F32) / 2;
        let backing = TieredBacking::build(&tabs, RowFormat::F32, &channel_of, budget).unwrap();
        let mut store = TieredStore::new(backing, 1);
        let offsets = offsets_of(&tabs);
        let mut out = vec![0.0f32; store.backing().feature_len()];
        store.gather_round(&[1, 1, 1, 1], &offsets, &mut out).unwrap();
        assert!(store.counters().cold_reads > 0);
        let clone = store.clone();
        assert!(Arc::ptr_eq(store.backing(), clone.backing()));
        assert_eq!(clone.counters(), TierCounters::default());
        assert!(clone.prefetcher.is_none(), "clones start unspawned");
    }

    #[test]
    fn rebuilt_backing_shares_cold_store_and_stays_bit_identical() {
        let tabs = tables();
        let offsets = offsets_of(&tabs);
        for format in [RowFormat::F32, RowFormat::F16, RowFormat::I8] {
            let budget = total_bytes(&tabs, format) / 2;
            let old = TieredBacking::build(&tabs, format, &[0, 1, 0, 1], budget).unwrap();
            assert_eq!(old.generation(), 0);
            let new = old.rebuild_with_channels(&[1, 0, 1, 0], 5).unwrap();
            assert_eq!(new.generation(), 5);
            // Cold rows never move: both generations hold the same file.
            assert_eq!(old.cold_store_path(), new.cold_store_path());
            assert!(Arc::ptr_eq(
                old.cold.as_ref().unwrap(),
                new.cold.as_ref().unwrap()
            ));
            let mut old_store = TieredStore::new(Arc::clone(&old), 0);
            let mut new_store = TieredStore::new(Arc::clone(&new), 0);
            let mut a = vec![0.0f32; old.feature_len()];
            let mut b = vec![0.0f32; new.feature_len()];
            for q in 0u64..30 {
                let indices: Vec<u64> = tabs
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (q * 17 + i as u64 * 3) % t.rows())
                    .collect();
                old_store.gather_round(&indices, &offsets, &mut a).unwrap();
                new_store.gather_round(&indices, &offsets, &mut b).unwrap();
                for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{format:?} query {q} elem {i} drifted across re-shard"
                    );
                }
            }
        }
    }

    #[test]
    fn with_backing_carries_counters_forward() {
        let tabs = tables();
        let offsets = offsets_of(&tabs);
        let budget = total_bytes(&tabs, RowFormat::F32) / 2;
        let old = TieredBacking::build(&tabs, RowFormat::F32, &[0, 0, 0, 0], budget).unwrap();
        let mut store = TieredStore::new(Arc::clone(&old), 1);
        let mut out = vec![0.0f32; old.feature_len()];
        store.gather_round(&[1, 1, 1, 1], &offsets, &mut out).unwrap();
        let before = store.counters();
        assert!(before.resident_hits > 0);

        let new = old.rebuild_with_channels(&[0, 1, 0, 1], 1).unwrap();
        let mut swapped = store.with_backing(Arc::clone(&new));
        assert_eq!(swapped.counters(), before, "swap must not reset counters");
        assert!(swapped.prefetcher.is_none(), "swapped store starts unspawned");
        assert!(Arc::ptr_eq(swapped.backing(), &new));
        // Deltas against a pre-swap snapshot stay monotone (no underflow).
        swapped.gather_round(&[2, 2, 2, 2], &offsets, &mut out).unwrap();
        let delta = swapped.counters().delta_since(&before);
        assert_eq!(delta.resident_hits + delta.cold_reads, tabs.len() as u64);
    }

    #[test]
    fn cold_store_rejects_resident_tables_and_bad_rows() {
        let tabs = tables();
        let plan = ResidencyPlan::plan(&tabs, RowFormat::F32, 1700);
        let cold = ColdStore::build(&tabs, RowFormat::F32, plan.tiers()).unwrap();
        let mut buf = vec![0u8; cold.max_row_bytes()];
        // Table 2 is resident under this plan; table 0 is cold.
        assert!(matches!(
            cold.read_row(2, 0, &mut buf),
            Err(EmbeddingError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            cold.read_row(0, 40, &mut buf),
            Err(EmbeddingError::IndexOutOfRange { .. })
        ));
        cold.read_row(0, 39, &mut buf).unwrap();
    }
}
