//! # microrec-workload
//!
//! Synthetic serving workloads for the MicroRec reproduction (Jiang et
//! al., MLSys 2021): Zipf-skewed sparse-feature query streams, Poisson
//! arrival processes, and serving-discipline simulators (CPU-style
//! batching vs. MicroRec's item-by-item pipeline) with SLA accounting.
//!
//! ## Example
//!
//! ```
//! use microrec_embedding::ModelSpec;
//! use microrec_workload::{QueryGenConfig, QueryGenerator};
//!
//! let model = ModelSpec::small_production();
//! let mut queries = QueryGenerator::new(&model, QueryGenConfig::default())?;
//! let batch = queries.next_batch(32);
//! assert_eq!(batch.len(), 32);
//! # Ok::<(), microrec_workload::WorkloadError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival;
mod error;
mod query_gen;
mod trace;

pub use arrival::{
    simulate_batched_serving, simulate_pipelined_serving, LatencyStats, PoissonArrivals,
};
pub use error::WorkloadError;
pub use query_gen::{QueryGenConfig, QueryGenerator};
pub use trace::RequestTrace;
