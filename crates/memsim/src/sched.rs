//! Request-level DRAM channel scheduling.
//!
//! The calibrated channel model ([`MemTiming`]) treats each access as a
//! blocking `base + burst` — which is exactly how the Vitis-generated AXI
//! controller behaves (the paper's own Table 5 shows perfect 2× scaling
//! from 1 to 2 accesses per channel, i.e. zero overlap). Real DRAM could
//! do better: a channel has multiple *internal* banks, and an FR-FCFS
//! scheduler overlaps one bank's row activation with another's data burst,
//! serializing only on the shared data bus (and the tFAW activation
//! window).
//!
//! This module models that machinery so the gap is measurable: how much
//! lookup latency would a smarter memory controller buy MicroRec? (See the
//! `controller` bench — the answer informs the paper's "future work" of
//! faster lookups more than any data-structure change.)

use crate::time::SimTime;

/// JEDEC-style timing parameters of one channel's internals.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedTiming {
    /// Row activate to column command (tRCD).
    pub t_rcd: SimTime,
    /// Column command to first data (tCL / CAS latency).
    pub t_cas: SimTime,
    /// Precharge (tRP) — charged on every access (closed-page).
    pub t_rp: SimTime,
    /// DRAM data-bus time per 32 bytes (one burst).
    pub t_burst32: SimTime,
    /// Narrow AXI front-end streaming time per 32 bytes (the 32-bit port
    /// of the paper's appendix; dominates the serial controller's burst).
    pub t_axi32: SimTime,
    /// Minimum spacing of four activations (tFAW).
    pub t_faw: SimTime,
    /// Controller front-end latency added to every request.
    pub t_controller: SimTime,
    /// Internal banks per channel.
    pub banks: usize,
}

impl DetailedTiming {
    /// HBM2 pseudo-channel internals: the same end-to-end single-access
    /// latency as [`MemTiming::hbm2_vitis`](crate::MemTiming::hbm2_vitis)
    /// (318 ns base), decomposed into controller + tRCD + tCL + tRP, with
    /// 16 internal banks.
    #[must_use]
    pub fn hbm2() -> Self {
        DetailedTiming {
            t_rcd: SimTime::from_ns(14.0),
            t_cas: SimTime::from_ns(14.0),
            t_rp: SimTime::from_ns(14.0),
            // HBM2 pseudo-channel: 8 bytes x 2 Gbps = 16 GB/s => 2 ns/32 B.
            t_burst32: SimTime::from_ns(2.0),
            // 32-bit AXI at 192 MHz (the calibrated coarse slope).
            t_axi32: SimTime::from_ns(41.66),
            t_faw: SimTime::from_ns(30.0),
            // The Vitis controller round trip dominates the measured 318 ns.
            t_controller: SimTime::from_ns(290.0),
            banks: 16,
        }
    }

    /// Latency of one isolated access of `bytes` through the serial AXI
    /// front end (matches the calibrated coarse model).
    #[must_use]
    pub fn single_access(&self, bytes: u32) -> SimTime {
        self.t_controller + self.t_rcd + self.t_cas + self.axi_time(bytes)
    }

    /// DRAM data-bus occupancy of `bytes`.
    #[must_use]
    pub fn burst_time(&self, bytes: u32) -> SimTime {
        let bursts = u64::from(bytes.div_ceil(32).max(1));
        self.t_burst32 * bursts
    }

    /// Narrow-AXI streaming time of `bytes` (fractional 32-byte beats
    /// resolve at 4-byte granularity).
    #[must_use]
    pub fn axi_time(&self, bytes: u32) -> SimTime {
        SimTime::from_ps((u128::from(self.t_axi32.as_ps()) * u128::from(bytes.max(1)) / 32) as u64)
    }
}

/// One request to the scheduler: which internal bank/row, how many bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRequest {
    /// Internal bank index (`< DetailedTiming::banks`).
    pub bank: usize,
    /// Row within the bank (same row back-to-back would row-hit; the
    /// scheduler here is closed-page, so rows only matter for reporting).
    pub row: u64,
    /// Payload size.
    pub bytes: u32,
}

/// Outcome of scheduling a request stream on one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Completion time of each request, in submission order.
    pub completions: Vec<SimTime>,
    /// Time the last request completes.
    pub makespan: SimTime,
}

/// Scheduling discipline of the channel front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// One outstanding request at a time — the blocking AXI-master
    /// behaviour of the paper's HLS controller (and of this crate's coarse
    /// model).
    #[default]
    SerialAxi,
    /// Bank-parallel: overlap different banks' activations, serialize on
    /// the data bus and the tFAW window.
    BankParallel,
}

/// Schedules `requests` (all to one channel, issued simultaneously) and
/// returns per-request completions.
///
/// # Examples
///
/// ```
/// use microrec_memsim::{schedule_channel, BankRequest, DetailedTiming, SchedulerPolicy};
///
/// let timing = DetailedTiming::hbm2();
/// let reqs: Vec<BankRequest> =
///     (0..4).map(|i| BankRequest { bank: i, row: 0, bytes: 64 }).collect();
/// let serial = schedule_channel(&timing, SchedulerPolicy::SerialAxi, &reqs);
/// let parallel = schedule_channel(&timing, SchedulerPolicy::BankParallel, &reqs);
/// assert!(parallel.makespan < serial.makespan);
/// ```
#[must_use]
pub fn schedule_channel(
    timing: &DetailedTiming,
    policy: SchedulerPolicy,
    requests: &[BankRequest],
) -> ScheduleResult {
    let mut completions = Vec::with_capacity(requests.len());
    match policy {
        SchedulerPolicy::SerialAxi => {
            let mut t = SimTime::ZERO;
            for req in requests {
                t += timing.single_access(req.bytes);
                completions.push(t);
            }
        }
        SchedulerPolicy::BankParallel => {
            let mut bank_free = vec![SimTime::ZERO; timing.banks.max(1)];
            let mut bus_free = SimTime::ZERO;
            let mut recent_activates: Vec<SimTime> = Vec::new();
            for req in requests {
                let bank = req.bank % timing.banks.max(1);
                // tFAW: at most 4 activations per rolling window.
                let faw_gate = if recent_activates.len() >= 4 {
                    recent_activates[recent_activates.len() - 4] + timing.t_faw
                } else {
                    SimTime::ZERO
                };
                let activate_at = bank_free[bank].max(faw_gate);
                recent_activates.push(activate_at);
                let data_ready = activate_at + timing.t_rcd + timing.t_cas;
                let burst_start = data_ready.max(bus_free);
                let done = burst_start + timing.burst_time(req.bytes);
                bus_free = done;
                bank_free[bank] = done + timing.t_rp;
                completions.push(timing.t_controller + done);
            }
        }
    }
    let makespan = completions.iter().copied().max().unwrap_or(SimTime::ZERO);
    ScheduleResult { completions, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MemTiming;

    fn reqs(n: usize, bytes: u32) -> Vec<BankRequest> {
        (0..n).map(|i| BankRequest { bank: i, row: i as u64 * 7, bytes }).collect()
    }

    #[test]
    fn single_access_matches_coarse_model() {
        let detailed = DetailedTiming::hbm2();
        let coarse = MemTiming::hbm2_vitis();
        for bytes in [16u32, 32, 64, 128, 256] {
            let d = detailed.single_access(bytes).as_ns();
            let c = coarse.access_time(bytes).as_ns();
            assert!((d - c).abs() / c < 0.02, "detailed {d:.0} vs coarse {c:.0} at {bytes} B");
        }
    }

    #[test]
    fn serial_axi_scales_linearly() {
        // The paper's Table 5 observation: 2 accesses take 2x one access.
        let t = DetailedTiming::hbm2();
        let one = schedule_channel(&t, SchedulerPolicy::SerialAxi, &reqs(1, 64)).makespan;
        let two = schedule_channel(&t, SchedulerPolicy::SerialAxi, &reqs(2, 64)).makespan;
        let four = schedule_channel(&t, SchedulerPolicy::SerialAxi, &reqs(4, 64)).makespan;
        assert_eq!(two, one * 2);
        assert_eq!(four, one * 4);
    }

    #[test]
    fn bank_parallel_overlaps_distinct_banks() {
        let t = DetailedTiming::hbm2();
        let serial = schedule_channel(&t, SchedulerPolicy::SerialAxi, &reqs(4, 64)).makespan;
        let parallel = schedule_channel(&t, SchedulerPolicy::BankParallel, &reqs(4, 64)).makespan;
        assert!(
            parallel.as_ns() < serial.as_ns() * 0.5,
            "bank parallelism should at least halve 4-deep service: {parallel} vs {serial}"
        );
        // But not below the controller + one activation + four bus bursts.
        let floor = t.t_controller + t.t_rcd + t.t_cas + t.burst_time(64) * 4;
        assert!(parallel >= floor, "{parallel} vs floor {floor}");
    }

    #[test]
    fn same_bank_requests_still_serialize() {
        let t = DetailedTiming::hbm2();
        let same_bank: Vec<BankRequest> =
            (0..4).map(|i| BankRequest { bank: 0, row: i, bytes: 64 }).collect();
        let parallel = schedule_channel(&t, SchedulerPolicy::BankParallel, &same_bank).makespan;
        let spread = schedule_channel(&t, SchedulerPolicy::BankParallel, &reqs(4, 64)).makespan;
        assert!(parallel > spread, "bank conflicts must cost: {parallel} vs {spread}");
    }

    #[test]
    fn faw_limits_activation_bursts() {
        let mut t = DetailedTiming::hbm2();
        t.t_faw = SimTime::from_us(1.0); // absurdly strict window
        let gated = schedule_channel(&t, SchedulerPolicy::BankParallel, &reqs(8, 32)).makespan;
        let relaxed = {
            let mut t2 = t.clone();
            t2.t_faw = SimTime::ZERO;
            schedule_channel(&t2, SchedulerPolicy::BankParallel, &reqs(8, 32)).makespan
        };
        assert!(gated > relaxed, "tFAW must gate: {gated} vs {relaxed}");
    }

    #[test]
    fn completions_are_monotone_and_empty_is_empty() {
        let t = DetailedTiming::hbm2();
        for policy in [SchedulerPolicy::SerialAxi, SchedulerPolicy::BankParallel] {
            let result = schedule_channel(&t, policy, &reqs(6, 48));
            for w in result.completions.windows(2) {
                assert!(w[1] >= w[0]);
            }
            assert_eq!(result.makespan, *result.completions.last().unwrap());
            let empty = schedule_channel(&t, policy, &[]);
            assert!(empty.completions.is_empty());
            assert_eq!(empty.makespan, SimTime::ZERO);
        }
    }
}
