//! A push after close, justified: this endpoint's shutdown handshake
//! sends one sentinel that the peer reads before observing the close.

impl Handshake {
    pub fn shutdown(&self) {
        self.ring.close();
        // lint: allow(ring-protocol) sentinel send raced with close is absorbed by the peer's drain
        let _ = self.ring.try_push(SENTINEL);
    }
}
