//! Reusable scratch buffers for the zero-allocation inference fast path.
//!
//! Every MLP forward pass needs two activation buffers (layer input and
//! layer output, ping-ponged between layers). Allocating them per call puts
//! the allocator on the serving hot path; [`ScratchArena`] owns both
//! buffers so a warmed arena serves an unbounded stream of predictions
//! without touching the heap: `Vec::clear` + `extend_from_slice` and
//! `resize` never allocate while the request fits the reserved capacity.
//!
//! # Lifetime rules
//!
//! The slice returned by a forward pass borrows the arena, so it must be
//! consumed (or copied out) before the arena is reused. An arena is *not*
//! thread-safe — give each engine replica / worker thread its own. After an
//! error the arena's contents are unspecified but its capacity is intact;
//! just issue the next forward pass.

use crate::fixed::FixedNum;

/// Two reusable ping-pong activation buffers.
///
/// # Examples
///
/// ```
/// use microrec_dnn::{Mlp, ScratchArena};
///
/// let mlp = Mlp::top_mlp(32, &[64, 16], 9)?;
/// let mut arena = ScratchArena::<f32>::new();
/// arena.warm(mlp.max_width()); // one-off; after this, forwards never allocate
/// let x = vec![0.1f32; 32];
/// let ctr = mlp.forward_with(&x, &mut arena)?[0];
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScratchArena<T> {
    ping: Vec<T>,
    pong: Vec<T>,
}

impl<T: FixedNum> ScratchArena<T> {
    /// Creates an empty arena (first use will allocate; call
    /// [`ScratchArena::warm`] to front-load that).
    #[must_use]
    pub fn new() -> Self {
        // lint: allow(transitive-hot-path-alloc) empty vecs; warm() front-loads the real allocation
        ScratchArena { ping: Vec::new(), pong: Vec::new() }
    }

    /// Reserves `capacity` elements in both buffers. For an [`Mlp`] this is
    /// `batch * mlp.max_width()`; after warming, forward passes up to that
    /// size perform zero heap allocations.
    ///
    /// [`Mlp`]: crate::Mlp
    pub fn warm(&mut self, capacity: usize) {
        self.ping.reserve(capacity.saturating_sub(self.ping.len()));
        self.pong.reserve(capacity.saturating_sub(self.pong.len()));
    }

    /// Guaranteed allocation-free request size (minimum of the two buffer
    /// capacities).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ping.capacity().min(self.pong.capacity())
    }

    /// Loads `input` into the front buffer.
    pub(crate) fn load(&mut self, input: &[T]) {
        self.ping.clear();
        self.ping.extend_from_slice(input);
    }

    /// Front (current activations) and back (next layer's output) buffers.
    pub(crate) fn buffers(&mut self) -> (&[T], &mut Vec<T>) {
        (&self.ping, &mut self.pong)
    }

    /// Makes the freshly written back buffer the new front.
    pub(crate) fn swap(&mut self) {
        std::mem::swap(&mut self.ping, &mut self.pong);
    }

    /// The front buffer (the result after the last layer's swap).
    pub(crate) fn front(&self) -> &[T] {
        &self.ping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_reserves_both_buffers() {
        let mut arena = ScratchArena::<f32>::new();
        assert_eq!(arena.capacity(), 0);
        arena.warm(128);
        assert!(arena.capacity() >= 128);
        // Warming smaller never shrinks.
        arena.warm(16);
        assert!(arena.capacity() >= 128);
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut arena = ScratchArena::<f32>::new();
        arena.load(&[1.0, 2.0]);
        {
            let (front, back) = arena.buffers();
            assert_eq!(front, &[1.0, 2.0]);
            back.clear();
            back.extend_from_slice(&[3.0]);
        }
        arena.swap();
        assert_eq!(arena.front(), &[3.0]);
    }

    #[test]
    fn reuse_within_capacity_does_not_grow() {
        let mut arena = ScratchArena::<f32>::new();
        arena.warm(64);
        let cap = (arena.ping.capacity(), arena.pong.capacity());
        for n in [64usize, 1, 32, 64] {
            arena.load(&vec![0.5; n]);
            let (_, back) = arena.buffers();
            back.resize(n, 0.0);
            arena.swap();
        }
        assert_eq!((arena.ping.capacity(), arena.pong.capacity()), cap);
    }
}
