//! The canonical predicate loop around a condvar wait.

use std::sync::{Condvar, Mutex};

pub fn wait_ready(lock: &Mutex<bool>, ready: &Condvar) {
    let mut guard = lock.lock().unwrap();
    while !*guard {
        guard = ready.wait(guard).unwrap();
    }
}
