//! Functional CPU reference engine.
//!
//! Unlike [`CpuTimingModel`](crate::CpuTimingModel), which *predicts* the
//! baseline's latency, this engine actually executes recommendation
//! inference in `f32` on the host: gather the embeddings, run the top MLP.
//! It serves as the numerical ground truth the accelerator's fixed-point
//! results are compared against, and as the workload under the measured
//! (Criterion) CPU benchmarks.

use microrec_dnn::{Matrix, Mlp};
use microrec_embedding::{synthetic_dense_features, Catalog, EmbeddingError, MergePlan, ModelSpec};

use crate::error::CpuError;

/// A batch of queries: one row-index vector per item.
pub type QueryBatch = Vec<Vec<u64>>;

/// The functional CPU engine: embedding catalog + top MLP.
///
/// # Examples
///
/// ```
/// use microrec_cpu::CpuReferenceEngine;
/// use microrec_embedding::ModelSpec;
///
/// let model = ModelSpec::dlrm_rmc2(8, 4);
/// let engine = CpuReferenceEngine::build(&model, 42)?;
/// let query: Vec<u64> = vec![7; 8 * 4]; // 8 tables x 4 lookups each
/// let ctr = engine.predict(&query)?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_cpu::CpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpuReferenceEngine {
    model: ModelSpec,
    catalog: Catalog,
    mlp: Mlp,
    bottom: Option<Mlp>,
}

impl CpuReferenceEngine {
    /// Builds the engine for `model` with procedural tables and Xavier
    /// weights derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] if the model spec is inconsistent.
    pub fn build(model: &ModelSpec, seed: u64) -> Result<Self, CpuError> {
        model.validate()?;
        let catalog = Catalog::build(model, &MergePlan::none(), seed)?;
        let mlp = Mlp::top_mlp(model.feature_len(), &model.hidden, seed ^ 0x5EED)?;
        let bottom = if model.has_bottom_mlp() {
            Some(Mlp::bottom_mlp(model.dense_dim, &model.bottom_hidden, seed ^ 0x5EED)?)
        } else {
            None
        };
        Ok(CpuReferenceEngine { model: model.clone(), catalog, mlp, bottom })
    }

    /// The model this engine serves.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The embedding catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The top MLP (shared — the accelerator quantizes these same weights).
    #[must_use]
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Gathers the concatenated feature vector for one query.
    ///
    /// A query supplies `lookups_per_table` indices for every table,
    /// ordered round-major: all tables' first lookups, then all tables'
    /// second lookups, and so on.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] for arity or range violations.
    pub fn gather_features(&self, query: &[u64]) -> Result<Vec<f32>, CpuError> {
        let tables = self.model.num_tables();
        let rounds = self.model.lookups_per_table as usize;
        if query.len() != tables * rounds {
            return Err(CpuError::from(EmbeddingError::ArityMismatch {
                expected: tables * rounds,
                actual: query.len(),
            }));
        }
        let mut features = Vec::with_capacity(self.model.feature_len() as usize);
        // Dense path first: raw features, or the bottom MLP's activations
        // (dense inputs are derived deterministically from the query so the
        // accelerator path can reproduce them bit-for-bit).
        if self.model.dense_dim > 0 {
            let dense = synthetic_dense_features(query, self.model.dense_dim);
            match &self.bottom {
                Some(bottom) => features.extend(bottom.forward(&dense)?),
                None => features.extend(dense),
            }
        }
        for round in 0..rounds {
            let indices = &query[round * tables..(round + 1) * tables];
            features.extend(self.catalog.gather_vec(indices)?);
        }
        Ok(features)
    }

    /// Predicts the CTR for one query.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] for malformed queries.
    pub fn predict(&self, query: &[u64]) -> Result<f32, CpuError> {
        let features = self.gather_features(query)?;
        Ok(self.mlp.predict_ctr(&features)?)
    }

    /// Predicts CTRs for a batch using the blocked-GEMM batched path (the
    /// execution mode of the TensorFlow baseline).
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] for malformed queries.
    pub fn predict_batch(&self, batch: &QueryBatch) -> Result<Vec<f32>, CpuError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let feat_len = self.model.feature_len() as usize;
        let mut inputs = Matrix::zeros(batch.len(), feat_len);
        for (r, query) in batch.iter().enumerate() {
            let features = self.gather_features(query)?;
            let row_start = r * feat_len;
            inputs.as_mut_slice()[row_start..row_start + feat_len].copy_from_slice(&features);
        }
        let out = self.mlp.forward_batch(&inputs)?;
        Ok((0..batch.len()).map(|r| out.get(r, 0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_engine() -> CpuReferenceEngine {
        CpuReferenceEngine::build(&ModelSpec::dlrm_rmc2(4, 8), 7).unwrap()
    }

    #[test]
    fn predict_is_deterministic_probability() {
        let e = toy_engine();
        let q: Vec<u64> = (0..16).map(|i| i * 1000).collect();
        let a = e.predict(&q).unwrap();
        assert_eq!(a, e.predict(&q).unwrap());
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn different_queries_differ() {
        let e = toy_engine();
        let q1: Vec<u64> = vec![1; 16];
        let q2: Vec<u64> = vec![400_000; 16];
        assert_ne!(e.predict(&q1).unwrap(), e.predict(&q2).unwrap());
    }

    #[test]
    fn batch_matches_single() {
        let e = toy_engine();
        let batch: QueryBatch =
            (0..8).map(|i| (0..16).map(|j| (i * 37 + j * 113) % 500_000).collect()).collect();
        let batched = e.predict_batch(&batch).unwrap();
        for (q, &b) in batch.iter().zip(&batched) {
            let single = e.predict(q).unwrap();
            assert!((single - b).abs() < 1e-4, "batch {b} vs single {single}");
        }
    }

    #[test]
    fn multi_lookup_rounds_are_distinct_features() {
        // Changing only a second-round index must change the prediction.
        let e = toy_engine();
        let mut q: Vec<u64> = vec![5; 16];
        let base = e.predict(&q).unwrap();
        q[7] = 123_456; // round 1, table 3
        assert_ne!(base, e.predict(&q).unwrap());
    }

    #[test]
    fn malformed_queries_rejected() {
        let e = toy_engine();
        assert!(e.predict(&[0u64; 15]).is_err(), "wrong arity");
        let mut q = vec![0u64; 16];
        q[0] = u64::MAX;
        assert!(e.predict(&q).is_err(), "out of range");
    }

    #[test]
    fn empty_batch_is_fine() {
        let e = toy_engine();
        assert!(e.predict_batch(&Vec::new()).unwrap().is_empty());
    }

    #[test]
    fn feature_vector_has_model_width() {
        let e = toy_engine();
        let q: Vec<u64> = vec![0; 16];
        assert_eq!(e.gather_features(&q).unwrap().len(), 4 * 8 * 4);
    }
}
