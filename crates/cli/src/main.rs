//! `microrec` — command-line interface to the MicroRec reproduction.
//!
//! ```text
//! microrec plan --model small -v
//! microrec predict --model dlrm:8x16 --queries 5
//! microrec compare --model large --batch 2048 --precision fixed32
//! microrec explore --model small --top 5
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

use args::{parse, Command, USAGE};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&argv) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &cli.command {
        Command::Help => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Command::Plan { model, no_merge, strategy, verbose, json } => {
            commands::run_plan(model, *no_merge, *strategy, *verbose, *json)
        }
        Command::Predict { model, queries, precision, zipf, seed } => {
            commands::run_predict(model, *queries, *precision, *zipf, *seed)
        }
        Command::Compare { model, batch, precision } => {
            commands::run_compare(model, *batch, *precision)
        }
        Command::Explore { model, precision, top } => {
            commands::run_explore(model, *precision, *top)
        }
        Command::Serve {
            model,
            rate,
            queries,
            sla_ms,
            hybrid,
            live,
            workers,
            max_batch,
            wait_us,
            queue_depth,
            reject,
            execution,
            slo_us,
            resident_bytes,
            adaptive,
        } => {
            if *live {
                let config = microrec_core::RuntimeConfig {
                    workers: *workers,
                    max_batch: *max_batch,
                    max_wait_us: *wait_us,
                    queue_depth: *queue_depth,
                    admission: if *reject {
                        microrec_core::AdmissionPolicy::Reject
                    } else {
                        microrec_core::AdmissionPolicy::Block
                    },
                    execution: *execution,
                    slo_us: *slo_us,
                    adaptive: *adaptive,
                };
                commands::run_serve_live(model, *rate, *queries, config, *resident_bytes)
            } else {
                commands::run_serve(model, *rate, *queries, *sla_ms, *hybrid)
            }
        }
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
