//! Access statistics collected by the hybrid memory.

use std::collections::BTreeMap;

use crate::bank::{BankId, MemoryKind};
use crate::time::SimTime;

/// Counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Number of read accesses serviced.
    pub reads: u64,
    /// Total payload bytes read.
    pub bytes: u64,
    /// Total time the bank spent busy servicing reads.
    pub busy: SimTime,
    /// Reads that hit an open DRAM row (only under
    /// [`RowPolicy::OpenPage`](crate::RowPolicy::OpenPage)).
    pub row_hits: u64,
}

impl BankStats {
    /// Records one read of `bytes` taking `t`.
    pub fn record(&mut self, bytes: u32, t: SimTime) {
        self.record_with_hit(bytes, t, false);
    }

    /// Records one read, noting whether it hit an open row.
    pub fn record_with_hit(&mut self, bytes: u32, t: SimTime, row_hit: bool) {
        self.reads += 1;
        self.bytes += u64::from(bytes);
        self.busy += t;
        if row_hit {
            self.row_hits += 1;
        }
    }

    /// Fraction of reads that hit an open row.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.reads as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &BankStats) {
        self.reads += other.reads;
        self.bytes += other.bytes;
        self.busy += other.busy;
        self.row_hits += other.row_hits;
    }
}

/// Statistics across the whole hybrid memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessStats {
    per_bank: BTreeMap<BankId, BankStats>,
}

impl AccessStats {
    /// Creates an empty statistics collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read against `bank`.
    pub fn record(&mut self, bank: BankId, bytes: u32, t: SimTime) {
        self.per_bank.entry(bank).or_default().record(bytes, t);
    }

    /// Records one read against `bank`, noting an open-row hit.
    pub fn record_with_hit(&mut self, bank: BankId, bytes: u32, t: SimTime, row_hit: bool) {
        self.per_bank.entry(bank).or_default().record_with_hit(bytes, t, row_hit);
    }

    /// Counters for one bank, if it was ever accessed.
    #[must_use]
    pub fn bank(&self, bank: BankId) -> Option<&BankStats> {
        self.per_bank.get(&bank)
    }

    /// Iterates over `(bank, stats)` pairs in bank order.
    pub fn iter(&self) -> impl Iterator<Item = (&BankId, &BankStats)> {
        self.per_bank.iter()
    }

    /// Aggregated counters for one memory technology.
    #[must_use]
    pub fn by_kind(&self, kind: MemoryKind) -> BankStats {
        let mut agg = BankStats::default();
        for (id, s) in &self.per_bank {
            if id.kind == kind {
                agg.merge(s);
            }
        }
        agg
    }

    /// Aggregated counters over every bank.
    #[must_use]
    pub fn total(&self) -> BankStats {
        let mut agg = BankStats::default();
        for s in self.per_bank.values() {
            agg.merge(s);
        }
        agg
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.per_bank.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut s = AccessStats::new();
        let h0 = BankId::new(MemoryKind::Hbm, 0);
        let h1 = BankId::new(MemoryKind::Hbm, 1);
        let d0 = BankId::new(MemoryKind::Ddr, 0);
        s.record(h0, 64, SimTime::from_ns(400.0));
        s.record(h0, 64, SimTime::from_ns(400.0));
        s.record(h1, 32, SimTime::from_ns(350.0));
        s.record(d0, 128, SimTime::from_ns(500.0));

        assert_eq!(s.bank(h0).unwrap().reads, 2);
        let hbm = s.by_kind(MemoryKind::Hbm);
        assert_eq!(hbm.reads, 3);
        assert_eq!(hbm.bytes, 160);
        assert_eq!(s.total().reads, 4);
        assert_eq!(s.total().busy, SimTime::from_ns(1650.0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = AccessStats::new();
        s.record(BankId::new(MemoryKind::Bram, 0), 4, SimTime::from_ns(10.0));
        s.reset();
        assert_eq!(s.total(), BankStats::default());
        assert!(s.iter().next().is_none());
    }

    #[test]
    fn by_kind_on_untouched_kind_is_zero() {
        let s = AccessStats::new();
        assert_eq!(s.by_kind(MemoryKind::Uram), BankStats::default());
    }
}
