//! The event-driven flow simulator against the analytic pipeline model,
//! on randomized stage configurations (seeded RNG, reproducible).

use microrec_rng::Rng;

use microrec_accel::{AccelConfig, FlowSim, Pipeline};
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::SimTime;

/// Builds a pipeline with arbitrary-ish stage times by varying the model
/// shape and lookup time.
fn build_pipeline(feat: u32, h1: u32, h2: u32, lookup_ns: f64) -> Pipeline {
    let tables = (feat / 4).max(1);
    let model = ModelSpec::new(
        "prop",
        (0..tables).map(|i| TableSpec::new(format!("t{i}"), 100, 4)).collect(),
        vec![h1, h2],
        1,
    );
    let cfg = AccelConfig {
        clock_hz: 120_000_000,
        precision: Precision::Fixed16,
        pes_per_layer: vec![16, 16],
        macs_per_pe_cycle: 8,
    };
    Pipeline::build(&model, &cfg, SimTime::from_ns(lookup_ns)).unwrap()
}

/// Simulation and analysis agree exactly for deterministic stages.
#[test]
fn flow_matches_analytic() {
    let mut rng = Rng::seed_from_u64(0xF10A);
    for _ in 0..48 {
        let feat = rng.gen_range_u64(4, 256) as u32;
        let h1 = rng.gen_range_u64(8, 512) as u32;
        let h2 = rng.gen_range_u64(8, 512) as u32;
        let lookup_ns = rng.gen_range_f64(1.0, 5_000.0);
        let n = rng.gen_range_usize(1, 120);
        let fifo = rng.gen_range_usize(1, 8);
        let p = build_pipeline(feat, h1, h2, lookup_ns);
        let sim = FlowSim::new(&p, fifo);
        let report = sim.run_saturated(n);
        assert_eq!(report.completions[0], p.latency());
        assert_eq!(report.makespan(), p.batch_latency(n as u64));
    }
}

/// Latencies are monotone in queue position under saturation.
#[test]
fn saturated_latency_monotone() {
    let mut rng = Rng::seed_from_u64(0x5A70);
    let p = build_pipeline(64, 128, 64, 400.0);
    for _ in 0..16 {
        let n = rng.gen_range_usize(2, 60);
        let report = FlowSim::new(&p, 2).run_saturated(n);
        for w in report.latencies.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}

/// Arrival jitter never reduces a completion below the saturated schedule
/// (work conservation).
#[test]
fn jittered_arrivals_complete_no_earlier() {
    let mut rng = Rng::seed_from_u64(0x717E);
    let p = build_pipeline(64, 128, 64, 400.0);
    let sim = FlowSim::new(&p, 2);
    for _ in 0..24 {
        let count = rng.gen_range_usize(1, 60);
        let mut t = SimTime::ZERO;
        let arrivals: Vec<SimTime> = (0..count)
            .map(|_| {
                t += SimTime::from_ps(rng.gen_range_u64(0, 10_000));
                t
            })
            .collect();
        let jittered = sim.run(&arrivals);
        let saturated = sim.run_saturated(arrivals.len());
        for (j, s) in jittered.completions.iter().zip(&saturated.completions) {
            assert!(j >= s);
        }
    }
}

/// The flow simulator reproduces the Figure 7 knee: repeated-lookup
/// pipelines stay compute-bound until the lookup stage dominates.
#[test]
fn flow_reproduces_figure7_knee() {
    let model = ModelSpec::small_production();
    let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
    let base = Pipeline::build(&model, &cfg, SimTime::from_ns(485.0)).unwrap();
    let base_tp = FlowSim::new(&base, 2).run_saturated(300).throughput_items_per_sec();
    let mut knee = 0;
    for rounds in 1..=12u32 {
        let p = base.with_lookup_rounds(rounds);
        let tp = FlowSim::new(&p, 2).run_saturated(300).throughput_items_per_sec();
        if tp < base_tp * 0.99 {
            knee = rounds;
            break;
        }
    }
    assert!((5..=9).contains(&knee), "event-driven knee at {knee}");
}
