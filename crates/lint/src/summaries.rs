//! Per-function summaries and their propagation over the call graph.
//!
//! In the spirit of compositional lock-set analyzers (RacerD-style),
//! each function gets a *summary* of the facts the interprocedural lints
//! need — does it allocate, can it panic, which locks does it acquire,
//! can it block, which ring endpoints does it touch — computed from its
//! own body, then propagated over the call graph to a fixpoint so a
//! caller inherits its callees' behavior without whole-program
//! execution.
//!
//! Lock identity is lexical: an acquisition's *label* is the last field
//! or variable segment of the receiver expression
//! (`self.stats.hist` → `hist`, `self.slots[i]` → `slots`). Two
//! distinct mutexes behind one field name merge (conservative: may
//! report a spurious cycle, never hides one between distinctly named
//! locks); one mutex reached through differently named bindings splits
//! (a documented miss). Guards are held from acquisition to an explicit
//! `drop(binding)`, the end of the binding's block, or — for guard
//! temporaries that are immediately chained (`lock().len()`) — the end
//! of the statement.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::index::{FnId, WorkspaceIndex};
use crate::source::{FindingKind, Tok, Token};

/// A direct allocation/panic site inside one function.
#[derive(Debug, Clone)]
pub struct Site {
    pub what: String,
    pub line: usize,
}

/// One direct lock acquisition, with the labels already held at it.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    pub label: String,
    pub line: usize,
    pub held: Vec<String>,
}

/// One direct potentially-blocking operation, with the *foreign* locks
/// held at it (a condvar wait's own guard is excluded).
#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub what: String,
    pub line: usize,
    pub held: Vec<String>,
}

/// Ring-endpoint operations the protocol lint reasons about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOpKind {
    /// `try_push` / `push_blocking`.
    Push,
    /// `pop_blocking` (terminates on close+drain by construction).
    BlockingPop,
    /// `try_pop` (can spin forever without a close check).
    TryPop,
    /// `close` / `close_all`.
    Close,
    /// Reorder-buffer `insert`.
    Insert,
    /// Occupancy / drain checks: `is_full`, `is_empty`, `len`,
    /// `capacity`, `take`.
    OccupancyCheck,
    /// `is_closed`.
    ClosedCheck,
}

/// One ring-endpoint operation in source order.
#[derive(Debug, Clone)]
pub struct RingOp {
    pub kind: RingOpKind,
    /// Receiver label (same lexical rule as lock labels).
    pub label: String,
    pub line: usize,
    /// Monotonic source-order sequence within the function.
    pub seq: usize,
    /// Index into [`FnFacts::loops`] of the innermost enclosing loop.
    pub loop_idx: Option<usize>,
}

/// One loop in a function body.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// A bare `loop { .. }` (as opposed to `while`/`for`).
    pub bare: bool,
    /// The loop body contains a `break`, `return`, or `?`.
    pub has_exit: bool,
}

/// Everything extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub allocs: Vec<Site>,
    pub panics: Vec<Site>,
    pub acquires: Vec<LockAcquire>,
    pub blocking: Vec<BlockingSite>,
    /// Lock labels held at each call site, keyed by the callee-name
    /// token index ([`crate::callgraph::CallSite::tok`]).
    pub held_at_call: BTreeMap<usize, Vec<String>>,
    pub ring_ops: Vec<RingOp>,
    pub loops: Vec<LoopInfo>,
    /// `Some(label)` when the function returns a `MutexGuard` over the
    /// lock it acquires (a lock helper like `QueryQueue::lock`).
    pub returns_guard: Option<String>,
}

/// Summaries for every function plus the propagated fixpoint facts.
#[derive(Debug)]
pub struct Summaries {
    pub facts: Vec<FnFacts>,
    /// `Some(witness)` when the function may block (directly or via a
    /// callee); the witness describes the nearest direct blocking site.
    pub may_block: Vec<Option<String>>,
    /// All lock labels a function may acquire, directly or transitively.
    pub acquires_all: Vec<BTreeSet<String>>,
}

impl Summaries {
    /// Builds per-function facts and runs the fixpoint propagation.
    #[must_use]
    pub fn build(index: &WorkspaceIndex, graph: &CallGraph) -> Summaries {
        // Pass A: body-local facts, which also yields `returns_guard`
        // for the lock-helper pattern.
        let mut facts: Vec<FnFacts> = index
            .ids()
            .map(|id| {
                if is_lock_helper(index, id) {
                    // The poison-recovery helpers are modeled at their
                    // call sites, not as ordinary functions.
                    FnFacts::default()
                } else {
                    extract(index, graph, id, &BTreeMap::new())
                }
            })
            .collect();
        // Pass B: re-extract with helper knowledge, so a call to a
        // guard-returning helper counts as acquiring its lock.
        let helpers: BTreeMap<FnId, String> = facts
            .iter()
            .enumerate()
            .filter_map(|(id, f)| f.returns_guard.clone().map(|label| (id, label)))
            .collect();
        if !helpers.is_empty() {
            for id in index.ids() {
                if !is_lock_helper(index, id) {
                    facts[id] = extract(index, graph, id, &helpers);
                }
            }
        }
        let may_block = propagate_blocking(index, graph, &facts);
        let acquires_all = propagate_acquires(index, graph, &facts);
        Summaries { facts, may_block, acquires_all }
    }
}

/// The poison-tolerant helpers in `core::sync` (and the generic
/// `recover`) are acquisition *primitives*: their bodies would read as
/// "locks `mutex`" which is meaningless out of context.
fn is_lock_helper(index: &WorkspaceIndex, id: FnId) -> bool {
    let (_, def) = index.lookup(id);
    matches!(def.name.as_str(), "lock_or_recover" | "recover")
}

/// Direct alloc/panic facts come from the structural scan's findings,
/// mapped onto the function whose body contains them.
fn seed_sites(index: &WorkspaceIndex, id: FnId, facts: &mut FnFacts) {
    let (file, def) = index.lookup(id);
    if def.in_test {
        return;
    }
    let start_line = file.tokens.get(def.body.0).map_or(def.line, |t| t.line);
    let end_line = file.tokens.get(def.body.1).map_or(usize::MAX, |t| t.line);
    for finding in &file.scan.findings {
        if finding.func.as_deref() != Some(def.name.as_str()) || finding.qual != def.qual {
            continue;
        }
        if finding.line < start_line.min(def.line) || finding.line > end_line {
            continue;
        }
        match &finding.kind {
            FindingKind::Alloc { what } => {
                facts.allocs.push(Site { what: (*what).to_string(), line: finding.line });
            }
            FindingKind::PanicCall { what } => {
                facts.panics.push(Site { what: (*what).to_string(), line: finding.line });
            }
            _ => {}
        }
    }
}

/// A lock currently held during the body walk.
#[derive(Debug)]
struct Held {
    label: String,
    /// Brace depth (relative to the body) at acquisition; released when
    /// the enclosing block closes.
    depth: usize,
    /// `let` binding holding the guard, when one exists.
    binding: Option<String>,
    /// Guard was a temporary (chained or `drop(..)`-wrapped); released
    /// at the end of the statement.
    temp: bool,
}

struct Walker<'a> {
    tokens: &'a [Token],
    held: Vec<Held>,
    depth: usize,
    paren_depth: i32,
    /// Token indices since the last statement boundary.
    stmt: Vec<usize>,
    /// Stack of (loop index, depth) for loops currently open.
    loop_stack: Vec<(usize, usize)>,
    facts: FnFacts,
    ring_seq: usize,
}

impl<'a> Walker<'a> {
    fn word(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn punct(&self, i: usize) -> Option<char> {
        match self.tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    fn held_labels(&self) -> Vec<String> {
        self.held.iter().map(|h| h.label.clone()).collect()
    }

    /// Index just past the matching `)` for the `(` at `open`.
    fn close_paren(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < self.tokens.len() {
            match self.tokens[i].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.tokens.len() - 1
    }

    /// Label of the receiver chain ending just before token `end`
    /// (exclusive): the nearest field/variable segment, skipping one
    /// index/call group (`slots[i]` → `slots`, `expected_ring()` →
    /// `expected_ring`).
    fn receiver_label(&self, end: usize) -> Option<String> {
        let mut i = end;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            match &self.tokens[i].tok {
                Tok::Punct(']') | Tok::Punct(')') => {
                    // Skip the bracketed group.
                    let (open, close) = match self.tokens[i].tok {
                        Tok::Punct(']') => ('[', ']'),
                        _ => ('(', ')'),
                    };
                    let mut depth = 1i32;
                    while i > 0 && depth > 0 {
                        i -= 1;
                        match &self.tokens[i].tok {
                            Tok::Punct(c) if *c == close => depth += 1,
                            Tok::Punct(c) if *c == open => depth -= 1,
                            _ => {}
                        }
                    }
                }
                Tok::Word(w) => {
                    if w == "self" {
                        return None;
                    }
                    return Some(w.clone());
                }
                Tok::Punct('.') | Tok::Punct(':') => {}
                _ => return None,
            }
        }
    }

    /// Label of the mutex expression inside `lock_or_recover( … )`:
    /// the last identifier in the argument span that is not `self`.
    fn arg_label(&self, open: usize, close: usize) -> Option<String> {
        let mut label = None;
        for tok in &self.tokens[open + 1..close] {
            if let Tok::Word(w) = &tok.tok {
                if w != "self" && w != "mut" {
                    label = Some(w.clone());
                }
            }
        }
        label
    }

    /// Classifies how the guard produced by the acquisition whose call
    /// closes at `close` is held, and returns (binding, temp).
    fn guard_binding(&self, mut close: usize) -> (Option<String>, bool) {
        // Skip poison adapters chained directly on the lock result.
        loop {
            if self.punct(close + 1) == Some('.')
                && matches!(
                    self.word(close + 2),
                    Some("unwrap" | "expect" | "unwrap_or_else" | "map_err")
                )
                && self.punct(close + 3) == Some('(')
            {
                close = self.close_paren(close + 3);
                continue;
            }
            break;
        }
        if self.punct(close + 1) == Some('.') || self.punct(close + 1) == Some('?') {
            // Further chained — the guard is a statement temporary.
            return (None, true);
        }
        // `drop( lock() )` wrapper: temporary by construction.
        let stmt_words: Vec<&str> = self.stmt.iter().filter_map(|&idx| self.word(idx)).collect();
        if stmt_words.first() == Some(&"drop") {
            return (None, true);
        }
        // `let [mut] name = <acquisition>;` binds the guard.
        if stmt_words.first() == Some(&"let") {
            let name = stmt_words
                .iter()
                .skip(1)
                .find(|w| !matches!(**w, "mut" | "ref"))
                .map(|w| (*w).to_string());
            if name.is_some() {
                return (name, false);
            }
        }
        (None, true)
    }

    fn acquire(&mut self, label: String, line: usize, close: usize) {
        let (binding, temp) = self.guard_binding(close);
        self.facts.acquires.push(LockAcquire {
            label: label.clone(),
            line,
            held: self.held_labels(),
        });
        self.held.push(Held { label, depth: self.depth, binding, temp });
    }

    fn release_temps(&mut self) {
        self.held.retain(|h| !h.temp);
    }

    fn release_block(&mut self) {
        let depth = self.depth;
        self.held.retain(|h| h.depth < depth);
    }

    fn release_binding(&mut self, name: &str) {
        self.held.retain(|h| h.binding.as_deref() != Some(name));
    }

    fn mark_loop_exits(&mut self) {
        for &(loop_idx, _) in &self.loop_stack {
            self.facts.loops[loop_idx].has_exit = true;
        }
    }

    fn ring_op(&mut self, kind: RingOpKind, label: String, line: usize) {
        let seq = self.ring_seq;
        self.ring_seq += 1;
        self.facts.ring_ops.push(RingOp {
            kind,
            label,
            line,
            seq,
            loop_idx: self.loop_stack.last().map(|&(idx, _)| idx),
        });
    }
}

/// Words opening a block: decide whether the `{` starts a loop and
/// whether that loop is a bare `loop`.
fn loop_kind(stmt_words: &[&str]) -> Option<bool> {
    let mut bare = None;
    for w in stmt_words {
        match *w {
            "loop" => bare = Some(true),
            "while" | "for" => bare = Some(false),
            _ => {}
        }
    }
    bare
}

#[allow(clippy::too_many_lines)]
fn extract(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    id: FnId,
    helpers: &BTreeMap<FnId, String>,
) -> FnFacts {
    let (file, def) = index.lookup(id);
    let mut facts = FnFacts::default();
    seed_sites(index, id, &mut facts);

    // Guard-returning helper detection: signature mentions MutexGuard.
    let sig_has_guard = def.sig.iter().any(|w| w == "MutexGuard");

    // Call sites of this fn, keyed by token index, with helper labels.
    let helper_calls: BTreeMap<usize, String> = graph
        .of(id)
        .iter()
        .filter_map(|c| helpers.get(&c.callee).map(|label| (c.tok, label.clone())))
        .collect();
    let call_toks: BTreeSet<usize> = graph.of(id).iter().map(|c| c.tok).collect();

    let nested: Vec<(usize, usize)> = file
        .scan
        .functions
        .iter()
        .filter(|f| f.body.0 > def.body.0 && f.body.1 <= def.body.1)
        .map(|f| f.body)
        .collect();

    let mut w = Walker {
        tokens: &file.tokens,
        held: Vec::new(),
        depth: 0,
        paren_depth: 0,
        stmt: Vec::new(),
        loop_stack: Vec::new(),
        facts,
        ring_seq: 0,
    };

    let mut i = def.body.0;
    let end = def.body.1.min(w.tokens.len());
    while i < end {
        if let Some(&(_, nested_end)) = nested.iter().find(|&&(s, e)| i >= s && i < e) {
            i = nested_end;
            continue;
        }
        let line = w.tokens[i].line;
        match &w.tokens[i].tok {
            Tok::Punct('{') => {
                let kind = {
                    let stmt_words: Vec<&str> =
                        w.stmt.iter().filter_map(|&idx| w.word(idx)).collect();
                    loop_kind(&stmt_words)
                };
                // Entering a block drops `if`/`while` condition
                // temporaries (`if !m.lock().ready() { .. }` runs the
                // body unlocked). Over-releases a `match` on a guard
                // temporary — accepted imprecision, see DESIGN.md.
                w.release_temps();
                w.depth += 1;
                if let Some(bare) = kind {
                    w.facts.loops.push(LoopInfo { bare, has_exit: false });
                    let loop_idx = w.facts.loops.len() - 1;
                    w.loop_stack.push((loop_idx, w.depth));
                }
                w.stmt.clear();
            }
            Tok::Punct('}') => {
                w.release_block();
                if w.loop_stack.last().is_some_and(|&(_, d)| d == w.depth) {
                    w.loop_stack.pop();
                }
                w.depth = w.depth.saturating_sub(1);
                w.stmt.clear();
            }
            Tok::Punct(';') if w.paren_depth == 0 => {
                w.release_temps();
                w.stmt.clear();
            }
            Tok::Punct('(') => {
                w.paren_depth += 1;
                w.stmt.push(i);
            }
            Tok::Punct(')') => {
                w.paren_depth -= 1;
                w.stmt.push(i);
            }
            Tok::Punct('?') => {
                w.mark_loop_exits();
                w.stmt.push(i);
            }
            Tok::Word(word) => {
                let prev_dot = i >= 1 && w.punct(i - 1) == Some('.');
                let next_paren = w.punct(i + 1) == Some('(');
                match word.as_str() {
                    "break" | "return" => w.mark_loop_exits(),
                    // --- lock acquisitions ---
                    "lock_or_recover" if next_paren => {
                        let close = w.close_paren(i + 1);
                        if let Some(label) = w.arg_label(i + 1, close) {
                            w.acquire(label, line, close);
                        }
                    }
                    "lock" if prev_dot && next_paren && w.punct(i + 2) == Some(')') => {
                        if let Some(label) = w.receiver_label(i - 1) {
                            w.acquire(label, line, i + 2);
                        }
                    }
                    "drop" if next_paren => {
                        if let Some(binding) = w.word(i + 2) {
                            if w.punct(i + 3) == Some(')') {
                                let binding = binding.to_string();
                                w.release_binding(&binding);
                            }
                        }
                    }
                    // --- blocking operations ---
                    "wait" | "wait_timeout"
                        if prev_dot && next_paren && w.punct(i + 2) != Some(')') =>
                    {
                        let guard = w.word(i + 2).map(str::to_string);
                        let foreign: Vec<String> = w
                            .held
                            .iter()
                            .filter(|h| {
                                guard.as_deref().is_none_or(|g| h.binding.as_deref() != Some(g))
                            })
                            .map(|h| h.label.clone())
                            .collect();
                        // An unidentifiable guard with exactly one held
                        // lock is assumed to be that lock's guard.
                        let foreign =
                            if guard.is_none() && w.held.len() == 1 { Vec::new() } else { foreign };
                        w.facts.blocking.push(BlockingSite {
                            what: format!("Condvar::{word}"),
                            line,
                            held: foreign,
                        });
                    }
                    "push_blocking" | "pop_blocking" if next_paren => {
                        w.facts.blocking.push(BlockingSite {
                            what: format!("{word} (SPSC)"),
                            line,
                            held: w.held_labels(),
                        });
                        let label = if prev_dot {
                            w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string())
                        } else {
                            "ring".to_string()
                        };
                        let kind = if word == "push_blocking" {
                            RingOpKind::Push
                        } else {
                            RingOpKind::BlockingPop
                        };
                        w.ring_op(kind, label, line);
                    }
                    "park" | "park_timeout" | "sleep" if next_paren && !prev_dot => {
                        w.facts.blocking.push(BlockingSite {
                            what: format!("thread::{word}"),
                            line,
                            held: w.held_labels(),
                        });
                    }
                    "join" if prev_dot && next_paren && w.punct(i + 2) == Some(')') => {
                        w.facts.blocking.push(BlockingSite {
                            what: "JoinHandle::join".to_string(),
                            line,
                            held: w.held_labels(),
                        });
                    }
                    // --- ring protocol ---
                    "try_push" if prev_dot && next_paren => {
                        let label = w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string());
                        w.ring_op(RingOpKind::Push, label, line);
                    }
                    "try_pop" if prev_dot && next_paren => {
                        let label = w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string());
                        w.ring_op(RingOpKind::TryPop, label, line);
                    }
                    "close" | "close_all" if prev_dot && next_paren => {
                        let label = w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string());
                        w.ring_op(RingOpKind::Close, label, line);
                    }
                    "insert" if prev_dot && next_paren => {
                        let label = w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string());
                        w.ring_op(RingOpKind::Insert, label, line);
                    }
                    "take" | "is_full" | "is_empty" | "len" | "capacity"
                        if prev_dot && next_paren =>
                    {
                        if let Some(label) = w.receiver_label(i - 1) {
                            w.ring_op(RingOpKind::OccupancyCheck, label, line);
                        }
                    }
                    "is_closed" if prev_dot && next_paren => {
                        let label = w.receiver_label(i - 1).unwrap_or_else(|| "ring".to_string());
                        w.ring_op(RingOpKind::ClosedCheck, label, line);
                    }
                    _ => {}
                }
                // Helper calls acquire the helper's lock at this site.
                if let Some(label) = helper_calls.get(&i) {
                    let close = if next_paren { w.close_paren(i + 1) } else { i };
                    w.acquire(label.clone(), line, close);
                }
                // Record held locks at every resolved call site.
                if call_toks.contains(&i) {
                    let labels = w.held_labels();
                    if !labels.is_empty() {
                        w.facts.held_at_call.insert(i, labels);
                    }
                }
                w.stmt.push(i);
            }
            Tok::Punct(_) => {
                w.stmt.push(i);
            }
        }
        i += 1;
    }

    let mut facts = w.facts;
    if sig_has_guard && !def.in_test {
        facts.returns_guard = facts.acquires.first().map(|a| a.label.clone());
    }
    facts
}

/// Fixpoint: a function may block when it has a direct blocking site or
/// any callee may block. The witness is the nearest direct site.
fn propagate_blocking(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    facts: &[FnFacts],
) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = facts
        .iter()
        .enumerate()
        .map(|(id, f)| {
            f.blocking.first().map(|b| {
                let (file, _) = index.lookup(id);
                format!("`{}` at {}:{}", b.what, file.rel_path, b.line)
            })
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in index.ids() {
            if out[id].is_some() {
                continue;
            }
            for call in graph.of(id) {
                if let Some(witness) = &out[call.callee] {
                    out[id] = Some(format!("via `{}`: {}", call.display, witness));
                    changed = true;
                    break;
                }
            }
        }
    }
    out
}

/// Fixpoint: all lock labels a function may acquire, directly or via
/// callees.
fn propagate_acquires(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    facts: &[FnFacts],
) -> Vec<BTreeSet<String>> {
    let mut out: Vec<BTreeSet<String>> =
        facts.iter().map(|f| f.acquires.iter().map(|a| a.label.clone()).collect()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in index.ids() {
            let mut additions: Vec<String> = Vec::new();
            for call in graph.of(id) {
                for label in &out[call.callee] {
                    if !out[id].contains(label) {
                        additions.push(label.clone());
                    }
                }
            }
            if !additions.is_empty() {
                out[id].extend(additions);
                changed = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FileModel;

    fn summaries(sources: &[(&str, &str)]) -> (WorkspaceIndex, CallGraph, Summaries) {
        let files = sources.iter().map(|(p, s)| FileModel::build(p, s)).collect();
        let index = WorkspaceIndex::build(files);
        let graph = CallGraph::build(&index);
        let sums = Summaries::build(&index, &graph);
        (index, graph, sums)
    }

    fn facts_of<'s>(
        index: &WorkspaceIndex,
        sums: &'s Summaries,
        name: &str,
    ) -> (&'s FnFacts, FnId) {
        let id = index.by_name(name)[0];
        (&sums.facts[id], id)
    }

    #[test]
    fn nested_lock_records_held_set() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g1 = a.lock();\n    let g2 = b.lock();\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert_eq!(facts.acquires.len(), 2);
        assert!(facts.acquires[0].held.is_empty());
        assert_eq!(facts.acquires[1].held, vec!["a"]);
    }

    #[test]
    fn drop_releases_the_guard_before_the_next_acquisition() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n    let g1 = a.lock();\n    drop(g1);\n    let g2 = b.lock();\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert!(facts.acquires[1].held.is_empty(), "{:?}", facts.acquires[1]);
    }

    #[test]
    fn chained_guard_is_a_statement_temporary() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(a: &Mutex<Vec<u8>>, b: &Mutex<u8>) {\n    let n = a.lock().unwrap().len();\n    let g = b.lock();\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert!(
            facts.acquires[1].held.is_empty(),
            "temporary released at `;`: {:?}",
            facts.acquires[1]
        );
    }

    #[test]
    fn block_scope_releases_guards() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(a: &Mutex<u8>, b: &Mutex<u8>) {\n    { let g1 = lock_or_recover(a); }\n    let g2 = lock_or_recover(b);\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert!(facts.acquires[1].held.is_empty());
    }

    #[test]
    fn wait_on_own_guard_is_not_foreign_blocking() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(&self) {\n    let mut state = lock_or_recover(&self.state);\n    while state.empty {\n        state = recover(self.cv.wait(state));\n    }\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert_eq!(facts.blocking.len(), 1);
        assert!(facts.blocking[0].held.is_empty(), "{:?}", facts.blocking[0]);
    }

    #[test]
    fn wait_under_a_second_lock_is_foreign_blocking() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(&self) {\n    let outer = lock_or_recover(&self.outer);\n    let g = lock_or_recover(&self.inner);\n    let g = recover(self.cv.wait(g));\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        assert_eq!(facts.blocking[0].held, vec!["outer"]);
    }

    #[test]
    fn guard_returning_helper_propagates_to_callers() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "impl Q {\n    fn lock(&self) -> MutexGuard<'_, u8> { lock_or_recover(&self.state) }\n    fn push(&self) {\n        let mut state = self.lock();\n        let g = lock_or_recover(&self.other);\n    }\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "push");
        assert_eq!(facts.acquires.len(), 2, "{:?}", facts.acquires);
        assert_eq!(facts.acquires[0].label, "state");
        assert_eq!(facts.acquires[1].held, vec!["state"]);
    }

    #[test]
    fn blocking_and_acquires_propagate_over_calls() {
        let (index, _, sums) = summaries(&[
            ("src/a.rs", "fn top(&self) { mid(); }\nfn mid() { leaf(); }\n"),
            (
                "src/b.rs",
                "fn leaf() {\n    let g = lock_or_recover(&STATS);\n    std::thread::sleep(d);\n}\n",
            ),
        ]);
        let (_, top) = facts_of(&index, &sums, "top");
        assert!(sums.may_block[top].is_some());
        assert!(sums.acquires_all[top].contains("STATS"));
    }

    #[test]
    fn ring_ops_record_order_and_loop_context() {
        let (index, _, sums) = summaries(&[(
            "src/a.rs",
            "fn f(&self) {\n    self.ring.close();\n    let _ = self.ring.try_push(1);\n    loop {\n        if let Some(x) = self.ring.try_pop() { use_it(x); }\n    }\n}\n",
        )]);
        let (facts, _) = facts_of(&index, &sums, "f");
        let kinds: Vec<RingOpKind> = facts.ring_ops.iter().map(|o| o.kind).collect();
        assert_eq!(kinds, vec![RingOpKind::Close, RingOpKind::Push, RingOpKind::TryPop]);
        assert!(facts.ring_ops[2].loop_idx.is_some());
        let loop_info = &facts.loops[facts.ring_ops[2].loop_idx.unwrap()];
        assert!(loop_info.bare && !loop_info.has_exit);
    }
}
