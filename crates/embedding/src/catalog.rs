//! The table catalog: logical tables, merge plans, and physical lookups.
//!
//! A *logical* table is one sparse feature's embedding table as the model
//! defines it. A *physical* table is what actually sits in a memory bank —
//! either a single logical table or a Cartesian product of several. The
//! catalog maps a query (one row index per logical table) to the minimal
//! set of physical reads and gathers the concatenated feature vector, in
//! logical order, regardless of how tables were merged. Merging is thus
//! transparent to the model: merged and unmerged catalogs produce identical
//! feature vectors.

use crate::cartesian::{merged_row_index, product_spec};
use crate::error::EmbeddingError;
use crate::precision::Precision;
use crate::spec::{ModelSpec, TableSpec};
use crate::table::EmbeddingTable;

/// Which logical tables to merge into Cartesian products.
///
/// Each group lists ≥ 2 logical table indices; groups must be disjoint.
/// Logical tables in no group remain their own physical table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergePlan {
    /// Groups of logical table indices to merge, in product-member order.
    pub groups: Vec<Vec<usize>>,
}

impl MergePlan {
    /// The empty plan: no merging.
    #[must_use]
    pub fn none() -> Self {
        MergePlan::default()
    }

    /// A plan merging the given pairs.
    #[must_use]
    pub fn pairs(pairs: &[(usize, usize)]) -> Self {
        MergePlan { groups: pairs.iter().map(|&(a, b)| vec![a, b]).collect() }
    }

    /// Number of tables eliminated by the plan (Σ (group size − 1)).
    #[must_use]
    pub fn tables_eliminated(&self) -> usize {
        self.groups.iter().map(|g| g.len().saturating_sub(1)).sum()
    }

    /// Validates the plan against a model with `num_tables` logical tables.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidMergePlan`] if any group has fewer
    /// than two members, indices repeat (within or across groups), or an
    /// index is out of range.
    pub fn validate(&self, num_tables: usize) -> Result<(), EmbeddingError> {
        let mut seen = vec![false; num_tables];
        for group in &self.groups {
            if group.len() < 2 {
                return Err(EmbeddingError::InvalidMergePlan(
                    "merge group has fewer than two members".into(),
                ));
            }
            for &idx in group {
                if idx >= num_tables {
                    return Err(EmbeddingError::InvalidMergePlan(format!(
                        "table index {idx} out of range ({num_tables} tables)"
                    )));
                }
                if seen[idx] {
                    return Err(EmbeddingError::InvalidMergePlan(format!(
                        "table index {idx} used twice"
                    )));
                }
                seen[idx] = true;
            }
        }
        Ok(())
    }
}

/// One physical table: a single logical table or a Cartesian product.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalTable {
    /// Spec of what is stored (product spec for merged tables).
    pub spec: TableSpec,
    /// Logical table indices whose vectors live in each row, in
    /// concatenation order.
    pub members: Vec<usize>,
}

impl PhysicalTable {
    /// Whether this is a Cartesian product of several logical tables.
    #[must_use]
    pub fn is_merged(&self) -> bool {
        self.members.len() > 1
    }

    /// Bytes of one stored row at `precision`.
    #[must_use]
    pub fn row_bytes(&self, precision: Precision) -> u32 {
        self.spec.row_bytes(precision)
    }
}

/// One physical read produced by query resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalLookup {
    /// Index into [`Catalog::physical_tables`].
    pub table: usize,
    /// Row within the physical table.
    pub row: u64,
}

/// The catalog of a model's tables under a merge plan.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{Catalog, MergePlan, ModelSpec};
///
/// let spec = ModelSpec::dlrm_rmc2(8, 16);
/// let catalog = Catalog::build(&spec, &MergePlan::none(), 42)?;
/// assert_eq!(catalog.physical_tables().len(), 8);
/// // One read per logical table:
/// let indices = vec![0u64; 8];
/// assert_eq!(catalog.resolve(&indices)?.len(), 8);
/// # Ok::<(), microrec_embedding::EmbeddingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    logical: Vec<EmbeddingTable>,
    physical: Vec<PhysicalTable>,
    /// logical index -> (physical index, element offset within physical row,
    /// position among the physical table's members).
    logical_map: Vec<(usize, u32, usize)>,
    feature_len: u32,
}

impl Catalog {
    /// Builds the catalog for `model` under `plan`, generating procedural
    /// logical tables from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidMergePlan`] if the plan does not fit
    /// the model.
    pub fn build(model: &ModelSpec, plan: &MergePlan, seed: u64) -> Result<Self, EmbeddingError> {
        let tables: Vec<EmbeddingTable> = model
            .tables
            .iter()
            .enumerate()
            .map(|(i, spec)| EmbeddingTable::procedural(spec.clone(), seed.wrapping_add(i as u64)))
            .collect();
        Self::from_tables(tables, plan)
    }

    /// Builds the catalog from explicit logical tables under `plan`.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::InvalidMergePlan`] if the plan does not fit
    /// the tables.
    pub fn from_tables(
        logical: Vec<EmbeddingTable>,
        plan: &MergePlan,
    ) -> Result<Self, EmbeddingError> {
        plan.validate(logical.len())?;
        let mut in_group = vec![false; logical.len()];
        for group in &plan.groups {
            for &idx in group {
                in_group[idx] = true;
            }
        }

        let mut physical = Vec::new();
        let mut logical_map = vec![(usize::MAX, 0u32, 0usize); logical.len()];

        // Merged groups first, then remaining singles in logical order.
        for group in &plan.groups {
            let specs: Vec<&TableSpec> = group.iter().map(|&i| logical[i].spec()).collect();
            let spec = product_spec(&specs)?;
            let phys_idx = physical.len();
            let mut offset = 0u32;
            for (pos, &lidx) in group.iter().enumerate() {
                logical_map[lidx] = (phys_idx, offset, pos);
                offset += logical[lidx].dim();
            }
            physical.push(PhysicalTable { spec, members: group.clone() });
        }
        for (lidx, table) in logical.iter().enumerate() {
            if !in_group[lidx] {
                logical_map[lidx] = (physical.len(), 0, 0);
                physical.push(PhysicalTable { spec: table.spec().clone(), members: vec![lidx] });
            }
        }

        let feature_len = logical.iter().map(EmbeddingTable::dim).sum();
        Ok(Catalog { logical, physical, logical_map, feature_len })
    }

    /// The logical tables, in model order.
    #[must_use]
    pub fn logical_tables(&self) -> &[EmbeddingTable] {
        &self.logical
    }

    /// The physical tables (products first, then unmerged singles).
    #[must_use]
    pub fn physical_tables(&self) -> &[PhysicalTable] {
        &self.physical
    }

    /// Where logical table `idx` lives: `(physical index, element offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn locate(&self, idx: usize) -> (usize, u32) {
        let (p, off, _) = self.logical_map[idx];
        (p, off)
    }

    /// Concatenated feature length (Σ logical dims) for one lookup round.
    #[must_use]
    pub fn feature_len(&self) -> u32 {
        self.feature_len
    }

    /// Resolves one query (a row index per logical table) into the minimal
    /// physical reads: exactly one read per physical table.
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::ArityMismatch`] for the wrong number of
    /// indices and [`EmbeddingError::IndexOutOfRange`] for a bad index.
    pub fn resolve(&self, indices: &[u64]) -> Result<Vec<PhysicalLookup>, EmbeddingError> {
        if indices.len() != self.logical.len() {
            return Err(EmbeddingError::ArityMismatch {
                expected: self.logical.len(),
                actual: indices.len(),
            });
        }
        let mut lookups = Vec::with_capacity(self.physical.len());
        for (pidx, phys) in self.physical.iter().enumerate() {
            let sizes: Vec<u64> = phys.members.iter().map(|&i| self.logical[i].rows()).collect();
            let member_indices: Vec<u64> = phys.members.iter().map(|&i| indices[i]).collect();
            let row = merged_row_index(&sizes, &member_indices)?;
            lookups.push(PhysicalLookup { table: pidx, row });
        }
        Ok(lookups)
    }

    /// Functionally gathers the concatenated feature vector for a query, in
    /// logical table order (merging is invisible to the caller).
    ///
    /// # Errors
    ///
    /// Returns [`EmbeddingError::ArityMismatch`],
    /// [`EmbeddingError::IndexOutOfRange`], or
    /// [`EmbeddingError::BufferSizeMismatch`] if `out.len()` is not
    /// [`Catalog::feature_len`].
    pub fn gather(&self, indices: &[u64], out: &mut [f32]) -> Result<(), EmbeddingError> {
        if out.len() != self.feature_len as usize {
            return Err(EmbeddingError::BufferSizeMismatch {
                expected: self.feature_len as usize,
                actual: out.len(),
            });
        }
        if indices.len() != self.logical.len() {
            return Err(EmbeddingError::ArityMismatch {
                expected: self.logical.len(),
                actual: indices.len(),
            });
        }
        // Validate every index (so merged/unmerged error behaviour agrees),
        // then write each logical vector to its slot in logical order.
        let mut offset = 0usize;
        for (lidx, table) in self.logical.iter().enumerate() {
            let dim = table.dim() as usize;
            table.read_row(indices[lidx], &mut out[offset..offset + dim])?;
            offset += dim;
        }
        Ok(())
    }

    /// Convenience wrapper around [`Catalog::gather`] that allocates.
    ///
    /// # Errors
    ///
    /// Same as [`Catalog::gather`].
    pub fn gather_vec(&self, indices: &[u64]) -> Result<Vec<f32>, EmbeddingError> {
        let mut out = vec![0.0f32; self.feature_len as usize];
        self.gather(indices, &mut out)?;
        Ok(out)
    }

    /// Total physical storage at `precision`.
    #[must_use]
    pub fn total_bytes(&self, precision: Precision) -> u64 {
        self.physical.iter().map(|p| p.spec.bytes(precision)).sum()
    }

    /// Storage of the unmerged logical tables at `precision` (the baseline
    /// for overhead accounting).
    #[must_use]
    pub fn logical_bytes(&self, precision: Precision) -> u64 {
        self.logical.iter().map(|t| t.spec().bytes(precision)).sum()
    }

    /// Storage overhead factor of the merge plan (1.0 = no overhead);
    /// Table 3 reports 1.032 and 1.019 for the production models.
    #[must_use]
    pub fn storage_factor(&self, precision: Precision) -> f64 {
        self.total_bytes(precision) as f64 / self.logical_bytes(precision) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tables() -> Vec<EmbeddingTable> {
        vec![
            EmbeddingTable::procedural(TableSpec::new("a", 4, 2), 1),
            EmbeddingTable::procedural(TableSpec::new("b", 3, 3), 2),
            EmbeddingTable::procedural(TableSpec::new("c", 5, 1), 3),
            EmbeddingTable::procedural(TableSpec::new("d", 2, 4), 4),
        ]
    }

    #[test]
    fn unmerged_catalog_is_identity() {
        let cat = Catalog::from_tables(tiny_tables(), &MergePlan::none()).unwrap();
        assert_eq!(cat.physical_tables().len(), 4);
        assert_eq!(cat.feature_len(), 10);
        let lookups = cat.resolve(&[1, 2, 3, 0]).unwrap();
        assert_eq!(lookups.len(), 4);
        assert_eq!(lookups[2], PhysicalLookup { table: 2, row: 3 });
    }

    #[test]
    fn merged_catalog_reduces_reads() {
        let plan = MergePlan::pairs(&[(0, 2)]);
        let cat = Catalog::from_tables(tiny_tables(), &plan).unwrap();
        assert_eq!(cat.physical_tables().len(), 3);
        let lookups = cat.resolve(&[1, 2, 3, 0]).unwrap();
        assert_eq!(lookups.len(), 3);
        // Merged read: row = 1 * 5 + 3 = 8 in the 20-row product.
        assert_eq!(lookups[0], PhysicalLookup { table: 0, row: 8 });
        let p = &cat.physical_tables()[0];
        assert!(p.is_merged());
        assert_eq!(p.spec.rows, 20);
        assert_eq!(p.spec.dim, 3);
    }

    #[test]
    fn gather_is_merge_invariant() {
        let indices = [3u64, 1, 4, 1];
        let unmerged = Catalog::from_tables(tiny_tables(), &MergePlan::none()).unwrap();
        let merged =
            Catalog::from_tables(tiny_tables(), &MergePlan::pairs(&[(0, 2), (1, 3)])).unwrap();
        assert_eq!(
            unmerged.gather_vec(&indices).unwrap(),
            merged.gather_vec(&indices).unwrap(),
            "merging must not change the feature vector"
        );
    }

    #[test]
    fn storage_factor_accounts_products() {
        let plan = MergePlan::pairs(&[(0, 2)]);
        let cat = Catalog::from_tables(tiny_tables(), &plan).unwrap();
        // a: 4x2=8, c: 5x1=5 -> product 20x3=60 elements; b 9, d 8.
        let factor = cat.storage_factor(Precision::F32);
        let expect = (60.0 + 9.0 + 8.0) / (8.0 + 9.0 + 5.0 + 8.0);
        assert!((factor - expect).abs() < 1e-12);
    }

    #[test]
    fn plan_validation_catches_misuse() {
        assert!(MergePlan::pairs(&[(0, 0)]).validate(4).is_err());
        assert!(MergePlan::pairs(&[(0, 1), (1, 2)]).validate(4).is_err());
        assert!(MergePlan::pairs(&[(0, 9)]).validate(4).is_err());
        assert!(MergePlan { groups: vec![vec![2]] }.validate(4).is_err());
        assert!(MergePlan::pairs(&[(0, 1), (2, 3)]).validate(4).is_ok());
        assert_eq!(MergePlan { groups: vec![vec![0, 1, 2]] }.tables_eliminated(), 2);
    }

    #[test]
    fn resolve_rejects_bad_queries() {
        let cat = Catalog::from_tables(tiny_tables(), &MergePlan::none()).unwrap();
        assert!(matches!(
            cat.resolve(&[0, 0, 0]),
            Err(EmbeddingError::ArityMismatch { expected: 4, actual: 3 })
        ));
        assert!(cat.resolve(&[0, 0, 0, 5]).is_err(), "index 5 exceeds table d (2 rows)");
    }

    #[test]
    fn gather_checks_buffer_size() {
        let cat = Catalog::from_tables(tiny_tables(), &MergePlan::none()).unwrap();
        let mut small = vec![0.0f32; 9];
        assert!(matches!(
            cat.gather(&[0, 0, 0, 0], &mut small),
            Err(EmbeddingError::BufferSizeMismatch { expected: 10, actual: 9 })
        ));
    }

    #[test]
    fn build_from_model_spec() {
        let model = ModelSpec::dlrm_rmc2(8, 4);
        let cat = Catalog::build(&model, &MergePlan::none(), 7).unwrap();
        assert_eq!(cat.logical_tables().len(), 8);
        assert_eq!(cat.feature_len(), 32);
        // Different seeds give different contents.
        let cat2 = Catalog::build(&model, &MergePlan::none(), 8).unwrap();
        let a = cat.gather_vec(&[0; 8]).unwrap();
        let b = cat2.gather_vec(&[0; 8]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn physical_row_matches_materialized_product() {
        // The catalog's resolve() row index must agree with a physically
        // materialized product table.
        let tables = tiny_tables();
        let plan = MergePlan::pairs(&[(1, 3)]);
        let cat = Catalog::from_tables(tables.clone(), &plan).unwrap();
        let product =
            crate::cartesian::materialize_product(&[&tables[1], &tables[3]], u64::MAX).unwrap();
        let indices = [0u64, 2, 0, 1];
        let lookups = cat.resolve(&indices).unwrap();
        let merged_row = lookups[0].row;
        let from_product = product.row(merged_row).unwrap();
        let mut expect = tables[1].row(2).unwrap();
        expect.extend(tables[3].row(1).unwrap());
        assert_eq!(from_product, expect);
    }
}

microrec_json::impl_json_struct!(MergePlan, required { groups });
