//! Staged-pipeline benchmark: the dataflow [`PipelineExecutor`] versus
//! the monolithic single-worker `predict` path, on the paper's default
//! 3-hidden-layer DLRM model under a Zipf query stream. Emits one JSON
//! document (committed as `BENCH_pipeline.json`) with single-item
//! latency, sustained throughput, the per-stage occupancy / stall /
//! backpressure counters, a lane sweep of the replicated topology, the
//! auto-router's calibrated decisions, and an honest counter-case where
//! the pipeline loses (depth-1 FIFOs feeding a tiny MLP, where per-item
//! cross-thread handoffs dwarf the per-stage compute).
//!
//! Bit-identity between the paths is asserted before any timing — for
//! the per-layer topology and again for every lane count in the sweep.
//!
//! Run with `cargo run --release -p microrec-bench --bin pipeline`
//! (`-- --smoke` for the time-bounded CI variant).

use std::time::Instant;

use microrec_core::{
    CalibrationRecord, MicroRec, MicroRecBuilder, PipelineConfig, PipelineExecutor, PipelinePlan,
    PipelineStageRecord,
};
use microrec_embedding::{ModelSpec, Precision, RowFormat, TableSpec};
use microrec_json::{Json, ToJson};
use microrec_workload::{QueryGenConfig, RequestTrace};

/// Queries per timed section in the full sweep.
const FULL_QUERIES: usize = 2_000;
/// Queries per timed section under `--smoke`.
const SMOKE_QUERIES: usize = 350;
/// Queries for the bit-identity gate.
const IDENTITY_QUERIES: usize = 96;
/// Hot-row cache capacity, matching the serving benchmark's hot tier.
const CACHE_ROWS: usize = 65_536;
/// Lookup/fc lane counts the replication sweep covers.
const LANE_SWEEP: [usize; 3] = [1, 2, 4];
/// Calibration rounds for the auto-router section.
const CALIBRATION_ROUNDS: usize = 64;

/// The default-model engine configuration: fixed16 datapath over f16
/// arena rows behind the hot-row cache, same as the serving benchmark.
fn builder(model: &ModelSpec) -> MicroRecBuilder {
    MicroRec::builder(model.clone())
        .seed(42)
        .precision(Precision::Fixed16)
        .embedding_arena(RowFormat::F16)
        .hot_row_cache(CACHE_ROWS)
}

/// The counter-case model: a 2-layer MLP so small that each fc stage does
/// microseconds of work, leaving the FIFO handoffs as the dominant cost.
fn tiny_model() -> ModelSpec {
    ModelSpec::new(
        "tiny-mlp",
        (0..4).map(|i| TableSpec::new(format!("t{i}"), 1_000, 4)).collect(),
        vec![16],
        2,
    )
}

fn trace(model: &ModelSpec, n: usize) -> RequestTrace {
    RequestTrace::generate(model, 10_000.0, n, QueryGenConfig::default()).expect("trace")
}

/// Pipelined results must match monolithic `predict` bit for bit before
/// any number from either path is worth recording.
fn check_bit_identity(model: &ModelSpec) -> bool {
    let trace = trace(model, IDENTITY_QUERIES);
    let mut mono = builder(model).build().expect("engine");
    let engine = builder(model).build().expect("engine");
    let mut exec = PipelineExecutor::new(engine, PipelineConfig::default()).expect("executor");
    let ok = trace.queries().iter().all(|q| {
        let want = mono.predict(q).expect("monolithic predict");
        let got = exec.predict(q).expect("pipelined predict");
        got.to_bits() == want.to_bits()
    });
    drop(exec.shutdown());
    ok
}

/// Mean single-item latency (µs) and sustained qps of the monolithic
/// path: one engine, one thread, `predict` per query.
fn measure_monolithic(model: &ModelSpec, queries: &[Vec<u64>]) -> (f64, f64) {
    let mut engine = builder(model).build().expect("engine");
    for q in queries.iter().take(32) {
        engine.predict(q).expect("warmup");
    }
    let start = Instant::now();
    for q in queries {
        engine.predict(q).expect("predict");
    }
    let elapsed = start.elapsed();
    let latency_us = elapsed.as_secs_f64() * 1e6 / queries.len() as f64;
    let qps = queries.len() as f64 / elapsed.as_secs_f64();
    (latency_us, qps)
}

/// Single-item latency (µs, full submit→result roundtrip with one job in
/// flight), sustained qps (streamed `predict_batch`, all stages
/// overlapping), and the per-stage counters of the pipelined path.
fn measure_pipelined(
    model: &ModelSpec,
    queries: &[Vec<u64>],
    fifo_depth: usize,
) -> (f64, f64, Vec<PipelineStageRecord>) {
    let engine = builder(model).build().expect("engine");
    let mut exec = PipelineExecutor::new(engine, PipelineConfig { fifo_depth }).expect("executor");
    for q in queries.iter().take(32) {
        exec.predict(q).expect("warmup");
    }
    let start = Instant::now();
    for q in queries {
        exec.predict(q).expect("predict");
    }
    let latency_us = start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64;

    let start = Instant::now();
    let results = exec.predict_batch(queries).expect("predict_batch");
    let qps = results.len() as f64 / start.elapsed().as_secs_f64();

    let stages = exec.stage_stats().iter().map(PipelineStageRecord::from_snapshot).collect();
    drop(exec.shutdown());
    (latency_us, qps, stages)
}

/// One point of the replication sweep: `lanes` lookup lanes and `lanes`
/// lanes on the first fc stage (exercising the mesh on both sides of a
/// join). Gates on bit-identity against the monolithic path, then
/// measures sustained qps.
fn measure_replicated(
    model: &ModelSpec,
    queries: &[Vec<u64>],
    lanes: usize,
) -> (f64, Vec<PipelineStageRecord>, bool) {
    let engines: Vec<MicroRec> =
        (0..lanes).map(|_| builder(model).build().expect("engine")).collect();
    let num_layers = engines[0].model().hidden.len() + 1;
    let mut plan = PipelinePlan::per_layer(num_layers, PipelineConfig::default().fifo_depth);
    plan.lookup_lanes = lanes;
    plan.fc[0].lanes = lanes;
    let mut exec = PipelineExecutor::with_plan(engines, &plan).expect("executor");

    let mut mono = builder(model).build().expect("engine");
    let bit_identical = queries.iter().take(IDENTITY_QUERIES).all(|q| {
        let want = mono.predict(q).expect("monolithic predict");
        let got = exec.predict(q).expect("replicated predict");
        got.to_bits() == want.to_bits()
    });

    let start = Instant::now();
    let results = exec.predict_batch(queries).expect("predict_batch");
    let qps = results.len() as f64 / start.elapsed().as_secs_f64();

    let stages = exec.stage_stats().iter().map(PipelineStageRecord::from_snapshot).collect();
    drop(exec.shutdown());
    (qps, stages, bit_identical)
}

/// Runs the startup calibration on one engine replica of `model` and
/// records the solved plan plus the cost model's routing decision.
fn auto_route(model: &ModelSpec) -> CalibrationRecord {
    let engine = builder(model).build().expect("engine");
    let (_, plan, calibration) =
        PipelinePlan::calibrate(engine, microrec_par::default_threads(), CALIBRATION_ROUNDS)
            .expect("calibrate");
    CalibrationRecord::from_calibration(&calibration, &plan)
}

fn section(latency_us: f64, qps: f64) -> Vec<(String, Json)> {
    vec![("latency_us".to_string(), latency_us.to_json()), ("qps".to_string(), qps.to_json())]
}

fn calibration_json(record: &CalibrationRecord) -> Json {
    record.to_json()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { SMOKE_QUERIES } else { FULL_QUERIES };
    let model = ModelSpec::dlrm_rmc2(8, 16);

    assert!(check_bit_identity(&model), "pipelined results diverged from monolithic predict");
    eprintln!("bit-identity vs monolithic predict: ok ({IDENTITY_QUERIES} queries)");

    let queries = trace(&model, n).queries().to_vec();
    let (mono_latency_us, mono_qps) = measure_monolithic(&model, &queries);
    eprintln!("monolithic: {mono_latency_us:>7.1} us/item, {mono_qps:>8.1} qps");
    let (pipe_latency_us, pipe_qps, stages) =
        measure_pipelined(&model, &queries, PipelineConfig::default().fifo_depth);
    eprintln!("pipelined:  {pipe_latency_us:>7.1} us/item, {pipe_qps:>8.1} qps sustained");
    for s in &stages {
        eprintln!(
            "  stage {:>6}: {} items, {} stalls, {} backpressure, mean occupancy {:.2}",
            s.stage, s.items, s.stalls, s.backpressure, s.mean_occupancy
        );
    }

    // Replication sweep: lookup + first-fc lanes over both models. Every
    // point is bit-identity gated; on a host with fewer cores than lane
    // threads the extra lanes time-slice one core, so the sweep records
    // how gracefully replication degrades there, not a win.
    let tiny = tiny_model();
    let tiny_queries = trace(&tiny, n.min(500)).queries().to_vec();
    let mut sweep_rows: Vec<Json> = Vec::new();
    for (name, m, qs) in [("default", &model, &queries), ("tiny-mlp", &tiny, &tiny_queries)] {
        for lanes in LANE_SWEEP {
            let (qps, stages, identical) = measure_replicated(m, qs, lanes);
            assert!(identical, "{name} x{lanes} lanes diverged from monolithic predict");
            eprintln!("replicated {name} x{lanes}: {qps:>8.1} qps sustained, bit-identical");
            sweep_rows.push(Json::Obj(vec![
                ("model".to_string(), name.to_string().to_json()),
                ("lanes".to_string(), lanes.to_json()),
                ("qps".to_string(), qps.to_json()),
                ("bit_identical".to_string(), identical.to_json()),
                ("stages".to_string(), stages.to_json()),
            ]));
        }
    }

    // Auto-router: calibrate both models and record the decisions. The
    // tiny MLP is the counter-case — the cost model must route it back
    // to the monolithic path.
    let auto_default = auto_route(&model);
    let auto_tiny = auto_route(&tiny);
    eprintln!(
        "auto default: {} (monolithic {:.1} us vs pipelined {:.1} us) | plan {}",
        auto_default.chosen,
        auto_default.monolithic_us,
        auto_default.pipelined_us,
        auto_default.plan
    );
    eprintln!(
        "auto tiny:    {} (monolithic {:.1} us vs pipelined {:.1} us)",
        auto_tiny.chosen, auto_tiny.monolithic_us, auto_tiny.pipelined_us
    );
    let avoids_counter_case = auto_tiny.chosen == "monolithic";

    // Honest counter-case: depth-1 FIFOs on a tiny MLP. Each fc stage
    // computes almost nothing, so the per-item thread handoffs dominate
    // and the monolithic path wins.
    let (tiny_mono_latency_us, tiny_mono_qps) = measure_monolithic(&tiny, &tiny_queries);
    let (tiny_pipe_latency_us, tiny_pipe_qps, _) = measure_pipelined(&tiny, &tiny_queries, 1);
    eprintln!(
        "counter-case (tiny MLP, depth-1): monolithic {tiny_mono_qps:.1} qps vs \
         pipelined {tiny_pipe_qps:.1} qps"
    );

    if smoke {
        assert!(
            pipe_qps > mono_qps,
            "pipelined sustained throughput ({pipe_qps:.1} qps) must beat the monolithic \
             single-worker path ({mono_qps:.1} qps)"
        );
        assert!(stages.iter().all(|s| s.items as usize >= n), "a stage lost jobs");
        assert!(
            avoids_counter_case,
            "auto-router took the pipeline on the tiny-MLP counter-case \
             (chose {})",
            auto_tiny.chosen
        );
    }

    let obj = vec![
        ("model".to_string(), model.name.to_json()),
        ("precision".to_string(), "fixed16".to_string().to_json()),
        ("queries".to_string(), n.to_json()),
        ("bit_identical".to_string(), true.to_json()),
        ("fifo_depth".to_string(), PipelineConfig::default().fifo_depth.to_json()),
        ("monolithic".to_string(), Json::Obj(section(mono_latency_us, mono_qps))),
        (
            "pipelined".to_string(),
            Json::Obj({
                let mut s = section(pipe_latency_us, pipe_qps);
                s.push(("stages".to_string(), stages.to_json()));
                s
            }),
        ),
        ("lane_sweep".to_string(), Json::Arr(sweep_rows)),
        (
            "auto_router".to_string(),
            Json::Obj(vec![
                ("default".to_string(), calibration_json(&auto_default)),
                ("tiny_mlp".to_string(), calibration_json(&auto_tiny)),
                ("avoids_counter_case".to_string(), avoids_counter_case.to_json()),
            ]),
        ),
        (
            "counter_case".to_string(),
            Json::Obj(vec![
                (
                    "description".to_string(),
                    "tiny 2-layer MLP with depth-1 FIFOs: per-item thread handoffs dominate \
                     the near-zero per-stage compute, so the monolithic path wins"
                        .to_string()
                        .to_json(),
                ),
                ("model".to_string(), tiny.name.to_json()),
                ("queries".to_string(), tiny_queries.len().to_json()),
                ("monolithic".to_string(), Json::Obj(section(tiny_mono_latency_us, tiny_mono_qps))),
                ("pipelined".to_string(), Json::Obj(section(tiny_pipe_latency_us, tiny_pipe_qps))),
            ]),
        ),
        (
            "notes".to_string(),
            "Single host thread per stage (plus one per extra lane); on a machine with fewer \
             cores than stages the sustained-throughput win over the monolithic path comes \
             from the stages' leaner datapath (pre-quantized packed weights, allocation-free \
             forward) rather than from stage overlap, and extra lanes only add time-slicing — \
             multi-core hosts additionally overlap lookup with the FC stages and spread lanes \
             across cores. Monolithic single-item predict re-quantizes weights on the fly and \
             allocates per layer. Latency_us for the pipelined path is the full \
             submit-to-result roundtrip of one job crossing every FIFO. The auto_router \
             section records the startup calibration's measured service times and the \
             cost-model decision for each model."
                .to_string()
                .to_json(),
        ),
    ];
    println!("{}", microrec_json::to_string_pretty(&Json::Obj(obj)));
}
