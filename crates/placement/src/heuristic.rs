//! Algorithm 1: heuristic-rule-based search for table combination and
//! allocation (§3.4.2).
//!
//! The search iterates over the number `n` of tables selected as Cartesian
//! candidates; for each `n` it applies the paper's rules:
//!
//! * **Rule 1** — only the `n` smallest tables are candidates (products of
//!   large tables would carry heavy storage overhead).
//! * **Rule 2** — products combine *pairs* of tables only.
//! * **Rule 3** — within the candidates, the smallest is paired with the
//!   largest, the second-smallest with the second-largest, and so on.
//! * **Rule 4** — after merging, the smallest tables are cached on chip
//!   (implemented by the allocator in [`crate::alloc`]).
//!
//! One adaptation (footnote 3 of the paper explicitly invites adapting the
//! rules per model): tables small enough to be cached on chip are excluded
//! from candidacy — merging a table that would otherwise be served from
//! free on-chip memory only adds storage.
//!
//! Each iteration costs `O(N)` for pairing plus `O(N log N)` for
//! allocation; with the outer loop the search stays `O(N²)`-ish, versus the
//! factorial brute force of §3.4.1 (see [`crate::brute`]).

use microrec_embedding::{MergePlan, ModelSpec, Precision};
use microrec_memsim::MemoryConfig;

use crate::alloc::{allocate_with, allocate_with_traffic, AllocStrategy};
use crate::error::PlacementError;
use crate::plan::{Plan, PlanCost};
use crate::traffic::TrafficProfile;

/// Options controlling the heuristic search.
#[derive(Debug, Clone)]
pub struct HeuristicOptions {
    /// Upper bound on the number of Cartesian candidates to try
    /// (`None` = up to every merge-eligible table).
    pub max_candidates: Option<usize>,
    /// When `false`, skip merging entirely (the "HBM only" ablation of
    /// Table 4).
    pub allow_merge: bool,
    /// DRAM allocation strategy (rule 4's bank assignment).
    pub strategy: AllocStrategy,
    /// Tables per Cartesian product group. The paper's rule 2 fixes this
    /// at 2; setting 3+ ablates that rule (products of k tables cost
    /// `Π rows × Σ dims` — the ablation bench shows why pairs win).
    pub group_size: usize,
}

impl Default for HeuristicOptions {
    fn default() -> Self {
        HeuristicOptions {
            max_candidates: None,
            allow_merge: true,
            strategy: AllocStrategy::RoundRobin,
            group_size: 2,
        }
    }
}

/// Result of a placement search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best plan found.
    pub plan: Plan,
    /// Its cost.
    pub cost: PlanCost,
    /// Number of candidate solutions evaluated.
    pub evaluated: usize,
}

/// Runs Algorithm 1 for `model` on `config`.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if not even the unmerged model
/// can be placed.
///
/// # Examples
///
/// ```
/// use microrec_embedding::{ModelSpec, Precision};
/// use microrec_memsim::MemoryConfig;
/// use microrec_placement::{heuristic_search, HeuristicOptions};
///
/// let model = ModelSpec::small_production();
/// let outcome = heuristic_search(
///     &model,
///     &MemoryConfig::u280(),
///     Precision::F32,
///     &HeuristicOptions::default(),
/// )?;
/// // Table 3: 47 logical tables merge down to 42 physical ones.
/// assert_eq!(outcome.plan.num_tables(), 42);
/// # Ok::<(), microrec_placement::PlacementError>(())
/// ```
pub fn heuristic_search(
    model: &ModelSpec,
    config: &MemoryConfig,
    precision: Precision,
    options: &HeuristicOptions,
) -> Result<SearchOutcome, PlacementError> {
    heuristic_search_with_traffic(model, config, precision, options, &TrafficProfile::uniform())
}

/// Runs Algorithm 1 with candidate plans scored under an observed
/// [`TrafficProfile`] instead of the uniform workload assumption.
///
/// The search structure (rules 1–4, candidate iteration, stop condition)
/// is identical to [`heuristic_search`]; only the objective changes, via
/// [`Plan::cost_with_traffic`]. With a uniform profile this *is*
/// `heuristic_search`, bit for bit. The returned [`SearchOutcome::cost`]
/// is the traffic-weighted score of the winning plan.
///
/// Determinism: given the same model, config, options, and counter
/// snapshot, two processes select the same plan with the same score.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if not even the unmerged model
/// can be placed.
pub fn heuristic_search_with_traffic(
    model: &ModelSpec,
    config: &MemoryConfig,
    precision: Precision,
    options: &HeuristicOptions,
    profile: &TrafficProfile,
) -> Result<SearchOutcome, PlacementError> {
    // For each candidate merge, evaluate the size-ordered allocation and
    // (under a non-uniform profile) the traffic-ordered one, keeping the
    // better under the weighted objective. Considering both guarantees the
    // traffic-aware search never scores worse than the uniform plan
    // re-scored under the same load.
    let best_allocation = |merge: &MergePlan| -> Result<(Plan, PlanCost), PlacementError> {
        let plan = allocate_with(model, merge, config, precision, options.strategy)?;
        let cost = plan.cost_with_traffic(config, model.lookups_per_table, profile);
        if profile.is_uniform() {
            return Ok((plan, cost));
        }
        match allocate_with_traffic(model, merge, config, precision, options.strategy, profile) {
            Ok(traffic_plan) => {
                let traffic_cost =
                    traffic_plan.cost_with_traffic(config, model.lookups_per_table, profile);
                if traffic_cost.better_than(&cost) {
                    Ok((traffic_plan, traffic_cost))
                } else {
                    Ok((plan, cost))
                }
            }
            // A placement order can fail only on capacity; the size order
            // already succeeded, so keep it.
            Err(PlacementError::Infeasible(_)) => Ok((plan, cost)),
            Err(e) => Err(e),
        }
    };

    // Baseline: no merging. Must be feasible or the whole search fails.
    let (base_plan, base_cost) = best_allocation(&MergePlan::none())?;
    let mut best = SearchOutcome { plan: base_plan.clone(), cost: base_cost, evaluated: 1 };

    if !options.allow_merge {
        return Ok(best);
    }

    // Merge-eligible tables: not cached on chip by the unmerged baseline
    // (our rule-0 adaptation), sorted ascending by size.
    let onchip: Vec<usize> = base_plan
        .placed
        .iter()
        .filter(|t| t.banks[0].kind.is_on_chip())
        .flat_map(|t| t.members.iter().copied())
        .collect();
    let mut eligible: Vec<usize> =
        (0..model.num_tables()).filter(|i| !onchip.contains(i)).collect();
    eligible.sort_by_key(|&i| (model.tables[i].bytes(precision), i));

    let g = options.group_size.max(2);
    let cap = options.max_candidates.unwrap_or(eligible.len()).min(eligible.len());
    let mut evaluated = 1usize;
    let mut n = g;
    while n <= cap {
        // Rule 1: the n smallest eligible tables.
        let candidates = &eligible[..n];
        // Rules 2 & 3: combine smallest with largest. For pairs this is
        // (k, n-1-k); for larger groups, stride through the sorted
        // candidates so every group mixes small and large tables.
        let groups: Vec<Vec<usize>> = if g == 2 {
            (0..n / 2).map(|k| vec![candidates[k], candidates[n - 1 - k]]).collect()
        } else {
            let k = n / g;
            (0..k).map(|j| (0..g).map(|m| candidates[j + m * k]).collect()).collect()
        };
        let merge = MergePlan { groups };
        match best_allocation(&merge) {
            Ok((plan, cost)) => {
                evaluated += 1;
                if cost.better_than(&best.cost) {
                    best = SearchOutcome { plan, cost, evaluated };
                }
            }
            Err(PlacementError::Infeasible(_)) | Err(PlacementError::Embedding(_)) => {
                // Products too large for any bank (or row-count overflow):
                // larger n only gets worse — stop expanding.
                break;
            }
            Err(e) => return Err(e),
        }
        n += g;
    }
    best.evaluated = evaluated;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::TableSpec;

    fn u280() -> MemoryConfig {
        MemoryConfig::u280()
    }

    #[test]
    fn search_beats_or_matches_no_merge_baseline() {
        let model = ModelSpec::small_production();
        let merged =
            heuristic_search(&model, &u280(), Precision::F32, &HeuristicOptions::default())
                .unwrap();
        let unmerged = heuristic_search(
            &model,
            &u280(),
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        assert!(merged.cost.lookup_latency <= unmerged.cost.lookup_latency);
        assert!(merged.evaluated > unmerged.evaluated);
    }

    #[test]
    fn small_production_reproduces_table3_structure() {
        let model = ModelSpec::small_production();
        let out = heuristic_search(&model, &u280(), Precision::F32, &HeuristicOptions::default())
            .unwrap();
        out.plan.validate(&model, &u280()).unwrap();
        // Paper Table 3, smaller model: 47 -> 42 tables, 39 -> 34 in DRAM,
        // 2 -> 1 DRAM rounds, ~3.2 % storage overhead.
        assert_eq!(out.plan.num_tables(), 42, "5 pairs merged");
        assert_eq!(out.cost.tables_in_dram, 34);
        assert_eq!(out.cost.tables_on_chip, 8);
        assert_eq!(out.cost.dram_rounds, 1);
        let overhead = out.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64;
        assert!(
            (1.0..1.06).contains(&overhead),
            "storage factor {overhead:.4} should be marginal (paper: 1.032)"
        );
    }

    #[test]
    fn large_production_reproduces_table3_structure() {
        let model = ModelSpec::large_production();
        let out = heuristic_search(&model, &u280(), Precision::F32, &HeuristicOptions::default())
            .unwrap();
        out.plan.validate(&model, &u280()).unwrap();
        // Paper Table 3, larger model: 98 -> 84 tables, 82 -> 68 in DRAM,
        // 3 -> 2 DRAM rounds, ~1.9 % storage overhead.
        assert_eq!(out.plan.num_tables(), 84, "14 pairs merged");
        assert_eq!(out.cost.tables_in_dram, 68);
        assert_eq!(out.cost.tables_on_chip, 16);
        assert_eq!(out.cost.dram_rounds, 2);
        let overhead = out.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64;
        assert!(
            (1.0..1.05).contains(&overhead),
            "storage factor {overhead:.4} should be marginal (paper: 1.019)"
        );
    }

    #[test]
    fn no_merge_baselines_match_table3() {
        for (model, dram, rounds, onchip) in
            [(ModelSpec::small_production(), 39, 2, 8), (ModelSpec::large_production(), 82, 3, 16)]
        {
            let out = heuristic_search(
                &model,
                &u280(),
                Precision::F32,
                &HeuristicOptions { allow_merge: false, ..Default::default() },
            )
            .unwrap();
            assert_eq!(out.cost.tables_in_dram, dram, "{}", model.name);
            assert_eq!(out.cost.dram_rounds, rounds, "{}", model.name);
            assert_eq!(out.cost.tables_on_chip, onchip, "{}", model.name);
        }
    }

    #[test]
    fn max_candidates_caps_merging() {
        let model = ModelSpec::small_production();
        let out = heuristic_search(
            &model,
            &u280(),
            Precision::F32,
            &HeuristicOptions { max_candidates: Some(4), ..Default::default() },
        )
        .unwrap();
        // At most 2 pairs can merge.
        assert!(out.plan.num_tables() >= 45);
    }

    #[test]
    fn uniform_traffic_search_is_bit_identical_to_plain_search() {
        use crate::traffic::TrafficProfile;
        let model = ModelSpec::small_production();
        let opts = HeuristicOptions::default();
        let plain = heuristic_search(&model, &u280(), Precision::F32, &opts).unwrap();
        for profile in
            [TrafficProfile::uniform(), TrafficProfile::from_counts(vec![4; model.num_tables()])]
        {
            let traffic =
                heuristic_search_with_traffic(&model, &u280(), Precision::F32, &opts, &profile)
                    .unwrap();
            assert_eq!(traffic.plan, plain.plan);
            assert_eq!(traffic.cost, plain.cost);
            assert_eq!(traffic.evaluated, plain.evaluated);
        }
    }

    #[test]
    fn traffic_search_never_loses_to_uniform_plan_under_observed_load() {
        use crate::traffic::TrafficProfile;
        // Skew most traffic onto the largest eligible tables: the plan
        // chosen under the uniform assumption is re-scored under the
        // observed load and must not beat what the traffic-aware search
        // picks for that same load (same candidate set, same objective).
        let model = ModelSpec::small_production();
        let opts = HeuristicOptions::default();
        let counts: Vec<u64> =
            (0..model.num_tables()).map(|i| 1 + (i as u64 % 7) * 100).collect();
        let profile = TrafficProfile::from_counts(counts);
        let uniform = heuristic_search(&model, &u280(), Precision::F32, &opts).unwrap();
        let adaptive =
            heuristic_search_with_traffic(&model, &u280(), Precision::F32, &opts, &profile)
                .unwrap();
        let uniform_rescored =
            uniform.plan.cost_with_traffic(&u280(), model.lookups_per_table, &profile);
        assert!(
            !uniform_rescored.better_than(&adaptive.cost),
            "traffic-aware search must be at least as good under observed load"
        );
        adaptive.plan.validate(&model, &u280()).unwrap();
    }

    #[test]
    fn generalizes_to_fpga_without_hbm() {
        // §3.4.2: "the algorithm can be generalized to any FPGAs, no matter
        // whether they are equipped with HBM".
        let model = ModelSpec::new(
            "ddr-toy",
            (0..6).map(|i| TableSpec::new(format!("t{i}"), 1000 + 100 * i, 8)).collect(),
            vec![16],
            1,
        );
        let config = MemoryConfig::fpga_without_hbm(2);
        let out = heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
            .unwrap();
        out.plan.validate(&model, &config).unwrap();
        // 6 tables on 2 channels: merging pairs cuts rounds from 3 to 2.
        assert!(out.cost.dram_rounds <= 2);
    }
}
