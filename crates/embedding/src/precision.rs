//! Element precisions used for storage and arithmetic.

use std::fmt;

/// Numeric precision of embedding elements and DNN arithmetic.
///
/// The paper evaluates the accelerator at 16-bit and 32-bit fixed point
/// (Table 2) while the CPU baseline and embedding storage use 32-bit floats
/// (Table 4 notes "the same element data width of 32-bits").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE-754 single precision (CPU baseline, reference path).
    F32,
    /// 16-bit fixed point (FPGA `fp16` configuration in the paper's tables).
    Fixed16,
    /// 32-bit fixed point (FPGA `fp32` configuration).
    Fixed32,
}

impl Precision {
    /// Bytes per element.
    #[must_use]
    pub const fn bytes(self) -> u32 {
        match self {
            Precision::Fixed16 => 2,
            Precision::F32 | Precision::Fixed32 => 4,
        }
    }

    /// Bits per element.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.bytes() * 8
    }

    /// Whether this is a fixed-point format.
    #[must_use]
    pub const fn is_fixed_point(self) -> bool {
        matches!(self, Precision::Fixed16 | Precision::Fixed32)
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::F32 => "f32",
            Precision::Fixed16 => "fixed16",
            Precision::Fixed32 => "fixed32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Precision::F32.bytes(), 4);
        assert_eq!(Precision::Fixed16.bytes(), 2);
        assert_eq!(Precision::Fixed32.bytes(), 4);
        assert_eq!(Precision::Fixed16.bits(), 16);
    }

    #[test]
    fn fixed_point_predicate() {
        assert!(!Precision::F32.is_fixed_point());
        assert!(Precision::Fixed16.is_fixed_point());
        assert!(Precision::Fixed32.is_fixed_point());
    }

    #[test]
    fn display() {
        assert_eq!(Precision::Fixed16.to_string(), "fixed16");
    }
}

microrec_json::impl_json_enum!(Precision { F32, Fixed16, Fixed32 });
