//! Lexical model of one Rust source file.
//!
//! The linter does not parse Rust; it works from a faithful *lexical*
//! model: comments and string/char literals are stripped (so a `Vec::new`
//! inside a doc example or a log message never trips a lint), the
//! remaining code is tokenized, and a single structural pass tracks the
//! brace-nesting context — enclosing function, `#[cfg(test)]` regions,
//! and `loop`/`while` bodies — that the lints need. This keeps the crate
//! dependency-free while staying robust against the usual false-positive
//! sources (strings, comments, doctests, test modules).

/// One comment's text and the 1-indexed line it starts on. Block comments
/// are split per line so adjacency checks stay line-based.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// A lexical token of the stripped code: a word (identifier, keyword, or
/// numeric literal) or a single punctuation character.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Word(String),
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// Comment- and literal-stripped view of a source file.
#[derive(Debug)]
pub struct Stripped {
    /// Code with comments and string/char literals blanked, one entry per
    /// source line (so indices map back to real line numbers).
    pub code_lines: Vec<String>,
    pub comments: Vec<Comment>,
}

/// Strips comments and string/char literals, recording comment text.
pub fn strip(text: &str) -> Stripped {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut cur = String::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // True when the previous code char continues an identifier, so an `r`
    // or `b` here cannot start a raw/byte string literal.
    let mut prev_ident = false;

    macro_rules! newline {
        () => {{
            code_lines.push(std::mem::take(&mut cur));
            line += 1;
            prev_ident = false;
        }};
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                newline!();
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                comments.push(Comment { line, text: chars[start..j].iter().collect() });
                cur.push(' ');
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let mut depth = 1usize;
                let mut buf = String::new();
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else if chars[i] == '\n' {
                        comments.push(Comment { line, text: std::mem::take(&mut buf) });
                        newline!();
                        i += 1;
                    } else {
                        buf.push(chars[i]);
                        i += 1;
                    }
                }
                comments.push(Comment { line, text: buf });
                cur.push(' ');
            }
            '"' => {
                i = skip_string(&chars, i + 1, &mut |nl| {
                    if nl {
                        code_lines.push(std::mem::take(&mut cur));
                        line += 1;
                    }
                });
                cur.push(' ');
                prev_ident = false;
            }
            'r' | 'b' if !prev_ident => {
                if let Some(next) = raw_or_byte_literal(&chars, i) {
                    // Count newlines the literal spans.
                    for &ch in &chars[i..next] {
                        if ch == '\n' {
                            code_lines.push(std::mem::take(&mut cur));
                            line += 1;
                        }
                    }
                    cur.push(' ');
                    i = next;
                    prev_ident = false;
                } else {
                    cur.push(c);
                    prev_ident = true;
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime.
                if i + 1 < n && chars[i + 1] == '\\' {
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // the escaped char
                    }
                    // Unicode escapes: \u{...}
                    while j < n && chars[j] != '\'' && chars[j] != '\n' {
                        j += 1;
                    }
                    cur.push(' ');
                    i = (j + 1).min(n);
                } else if i + 2 < n && chars[i + 2] == '\'' {
                    cur.push(' ');
                    i += 3;
                } else {
                    // A lifetime: keep the quote so tokens stay aligned.
                    cur.push('\'');
                    i += 1;
                }
                prev_ident = false;
            }
            _ => {
                cur.push(c);
                prev_ident = c.is_alphanumeric() || c == '_';
                i += 1;
            }
        }
    }
    code_lines.push(cur);
    Stripped { code_lines, comments }
}

/// Advances past a normal (escaped) string literal body; `on_char` is told
/// whether each consumed char was a newline.
fn skip_string(chars: &[char], mut i: usize, on_char: &mut dyn FnMut(bool)) -> usize {
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            c => {
                on_char(c == '\n');
                i += 1;
            }
        }
    }
    n
}

/// If `chars[i]` starts a raw string (`r"`, `r#"`), byte string (`b"`),
/// raw byte string (`br#"`) or byte char (`b'x'`), returns the index just
/// past the literal.
fn raw_or_byte_literal(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    let (raw_start, is_raw) = match chars[i] {
        'r' => (i + 1, true),
        'b' if i + 1 < n && chars[i + 1] == 'r' => (i + 2, true),
        'b' if i + 1 < n && chars[i + 1] == '"' => (i + 1, false),
        'b' if i + 1 < n && chars[i + 1] == '\'' => {
            // Byte char literal b'x' / b'\n'.
            let mut j = i + 2;
            while j < n && chars[j] != '\'' {
                j += if chars[j] == '\\' { 2 } else { 1 };
            }
            return Some((j + 1).min(n));
        }
        _ => return None,
    };
    if is_raw {
        let mut hashes = 0usize;
        let mut j = raw_start;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None;
        }
        j += 1;
        // Scan for `"` followed by `hashes` hashes.
        while j < n {
            if chars[j] == '"' {
                let mut k = 0usize;
                while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes);
                }
            }
            j += 1;
        }
        Some(n)
    } else {
        // b"..." — plain escaped string after the prefix.
        let mut j = raw_start + 1;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        Some(n)
    }
}

/// Tokenizes stripped code lines into words and punctuation.
pub fn tokenize(code_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, text) in code_lines.iter().enumerate() {
        let line = idx + 1;
        let chars: Vec<char> = text.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token { tok: Tok::Word(chars[start..i].iter().collect()), line });
            } else {
                out.push(Token { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    out
}

/// What a finding is, with enough lexical context to scope and report it.
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// An allocating construct (`Vec::new`, `.clone()`, ...).
    Alloc { what: &'static str },
    /// A panicking construct (`.unwrap()`, `panic!`, ...).
    PanicCall { what: &'static str },
    /// An `unsafe` block / fn / impl / trait site.
    UnsafeSite { kind: &'static str },
    /// A nondeterministic construct (`HashMap`, `Instant::now`, ...).
    Nondet { what: &'static str },
    /// A bare `Condvar::wait`/`wait_timeout` call not inside a loop.
    BareWait { what: &'static str },
}

/// One raw (pre-config, pre-suppression) finding from the structural scan.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    pub line: usize,
    /// Innermost enclosing named function, if any.
    pub func: Option<String>,
    /// `Type::method` when the enclosing function sits in an `impl Type`
    /// (or `trait Type`) block; lets manifests disambiguate same-named
    /// methods on different types.
    pub qual: Option<String>,
    /// True inside `#[cfg(test)]` modules, `#[test]` fns, or files the
    /// caller marked as test-only (integration tests, benches).
    pub in_test: bool,
}

/// One function definition found by the structural pass, with the token
/// extent of its body (for the interprocedural passes).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `Type::method` when defined inside an `impl`/`trait` block.
    pub qual: Option<String>,
    /// 1-indexed line of the `fn` keyword's name token.
    pub line: usize,
    /// Token range of the body: `tokens[body.0..body.1]` is everything
    /// between (exclusive) the opening and closing braces.
    pub body: (usize, usize),
    /// Signature words (attributes through return type), for cheap
    /// checks like "returns a `MutexGuard`".
    pub sig: Vec<String>,
    pub in_test: bool,
}

impl FnDef {
    /// The name manifests and reports refer to this function by.
    #[must_use]
    pub fn display_name(&self) -> &str {
        self.qual.as_deref().unwrap_or(&self.name)
    }
}

/// Everything the structural pass extracts from one file.
#[derive(Debug, Default)]
pub struct ScanResult {
    pub findings: Vec<Finding>,
    pub functions: Vec<FnDef>,
}

#[derive(Debug)]
enum BlockKind {
    Fn {
        name: String,
    },
    /// An `impl Type`, `impl Trait for Type`, or `trait Type` block.
    Impl {
        type_name: String,
    },
    Loop,
    Other,
}

#[derive(Debug)]
struct Block {
    kind: BlockKind,
    is_test_root: bool,
    /// Index into `ScanResult::functions` when this block is a fn body.
    fn_index: Option<usize>,
}

/// Runs the structural pass: walks the token stream tracking blocks and
/// emits every lintable site with its context, plus every function
/// definition with its body extent. `file_is_test` marks whole files
/// (integration tests, benches) as test context.
pub fn scan(tokens: &[Token], file_is_test: bool) -> ScanResult {
    let mut result = ScanResult::default();
    let mut stack: Vec<Block> = Vec::new();
    // Token indices since the last statement/block boundary; decides what
    // an opening `{` belongs to.
    let mut buffer: Vec<usize> = Vec::new();

    let word = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize| -> Option<char> {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    };

    for (i, token) in tokens.iter().enumerate() {
        let line = token.line;
        let in_test = file_is_test || stack.iter().any(|b| b.is_test_root);
        let func = stack.iter().rev().find_map(|b| match &b.kind {
            BlockKind::Fn { name } => Some(name.clone()),
            _ => None,
        });
        let qual = func.as_ref().and_then(|_| {
            stack.iter().rev().skip_while(|b| !matches!(b.kind, BlockKind::Fn { .. })).find_map(
                |b| match &b.kind {
                    BlockKind::Impl { type_name } => {
                        Some(format!("{type_name}::{}", func.as_deref().unwrap_or("")))
                    }
                    _ => None,
                },
            )
        });
        match &token.tok {
            Tok::Punct('{') => {
                let kind = classify_block(tokens, &buffer);
                let is_test_root = block_is_test_root(tokens, &buffer, &kind);
                let fn_index = if let BlockKind::Fn { name } = &kind {
                    let enclosing_impl = stack.iter().rev().find_map(|b| match &b.kind {
                        BlockKind::Impl { type_name } => Some(type_name.clone()),
                        _ => None,
                    });
                    let name_line = buffer
                        .iter()
                        .find(|&&idx| word(idx + 1).is_some() && word(idx) == Some("fn"))
                        .and_then(|&idx| tokens.get(idx + 1).map(|t| t.line))
                        .unwrap_or(line);
                    let sig = buffer
                        .iter()
                        .filter_map(|&idx| match &tokens[idx].tok {
                            Tok::Word(w) => Some(w.clone()),
                            Tok::Punct(_) => None,
                        })
                        .collect();
                    result.functions.push(FnDef {
                        name: name.clone(),
                        qual: enclosing_impl.map(|t| format!("{t}::{name}")),
                        line: name_line,
                        body: (i + 1, i + 1), // end patched when the block closes
                        sig,
                        in_test: in_test || is_test_root,
                    });
                    Some(result.functions.len() - 1)
                } else {
                    None
                };
                stack.push(Block { kind, is_test_root, fn_index });
                buffer.clear();
                continue;
            }
            Tok::Punct('}') => {
                if let Some(block) = stack.pop() {
                    if let Some(fn_index) = block.fn_index {
                        result.functions[fn_index].body.1 = i;
                    }
                }
                buffer.clear();
                continue;
            }
            Tok::Punct(';') => {
                buffer.clear();
                continue;
            }
            Tok::Word(w) => {
                let mut emit = |kind: FindingKind| {
                    result.findings.push(Finding {
                        kind,
                        line,
                        func: func.clone(),
                        qual: qual.clone(),
                        in_test,
                    });
                };
                let prev_dot = i > 0 && punct(i - 1) == Some('.');
                let next_bang = punct(i + 1) == Some('!');
                let next_paren = punct(i + 1) == Some('(');
                let path_sep = punct(i + 1) == Some(':') && punct(i + 2) == Some(':');
                match w.as_str() {
                    // --- hot-path-alloc ---
                    "Vec" if path_sep && word(i + 3) == Some("new") => {
                        emit(FindingKind::Alloc { what: "Vec::new" });
                    }
                    "Box" if path_sep && word(i + 3) == Some("new") => {
                        emit(FindingKind::Alloc { what: "Box::new" });
                    }
                    "String" if path_sep && word(i + 3) == Some("from") => {
                        emit(FindingKind::Alloc { what: "String::from" });
                    }
                    "vec" if next_bang => emit(FindingKind::Alloc { what: "vec!" }),
                    "format" if next_bang => emit(FindingKind::Alloc { what: "format!" }),
                    "to_vec" if prev_dot => emit(FindingKind::Alloc { what: ".to_vec()" }),
                    "clone" if prev_dot && next_paren => {
                        emit(FindingKind::Alloc { what: ".clone()" });
                    }
                    "collect" if prev_dot && (next_paren || path_sep) => {
                        emit(FindingKind::Alloc { what: ".collect()" });
                    }
                    // --- no-panic-serving ---
                    "unwrap" if prev_dot && next_paren => {
                        emit(FindingKind::PanicCall { what: ".unwrap()" });
                    }
                    "expect" if prev_dot && next_paren => {
                        emit(FindingKind::PanicCall { what: ".expect(" });
                    }
                    "panic" if next_bang => emit(FindingKind::PanicCall { what: "panic!" }),
                    "todo" if next_bang => emit(FindingKind::PanicCall { what: "todo!" }),
                    // --- unsafe-audit ---
                    "unsafe" => {
                        let kind = match tokens.get(i + 1).map(|t| &t.tok) {
                            Some(Tok::Punct('{')) => "unsafe block",
                            Some(Tok::Word(k)) if k == "fn" => "unsafe fn",
                            Some(Tok::Word(k)) if k == "impl" => "unsafe impl",
                            Some(Tok::Word(k)) if k == "trait" => "unsafe trait",
                            Some(Tok::Word(k)) if k == "extern" => "unsafe extern",
                            _ => "unsafe",
                        };
                        emit(FindingKind::UnsafeSite { kind });
                    }
                    // --- determinism ---
                    "HashMap" => emit(FindingKind::Nondet { what: "HashMap" }),
                    "HashSet" => emit(FindingKind::Nondet { what: "HashSet" }),
                    "Instant" => emit(FindingKind::Nondet { what: "Instant" }),
                    "SystemTime" => emit(FindingKind::Nondet { what: "SystemTime" }),
                    "thread_rng" => emit(FindingKind::Nondet { what: "thread_rng" }),
                    // --- condvar-loop ---
                    // `Condvar::wait` always takes the guard; a
                    // zero-argument `.wait()` is some other type.
                    "wait"
                        if prev_dot
                            && next_paren
                            && punct(i + 2) != Some(')')
                            && !in_loop(&stack) =>
                    {
                        emit(FindingKind::BareWait { what: "wait" });
                    }
                    "wait_timeout" if prev_dot && next_paren && !in_loop(&stack) => {
                        emit(FindingKind::BareWait { what: "wait_timeout" });
                    }
                    _ => {}
                }
            }
            Tok::Punct(_) => {}
        }
        buffer.push(i);
        if buffer.len() > 256 {
            // Pathological statement; keep only the tail that block
            // classification looks at.
            buffer.drain(..128);
        }
    }
    result
}

/// True when the innermost enclosing block chain, up to the containing
/// function boundary, includes a `loop`/`while`/`for` body.
fn in_loop(stack: &[Block]) -> bool {
    for block in stack.iter().rev() {
        match block.kind {
            BlockKind::Loop => return true,
            BlockKind::Fn { .. } => return false,
            BlockKind::Impl { .. } | BlockKind::Other => {}
        }
    }
    false
}

/// Decides what an opening `{` belongs to from the tokens since the last
/// statement boundary (`buffer` holds indices into `tokens`).
fn classify_block(tokens: &[Token], buffer: &[usize]) -> BlockKind {
    let mut fn_name: Option<String> = None;
    let mut looped = false;
    let mut expect_name = false;
    let mut is_impl = false;
    for &idx in buffer {
        match &tokens[idx].tok {
            Tok::Word(w) => {
                if expect_name {
                    fn_name = Some(w.clone());
                    expect_name = false;
                }
                match w.as_str() {
                    "fn" => expect_name = true,
                    "impl" | "trait" => is_impl = true,
                    "loop" | "while" | "for" => looped = true,
                    _ => {}
                }
            }
            Tok::Punct(_) => expect_name = false,
        }
    }
    if let Some(name) = fn_name {
        BlockKind::Fn { name }
    } else if is_impl {
        match impl_type_name(tokens, buffer) {
            Some(type_name) => BlockKind::Impl { type_name },
            None => BlockKind::Other,
        }
    } else if looped {
        BlockKind::Loop
    } else {
        BlockKind::Other
    }
}

/// Extracts the implemented type's name from an `impl`/`trait` header:
/// the last path segment of the type after `for` when present
/// (`impl Trait for Type`), else the first type path after the keyword
/// (`impl<T> Type<T>`, `trait Name`). Generic parameter lists are
/// skipped by angle-bracket depth.
fn impl_type_name(tokens: &[Token], buffer: &[usize]) -> Option<String> {
    let mut after_keyword = false;
    let mut depth = 0i32;
    let mut candidate: Option<String> = None;
    let mut take_next = false;
    for &idx in buffer {
        match &tokens[idx].tok {
            Tok::Word(w) => match w.as_str() {
                "impl" | "trait" => after_keyword = true,
                "for" if depth == 0 && after_keyword => {
                    candidate = None;
                    take_next = true;
                }
                "where" if depth == 0 => break,
                "dyn" | "mut" | "const" => {}
                _ if after_keyword && depth == 0 => {
                    if take_next || candidate.is_none() {
                        candidate = Some(w.clone());
                        take_next = false;
                    } else if candidate.is_some() && path_continues(tokens, buffer, idx) {
                        // `a::b::C` — keep the last segment.
                        candidate = Some(w.clone());
                    }
                }
                _ => {}
            },
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => depth -= 1,
            Tok::Punct(_) => {}
        }
    }
    candidate
}

/// True when the word at token `idx` is preceded by `::` (it continues a
/// path whose earlier segments were already seen).
fn path_continues(tokens: &[Token], buffer: &[usize], idx: usize) -> bool {
    let pos = buffer.iter().position(|&b| b == idx).unwrap_or(0);
    pos >= 2
        && matches!(tokens[buffer[pos - 1]].tok, Tok::Punct(':'))
        && matches!(tokens[buffer[pos - 2]].tok, Tok::Punct(':'))
}

/// True when the block being opened is a test root: a `#[cfg(test)]`
/// module or a `#[test]` function (attribute tokens are still in the
/// buffer because attributes precede the item with no `;`).
fn block_is_test_root(tokens: &[Token], buffer: &[usize], kind: &BlockKind) -> bool {
    let mut has_attr = false;
    let mut has_test = false;
    let mut has_not = false;
    let mut has_mod = false;
    for &idx in buffer {
        match &tokens[idx].tok {
            Tok::Punct('#') => has_attr = true,
            Tok::Word(w) => match w.as_str() {
                "test" => has_test = true,
                "not" => has_not = true,
                "mod" => has_mod = true,
                _ => {}
            },
            _ => {}
        }
    }
    if !(has_attr && has_test) || has_not {
        return false;
    }
    has_mod || matches!(kind, BlockKind::Fn { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(src: &str) -> Vec<Finding> {
        let stripped = strip(src);
        scan(&tokenize(&stripped.code_lines), false).findings
    }

    fn scan_full(src: &str) -> ScanResult {
        let stripped = strip(src);
        scan(&tokenize(&stripped.code_lines), false)
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let result = scan_full(
            "mod inner {\n    impl<T: Clone> Cache<T> {\n        fn insert(&mut self) { let v = Vec::new(); }\n    }\n    impl fmt::Display for Ring {\n        fn insert(&self) {}\n    }\n}\nfn free() {}\n",
        );
        let quals: Vec<_> = result.functions.iter().map(FnDef::display_name).collect();
        assert_eq!(quals, vec!["Cache::insert", "Ring::insert", "free"]);
        assert_eq!(result.findings.len(), 1);
        assert_eq!(result.findings[0].qual.as_deref(), Some("Cache::insert"));
        assert_eq!(result.findings[0].func.as_deref(), Some("insert"));
    }

    #[test]
    fn trait_default_methods_are_qualified_too() {
        let result = scan_full("trait Path {\n    fn run(&self) { x.unwrap(); }\n}\n");
        assert_eq!(result.functions[0].display_name(), "Path::run");
        assert_eq!(result.findings[0].qual.as_deref(), Some("Path::run"));
    }

    #[test]
    fn fn_body_extents_cover_exactly_the_body() {
        let src = "fn a() { one(); }\nfn b() { two(); }\n";
        let stripped = strip(src);
        let tokens = tokenize(&stripped.code_lines);
        let result = scan(&tokens, false);
        assert_eq!(result.functions.len(), 2);
        for (def, callee) in result.functions.iter().zip(["one", "two"]) {
            let words: Vec<_> = tokens[def.body.0..def.body.1]
                .iter()
                .filter_map(|t| match &t.tok {
                    Tok::Word(w) => Some(w.as_str()),
                    Tok::Punct(_) => None,
                })
                .collect();
            assert_eq!(words, vec![callee], "{}", def.name);
        }
        assert!(result.functions[0].sig.contains(&"fn".to_string()));
    }

    #[test]
    fn signature_words_capture_return_type() {
        let result =
            scan_full("fn lock(&self) -> MutexGuard<'_, u8> { lock_or_recover(&self.state) }\n");
        assert!(result.functions[0].sig.contains(&"MutexGuard".to_string()));
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let findings = scan_src(
            r##"
fn f() {
    let s = "Vec::new() .unwrap() HashMap";
    // Vec::new() in a comment
    let r = r#"panic!("x")"#;
    let c = 'x';
}
"##,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn alloc_and_panic_sites_carry_fn_context() {
        let findings = scan_src("fn hot() {\n    let v = Vec::new();\n    v.len().unwrap();\n}\n");
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.func.as_deref() == Some("hot")));
        assert!(!findings[0].in_test);
    }

    #[test]
    fn cfg_test_mod_marks_findings_as_test() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live() { y.unwrap(); }\n";
        let findings = scan_src(src);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].in_test);
        assert!(!findings[1].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let findings = scan_src("#[cfg(not(test))]\nmod live {\n    fn f() { x.unwrap(); }\n}\n");
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].in_test);
    }

    #[test]
    fn wait_inside_loop_is_fine_outside_is_flagged() {
        let looped = scan_src("fn f() { loop { g = cv.wait(g); } }");
        assert!(looped.is_empty(), "{looped:?}");
        let bare = scan_src("fn f() { if x { g = cv.wait(g); } }");
        assert_eq!(bare.len(), 1);
        assert!(matches!(bare[0].kind, FindingKind::BareWait { .. }));
        // Zero-argument `.wait()` is a different API (e.g. a future).
        assert!(scan_src("fn f() { p.wait(); }").is_empty());
    }

    #[test]
    fn while_let_counts_as_loop() {
        let findings = scan_src("fn f() { while let Some(x) = q.front() { g = cv.wait(g); } }");
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unsafe_sites_are_classified() {
        let findings = scan_src("unsafe fn f() {}\nfn g() { unsafe { f() } }\n");
        let kinds: Vec<_> = findings
            .iter()
            .filter_map(|f| match f.kind {
                FindingKind::UnsafeSite { kind } => Some(kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec!["unsafe fn", "unsafe block"]);
    }

    #[test]
    fn lifetimes_do_not_break_the_lexer() {
        let findings = scan_src("fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let _ = c; x }\n");
        assert!(findings.is_empty(), "{findings:?}");
    }
}
