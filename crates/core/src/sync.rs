//! Poison-tolerant locking helpers for the serving path.
//!
//! Every mutex in the runtime guards state whose invariants hold between
//! operations (a queue is consistent after each push/drain, an engine is
//! consistent between predictions, a histogram between records), so a
//! panic on one thread must not take the lock — and with it admission,
//! serving, and shutdown — down with it. All serving-path code acquires
//! locks through [`lock_or_recover`] (or re-acquires condvar guards
//! through [`recover`]) instead of `.lock().unwrap()`: a poisoned mutex
//! is recovered, not propagated, so a panicked worker can never wedge
//! `ServingRuntime::shutdown` or starve other request threads.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Unwraps any poison-carrying result (`Mutex::lock`, `Condvar::wait`,
/// `Condvar::wait_timeout`) by taking the guard from the poison error.
pub(crate) fn recover<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    recover(mutex.lock())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_or_recover_survives_a_panicked_holder() {
        let shared = Arc::new(Mutex::new(7u32));
        let holder = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = holder.lock().unwrap();
            panic!("holder dies with the lock held");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic must have poisoned the mutex");
        let mut guard = lock_or_recover(&shared);
        assert_eq!(*guard, 7, "state written before the panic is still there");
        *guard = 8;
        drop(guard);
        assert_eq!(*lock_or_recover(&shared), 8);
    }
}
