//! Event-driven simulation of the deep pipeline.
//!
//! The analytic [`Pipeline`] model answers steady-state questions (latency
//! = Σ stages, throughput = 1 / bottleneck). This module *simulates* items
//! flowing through the same stages — with arbitrary arrival times, finite
//! inter-stage FIFOs (blocking-after-service, the behaviour of the BRAM
//! FIFOs of §4.1), and optionally per-item stage times (e.g. embedding
//! lookups whose latency depends on DRAM row-buffer state). The
//! deterministic tandem-queue recurrence is exact:
//!
//! ```text
//! D[i][k] = max( max(D[i][k-1], D[i-1][k]) + s[i][k],  D[i-B-1][k+1] )
//! ```
//!
//! where `D[i][k]` is item *i*'s departure from stage *k*, `s` the service
//! time, and `B` the FIFO capacity after the stage. The tests confirm the
//! simulation degenerates to the analytic model for constant stage times —
//! and diverges from it, correctly, when stage times vary.

use microrec_memsim::SimTime;

use crate::pipeline::Pipeline;

/// Result of one pipeline flow simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Completion time of each item (absolute).
    pub completions: Vec<SimTime>,
    /// Per-item latency (completion − arrival).
    pub latencies: Vec<SimTime>,
}

impl FlowReport {
    /// Time the last item completes.
    #[must_use]
    pub fn makespan(&self) -> SimTime {
        self.completions.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Sustained throughput over the whole run, in items per second.
    #[must_use]
    pub fn throughput_items_per_sec(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.len() as f64 / self.makespan().as_secs()
    }

    /// Largest per-item latency.
    #[must_use]
    pub fn max_latency(&self) -> SimTime {
        self.latencies.iter().copied().max().unwrap_or(SimTime::ZERO)
    }

    /// Mean per-item latency.
    #[must_use]
    pub fn mean_latency(&self) -> SimTime {
        if self.latencies.is_empty() {
            return SimTime::ZERO;
        }
        self.latencies.iter().copied().sum::<SimTime>() / self.latencies.len() as u64
    }
}

/// Event-driven simulator over a [`Pipeline`]'s stages.
///
/// # Examples
///
/// ```
/// use microrec_accel::{AccelConfig, FlowSim, Pipeline};
/// use microrec_embedding::{ModelSpec, Precision};
/// use microrec_memsim::SimTime;
///
/// let model = ModelSpec::small_production();
/// let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
/// let pipe = Pipeline::build(&model, &cfg, SimTime::from_ns(485.0))?;
/// let report = FlowSim::new(&pipe, 2).run_saturated(100);
/// // Exact agreement with the analytic model for deterministic stages:
/// assert_eq!(report.makespan(), pipe.batch_latency(100));
/// # Ok::<(), microrec_accel::AccelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowSim {
    stage_times: Vec<SimTime>,
    fifo_capacity: usize,
}

impl FlowSim {
    /// Creates a simulator for `pipeline` with `fifo_capacity` slots after
    /// every stage (the paper uses BRAM FIFOs; 2 is a typical HLS depth).
    #[must_use]
    pub fn new(pipeline: &Pipeline, fifo_capacity: usize) -> Self {
        FlowSim { stage_times: pipeline.stages().iter().map(|s| s.time).collect(), fifo_capacity }
    }

    /// Runs `n` items arriving at the given times (must be sorted
    /// ascending) with constant per-stage service times.
    #[must_use]
    pub fn run(&self, arrivals: &[SimTime]) -> FlowReport {
        self.run_with(arrivals, |_item, stage| self.stage_times[stage])
    }

    /// Runs with caller-supplied per-item stage times — `stage_time(item,
    /// stage)` — enabling studies where e.g. the lookup stage varies with
    /// DRAM row-buffer state.
    #[must_use]
    pub fn run_with(
        &self,
        arrivals: &[SimTime],
        stage_time: impl Fn(usize, usize) -> SimTime,
    ) -> FlowReport {
        let n = arrivals.len();
        let k = self.stage_times.len();
        if n == 0 || k == 0 {
            return FlowReport { completions: Vec::new(), latencies: Vec::new() };
        }
        let b = self.fifo_capacity;
        // departures[i][stage]; computed stage-major per item, with the
        // blocking term patched in a relaxation sweep (the blocking
        // dependency D[i][k] on D[i-B-1][k+1] only looks at *earlier*
        // items, so one forward pass item-by-item is exact).
        let mut departures = vec![vec![SimTime::ZERO; k]; n];
        for i in 0..n {
            for stage in 0..k {
                let ready = if stage == 0 { arrivals[i] } else { departures[i][stage - 1] };
                let stage_free = if i == 0 { SimTime::ZERO } else { departures[i - 1][stage] };
                let mut depart = ready.max(stage_free) + stage_time(i, stage);
                // Blocking after service: cannot vacate stage `stage` until
                // item i-B-1 has left stage `stage+1`, freeing a FIFO slot.
                if stage + 1 < k && i > b {
                    depart = depart.max(departures[i - b - 1][stage + 1]);
                }
                departures[i][stage] = depart;
            }
        }
        let completions: Vec<SimTime> = departures.iter().map(|d| d[k - 1]).collect();
        let latencies =
            completions.iter().zip(arrivals).map(|(&c, &a)| c.saturating_sub(a)).collect();
        FlowReport { completions, latencies }
    }

    /// Convenience: run `n` back-to-back items (all arriving at time 0 —
    /// the saturated regime the paper's batch-latency numbers assume).
    #[must_use]
    pub fn run_saturated(&self, n: usize) -> FlowReport {
        self.run(&vec![SimTime::ZERO; n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;
    use microrec_embedding::{ModelSpec, Precision};

    fn pipe() -> Pipeline {
        let model = ModelSpec::small_production();
        let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
        Pipeline::build(&model, &cfg, SimTime::from_ns(485.0)).unwrap()
    }

    #[test]
    fn single_item_matches_analytic_latency() {
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        let report = sim.run_saturated(1);
        assert_eq!(report.completions[0], p.latency());
        assert_eq!(report.latencies[0], p.latency());
    }

    #[test]
    fn saturated_throughput_matches_initiation_interval() {
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        let n = 500;
        let report = sim.run_saturated(n);
        // Makespan = fill + (n-1) * II exactly, for deterministic stages.
        let expect = p.latency() + p.initiation_interval() * (n as u64 - 1);
        assert_eq!(report.makespan(), expect);
        assert_eq!(report.makespan(), p.batch_latency(n as u64));
    }

    #[test]
    fn finite_fifos_do_not_slow_deterministic_pipelines() {
        // Classic result: with deterministic service, blocking never binds
        // beyond the bottleneck rate, for any FIFO depth >= 1.
        let p = pipe();
        let deep = FlowSim::new(&p, 64).run_saturated(200).makespan();
        let shallow = FlowSim::new(&p, 1).run_saturated(200).makespan();
        assert_eq!(deep, shallow);
    }

    #[test]
    fn poisson_like_arrivals_add_no_queueing_below_capacity() {
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        // Arrivals slower than the II: every item sees an empty pipeline.
        let gap = p.initiation_interval() * 3;
        let arrivals: Vec<SimTime> = (0..50u64).map(|i| gap * i).collect();
        let report = sim.run(&arrivals);
        for lat in &report.latencies {
            assert_eq!(*lat, p.latency(), "no queueing expected");
        }
    }

    #[test]
    fn variable_lookup_times_shift_the_bottleneck() {
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        let ii = p.initiation_interval();
        // Make every lookup slower than the compute bottleneck: the lookup
        // stage becomes the II.
        let slow_lookup = ii * 2;
        let report = sim.run_with(&vec![SimTime::ZERO; 100], |_i, stage| {
            if stage == 0 {
                slow_lookup
            } else {
                p.stages()[stage].time
            }
        });
        let span = report.makespan();
        let expect_tail = slow_lookup * 99;
        assert!(span >= expect_tail, "lookup-bound: {span} >= {expect_tail}");
    }

    #[test]
    fn mixed_fast_slow_lookups_average_out() {
        // Alternate fast (row hit) and slow (row miss) lookups, all below
        // the compute II: throughput must stay compute-bound.
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        let ii = p.initiation_interval();
        let report = sim.run_with(&vec![SimTime::ZERO; 100], |i, stage| {
            if stage == 0 {
                if i % 2 == 0 {
                    SimTime::from_ns(100.0)
                } else {
                    SimTime::from_ns(600.0)
                }
            } else {
                p.stages()[stage].time
            }
        });
        let expect = p.latency() + ii * 99;
        // Allow the first-item fill difference.
        let slack = SimTime::from_ns(600.0);
        assert!(
            report.makespan() <= expect + slack,
            "compute-bound expected: {} vs {}",
            report.makespan(),
            expect
        );
    }

    #[test]
    fn empty_run_is_empty() {
        let p = pipe();
        let sim = FlowSim::new(&p, 2);
        let report = sim.run(&[]);
        assert!(report.completions.is_empty());
        assert_eq!(report.makespan(), SimTime::ZERO);
        assert_eq!(report.throughput_items_per_sec(), 0.0);
        assert_eq!(report.mean_latency(), SimTime::ZERO);
    }

    #[test]
    fn report_statistics() {
        let p = pipe();
        let report = FlowSim::new(&p, 2).run_saturated(10);
        assert!(report.mean_latency() >= p.latency());
        assert!(report.max_latency() >= report.mean_latency());
        assert!(report.throughput_items_per_sec() > 0.0);
    }
}
