//! Embedding-lookup fast-path benchmark: wall-clock gather throughput of
//! the legacy per-table path vs the contiguous [`EmbeddingArena`] (f32,
//! f16, i8 rows) with and without the [`HotRowCache`], under Zipf(1.05)
//! and uniform traffic. Emits one JSON record per point (committed as
//! `BENCH_lookup.json`).
//!
//! The bin also enforces the fast path's functional contracts before
//! timing anything: the f32 arena must gather bit-identically to the
//! legacy tables, and for every row format the cache-fronted path must be
//! bit-identical to the same storage without a cache.
//!
//! Run with `cargo run --release -p microrec-bench --bin lookup`
//! (`-- --smoke` for the time-bounded CI variant).

use std::hint::black_box;
use std::time::Instant;

use microrec_embedding::{
    EmbeddingArena, EmbeddingTable, HotRowCache, ModelSpec, RowFormat, TableSpec, TierCounters,
    TieredBacking, TieredStore,
};
use microrec_json::ToJson;
use microrec_workload::{QueryGenConfig, QueryGenerator};

/// Logical embedding tables.
const TABLES: usize = 16;
/// Row dimension (f32 elements per row).
const DIM: u32 = 32;
/// Simulated memory channels the arena is striped over.
const CHANNELS: usize = 8;
/// Hot-row cache capacity in rows (128K rows × 128 B = 16 MiB). Sized as
/// a hot tier the way HugeCTR's parameter server sizes its GPU cache —
/// a double-digit percentage of the row space — so the Zipf(1.05) head
/// fits; uniform traffic does not fit, and the bench reports both
/// regimes.
const CACHE_ROWS: usize = 131_072;
/// Cache associativity.
const CACHE_WAYS: usize = 8;
/// Resident budgets for the tiered sweep, as percentages of the encoded
/// embedding bytes. 5% leaves every equal-sized table cold (the cache is
/// the only memory tier), 25% admits a quarter of the tables, 100% is
/// all-resident (the tiered store degenerates to the arena).
const TIERED_BUDGET_PCTS: [u64; 3] = [100, 25, 5];
/// Async cold-read prefetch workers per tiered store when the machine has
/// spare cores. On a single-core host the workers cannot overlap with the
/// serving thread — every handoff is a context switch — so the bench
/// drops to synchronous reads there (see [`prefetch_workers`]).
const PREFETCH_WORKERS: usize = 2;

/// Prefetch workers to actually use on this host.
fn prefetch_workers() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores > 1 {
        PREFETCH_WORKERS
    } else {
        0
    }
}

/// One measured configuration, serialized into `BENCH_lookup.json`.
#[derive(Debug, Clone, PartialEq)]
struct LookupPoint {
    /// Traffic distribution (`"zipf-1.05"` or `"uniform"`).
    dist: String,
    /// Row storage (`"legacy"`, `"f32"`, `"f16"`, `"i8"`).
    storage: String,
    /// Cache capacity in rows (0 = cache off).
    cache_rows: u64,
    /// Mean wall-clock time per row gathered.
    ns_per_lookup: f64,
    /// Steady-state cache hit rate (0 when the cache is off).
    hit_rate: f64,
    /// Speedup over the legacy no-cache path under the same traffic.
    speedup_vs_legacy: f64,
    /// Feature bytes served from the cache during the timed passes.
    bytes_from_cache: u64,
    /// Source-row bytes fetched from storage during the timed passes.
    bytes_from_memory: u64,
}

microrec_json::impl_json_struct!(
    LookupPoint,
    required {
        dist,
        storage,
        cache_rows,
        ns_per_lookup,
        hit_rate,
        speedup_vs_legacy,
        bytes_from_cache,
        bytes_from_memory,
    }
);

/// Row storage backing one gather configuration.
enum Storage<'a> {
    Legacy(&'a [EmbeddingTable]),
    Arena(&'a EmbeddingArena),
}

impl Storage<'_> {
    fn label(&self) -> &'static str {
        match self {
            Storage::Legacy(_) => "legacy",
            Storage::Arena(a) => a.format().as_str(),
        }
    }

    /// Reads one row into `slot`, returning the source bytes it cost.
    fn read_row_into(&self, table: usize, row: u64, slot: &mut [f32]) -> usize {
        match self {
            Storage::Legacy(tables) => {
                tables[table].read_row(row, slot).expect("legacy read");
                slot.len() * 4
            }
            Storage::Arena(arena) => {
                arena.read_row_into(table, row, slot).expect("arena read");
                arena.source_row_bytes(table)
            }
        }
    }
}

/// Cache-fronted gather state: the cache plus its reusable miss scratch.
struct CachedPath {
    cache: HotRowCache,
    misses: Vec<usize>,
}

impl CachedPath {
    fn new() -> Self {
        CachedPath {
            cache: HotRowCache::new(&[DIM; TABLES], CACHE_ROWS, CACHE_WAYS),
            misses: Vec::with_capacity(TABLES),
        }
    }
}

/// Gathers one query's rows into `out`, optionally through the cache.
/// The cached path probes the whole round first, then services misses in
/// bulk, so independent cache-line fetches overlap.
fn gather(storage: &Storage<'_>, cached: Option<&mut CachedPath>, query: &[u64], out: &mut [f32]) {
    let dim = DIM as usize;
    match cached {
        Some(path) => {
            path.cache.probe_round(query, out, &mut path.misses);
            for &table in &path.misses {
                let slot = &mut out[table * dim..(table + 1) * dim];
                let bytes = storage.read_row_into(table, query[table], slot);
                path.cache.insert(table, query[table], slot, bytes);
            }
        }
        None => match storage {
            Storage::Arena(arena) => arena.gather_into(query, out).expect("arena gather"),
            Storage::Legacy(_) => {
                for (table, &row) in query.iter().enumerate() {
                    storage.read_row_into(table, row, &mut out[table * dim..(table + 1) * dim]);
                }
            }
        },
    }
}

/// Times `passes` full sweeps over `queries`, returning ns per row
/// gathered for the fastest pass (robust to scheduler interference) plus
/// the cache's steady-state counters accumulated over every timed pass.
fn measure(
    storage: &Storage<'_>,
    mut cached: Option<CachedPath>,
    queries: &[Vec<u64>],
    passes: usize,
) -> (f64, f64, u64, u64) {
    let mut out = vec![0.0f32; TABLES * DIM as usize];
    // Warm pass: faults the arena pages in and fills the cache.
    for q in queries {
        gather(storage, cached.as_mut(), q, &mut out);
    }
    if let Some(p) = cached.as_mut() {
        p.cache.reset_stats();
    }
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for q in queries {
            gather(storage, cached.as_mut(), q, &mut out);
            black_box(out[0]);
        }
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    let lookups = (queries.len() * TABLES) as f64;
    match cached {
        Some(p) => (
            best / lookups,
            p.cache.hit_rate(),
            p.cache.bytes_from_cache(),
            p.cache.bytes_from_memory(),
        ),
        None => (best / lookups, 0.0, 0, 0),
    }
}

/// One measured tiered-store configuration (always behind the warm
/// hot-row cache), serialized into the `tiered_points` section.
#[derive(Debug, Clone, PartialEq)]
struct TieredPoint {
    /// Traffic distribution (`"zipf-1.05"` or `"uniform"`).
    dist: String,
    /// Row storage format (`"f32"` or `"f16"`).
    storage: String,
    /// Resident budget as a percentage of the encoded embedding bytes.
    budget_pct: u64,
    /// Resident budget in bytes.
    budget_bytes: u64,
    /// Tables the residency policy admitted under the budget.
    resident_tables: u64,
    /// Hot-row cache capacity in rows.
    cache_rows: u64,
    /// Mean wall-clock time per row gathered (fastest pass).
    ns_per_lookup: f64,
    /// Steady-state cache hit rate.
    hit_rate: f64,
    /// Throughput relative to the all-resident (100% budget) point under
    /// the same traffic and format (1.0 at 100%).
    qps_vs_all_resident: f64,
    /// Rows served from the resident arena tier over the timed passes.
    resident_hits: u64,
    /// Rows read from the file-backed cold tier over the timed passes.
    cold_reads: u64,
    /// Cold reads whose async prefetch completed before collection.
    prefetch_hits: u64,
    /// Bytes read from the cold tier over the timed passes.
    bytes_from_cold: u64,
}

microrec_json::impl_json_struct!(
    TieredPoint,
    required {
        dist,
        storage,
        budget_pct,
        budget_bytes,
        resident_tables,
        cache_rows,
        ns_per_lookup,
        hit_rate,
        qps_vs_all_resident,
        resident_hits,
        cold_reads,
        prefetch_hits,
        bytes_from_cold,
    }
);

/// Gathers one query through the tiered store, optionally behind the
/// hot-row cache (probe the whole round, then serve only the misses).
fn tiered_gather(
    store: &mut TieredStore,
    cached: Option<&mut CachedPath>,
    query: &[u64],
    offsets: &[usize],
    out: &mut [f32],
) {
    match cached {
        Some(path) => {
            let CachedPath { cache, misses } = path;
            cache.probe_round(query, out, misses);
            store
                .serve_rows(query, misses, offsets, out, |t, slot, bytes| {
                    cache.insert(t, query[t], slot, bytes);
                })
                .expect("tiered serve");
        }
        None => store.gather_round(query, offsets, out).expect("tiered gather"),
    }
}

/// Times `passes` sweeps over `queries` through the tiered store behind a
/// warm cache. Returns ns per lookup for the fastest pass, the cache hit
/// rate, and the per-tier counters accumulated over the timed passes.
fn measure_tiered(
    store: &mut TieredStore,
    queries: &[Vec<u64>],
    offsets: &[usize],
    passes: usize,
) -> (f64, f64, TierCounters) {
    let mut path = CachedPath::new();
    let mut out = vec![0.0f32; TABLES * DIM as usize];
    // Warm pass: fills the cache, faults resident pages, pulls the cold
    // file into the OS page cache, and spins up the prefetch workers.
    for q in queries {
        tiered_gather(store, Some(&mut path), q, offsets, &mut out);
    }
    path.cache.reset_stats();
    store.reset_stats();
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let start = Instant::now();
        for q in queries {
            tiered_gather(store, Some(&mut path), q, offsets, &mut out);
            black_box(out[0]);
        }
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    let counters = store.counters();
    assert_eq!(counters.cold_errors, 0, "cold tier reported I/O errors while timing");
    (best / (queries.len() * TABLES) as f64, path.cache.hit_rate(), counters)
}

/// The tiered store must be bit-identical to the all-resident arena of
/// the same format at every budget, cache on and off — before anything
/// is timed.
fn check_tiered_bit_identity(
    arena: &EmbeddingArena,
    backing: &std::sync::Arc<TieredBacking>,
    offsets: &[usize],
    queries: &[Vec<u64>],
) {
    let mut store = TieredStore::new(std::sync::Arc::clone(backing), prefetch_workers());
    let mut path = CachedPath::new();
    let mut expected = vec![0.0f32; TABLES * DIM as usize];
    let mut got = vec![0.0f32; TABLES * DIM as usize];
    for q in queries {
        arena.gather_into(q, &mut expected).expect("arena gather");
        tiered_gather(&mut store, None, q, offsets, &mut got);
        assert_eq!(
            bits(&got),
            bits(&expected),
            "{} tiered (no cache) diverged from the arena",
            arena.format()
        );
        tiered_gather(&mut store, Some(&mut path), q, offsets, &mut got);
        assert_eq!(
            bits(&got),
            bits(&expected),
            "{} tiered (cached) diverged from the arena",
            arena.format()
        );
    }
}

/// Generates `n` queries (one row per table) from the model's generator.
fn generate(model: &ModelSpec, zipf: f64, n: usize) -> Vec<Vec<u64>> {
    let mut gen = QueryGenerator::new(model, QueryGenConfig { zipf_exponent: zipf, seed: 0xB00C })
        .expect("generator");
    (0..n).map(|_| gen.next_query()).collect()
}

/// Every configuration must produce bit-identical features to the legacy
/// cacheless gather (f32 storage) or to its own cacheless gather
/// (quantized storage): the cache must never change a single bit.
fn check_bit_identity(tables: &[EmbeddingTable], arenas: &[EmbeddingArena], queries: &[Vec<u64>]) {
    let dim = DIM as usize;
    let mut expected = vec![0.0f32; TABLES * dim];
    let mut got = vec![0.0f32; TABLES * dim];
    for arena in arenas {
        let storage = Storage::Arena(arena);
        let mut path = CachedPath::new();
        for q in queries {
            gather(&storage, None, q, &mut expected);
            if arena.format() == RowFormat::F32 {
                // f32 arena ≡ legacy tables, bit for bit.
                gather(&Storage::Legacy(tables), None, q, &mut got);
                assert_eq!(bits(&got), bits(&expected), "f32 arena diverged from legacy");
            }
            // Cache-on ≡ cache-off for every storage format.
            gather(&storage, Some(&mut path), q, &mut got);
            assert_eq!(bits(&got), bits(&expected), "{} cache diverged", arena.format());
        }
        assert!(path.cache.hits() > 0, "identity stream never hit the cache");
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (rows_per_table, num_queries, passes) =
        if smoke { (20_000u64, 2_000usize, 2usize) } else { (25_000, 20_000, 5) };

    let specs: Vec<TableSpec> = (0..TABLES)
        .map(|i| TableSpec::new(format!("lookup_{i:02}"), rows_per_table, DIM))
        .collect();
    let model = ModelSpec::new("lookup-bench", specs, vec![64], 1);
    let tables: Vec<EmbeddingTable> = model
        .tables
        .iter()
        .enumerate()
        .map(|(i, spec)| EmbeddingTable::procedural(spec.clone(), 0x10_0C + i as u64))
        .collect();
    let channel_of: Vec<usize> = (0..TABLES).map(|i| i % CHANNELS).collect();

    eprintln!(
        "building arenas: {TABLES} tables x {rows_per_table} rows x {DIM} dims over {CHANNELS} channels"
    );
    let arenas: Vec<EmbeddingArena> = [RowFormat::F32, RowFormat::F16, RowFormat::I8]
        .into_iter()
        .map(|f| EmbeddingArena::build(&tables, f, &channel_of, u64::MAX).expect("arena"))
        .collect();
    for arena in &arenas {
        eprintln!(
            "  {:>3} arena: {:.1} MiB, 64B-aligned: {}",
            arena.format().as_str(),
            arena.total_bytes() as f64 / (1 << 20) as f64,
            arena.is_aligned(),
        );
    }

    let identity_queries = generate(&model, 1.05, if smoke { 200 } else { 1_000 });
    check_bit_identity(&tables, &arenas, &identity_queries);
    eprintln!("bit-identity (f32 arena vs legacy, cache on vs off): ok");

    let mut points = Vec::new();
    let mut headline = 0.0f64;
    for (dist, zipf) in [("zipf-1.05", 1.05), ("uniform", 0.0)] {
        let queries = generate(&model, zipf, num_queries);
        let mut legacy_ns = 0.0f64;
        for storage in
            std::iter::once(Storage::Legacy(&tables)).chain(arenas.iter().map(Storage::Arena))
        {
            for cached in [false, true] {
                let path = cached.then(CachedPath::new);
                let (ns, hit_rate, from_cache, from_memory) =
                    measure(&storage, path, &queries, passes);
                if !cached && matches!(storage, Storage::Legacy(_)) {
                    legacy_ns = ns;
                }
                let speedup = legacy_ns / ns;
                if dist == "zipf-1.05" && storage.label() == "f16" && cached {
                    headline = speedup;
                }
                eprintln!(
                    "{dist:>9} {:>6} cache={:<5} {ns:>7.2} ns/lookup  hit {:>5.1}%  {speedup:>5.2}x",
                    storage.label(),
                    cached,
                    hit_rate * 100.0,
                );
                points.push(LookupPoint {
                    dist: dist.to_string(),
                    storage: storage.label().to_string(),
                    cache_rows: if cached { CACHE_ROWS as u64 } else { 0 },
                    ns_per_lookup: ns,
                    hit_rate,
                    speedup_vs_legacy: speedup,
                    bytes_from_cache: from_cache,
                    bytes_from_memory: from_memory,
                });
            }
        }
    }

    // Acceptance gate: warm f16 rows behind the cache must gather at
    // least 2x faster than the legacy scalar path under Zipf(1.05).
    eprintln!("headline (f16 + warm cache vs legacy, Zipf 1.05): {headline:.2}x");
    assert!(headline >= 2.0, "f16 warm-cache speedup {headline:.2}x below the 2x gate");

    // ---- Tiered parameter-store sweep -----------------------------------
    // Budget {100%, 25%, 5%} x {zipf, uniform} x {f32, f16}, every point
    // behind the warm hot-row cache. The uniform points are the honest
    // counter-case: with no reuse the cache cannot shield the cold tier,
    // so a small budget pays the file-read cost on most rounds.
    let offsets: Vec<usize> = (0..TABLES).map(|t| t * DIM as usize).collect();
    let mut tiered_points = Vec::new();
    let mut gate_ratio = f64::INFINITY;
    for format in [RowFormat::F32, RowFormat::F16] {
        let arena = arenas.iter().find(|a| a.format() == format).expect("arena");
        let row_bytes = DIM as u64 * format.bytes_per_elem() as u64;
        let total_bytes = TABLES as u64 * rows_per_table * row_bytes;
        let backings: Vec<(u64, std::sync::Arc<TieredBacking>)> = TIERED_BUDGET_PCTS
            .into_iter()
            .map(|pct| {
                let budget = total_bytes * pct / 100;
                let backing = TieredBacking::build(&tables, format, &channel_of, budget)
                    .expect("tiered backing");
                assert!(backing.resident_bytes() <= budget, "residency plan exceeded budget");
                // Bit-identity gate before timing: every budget must serve
                // the exact bits the all-resident arena serves.
                check_tiered_bit_identity(arena, &backing, &offsets, &identity_queries);
                (pct, backing)
            })
            .collect();
        eprintln!("tiered bit-identity ({} at {TIERED_BUDGET_PCTS:?}% budgets): ok", format);
        for (dist, zipf) in [("zipf-1.05", 1.05), ("uniform", 0.0)] {
            let queries = generate(&model, zipf, num_queries);
            let mut all_resident_ns = 0.0f64;
            for (pct, backing) in &backings {
                let mut store =
                    TieredStore::new(std::sync::Arc::clone(backing), prefetch_workers());
                let (ns, hit_rate, counters) =
                    measure_tiered(&mut store, &queries, &offsets, passes);
                if *pct == 100 {
                    all_resident_ns = ns;
                }
                let qps_ratio = all_resident_ns / ns;
                if *pct == 25 && dist == "zipf-1.05" {
                    gate_ratio = gate_ratio.min(qps_ratio);
                }
                eprintln!(
                    "{dist:>9} {:>4} tiered {pct:>3}% {ns:>8.2} ns/lookup  hit {:>5.1}%  \
                     {:.0}% of all-resident qps  cold {} (prefetch {})",
                    format.as_str(),
                    hit_rate * 100.0,
                    qps_ratio * 100.0,
                    counters.cold_reads,
                    counters.prefetch_hits,
                );
                tiered_points.push(TieredPoint {
                    dist: dist.to_string(),
                    storage: format.as_str().to_string(),
                    budget_pct: *pct,
                    budget_bytes: total_bytes * pct / 100,
                    resident_tables: backing.num_resident_tables() as u64,
                    cache_rows: CACHE_ROWS as u64,
                    ns_per_lookup: ns,
                    hit_rate,
                    qps_vs_all_resident: qps_ratio,
                    resident_hits: counters.resident_hits,
                    cold_reads: counters.cold_reads,
                    prefetch_hits: counters.prefetch_hits,
                    bytes_from_cold: counters.bytes_from_cold,
                });
            }
        }
    }
    // Acceptance gate (full runs only; --smoke is too short to time
    // reliably): the warm tiered path at a 25% budget must keep at least
    // 70% of all-resident throughput under Zipf(1.05).
    eprintln!("tiered gate (Zipf 1.05, 25% budget, worst format): {:.0}%", gate_ratio * 100.0);
    if !smoke {
        assert!(
            gate_ratio >= 0.70,
            "tiered 25%-budget qps {:.2} below 70% of all-resident",
            gate_ratio
        );
    }

    let obj = vec![
        ("model".to_string(), model.name.to_json()),
        ("tables".to_string(), (TABLES as u64).to_json()),
        ("rows_per_table".to_string(), rows_per_table.to_json()),
        ("dim".to_string(), u64::from(DIM).to_json()),
        ("channels".to_string(), (CHANNELS as u64).to_json()),
        ("cache_rows".to_string(), (CACHE_ROWS as u64).to_json()),
        ("cache_ways".to_string(), (CACHE_WAYS as u64).to_json()),
        ("queries".to_string(), (num_queries as u64).to_json()),
        ("passes".to_string(), (passes as u64).to_json()),
        ("bit_identical".to_string(), true.to_json()),
        ("headline_speedup_f16_warm_zipf".to_string(), headline.to_json()),
        ("points".to_string(), points.to_json()),
        (
            "tiered_budget_pcts".to_string(),
            TIERED_BUDGET_PCTS.to_vec().to_json(),
        ),
        ("prefetch_workers".to_string(), (prefetch_workers() as u64).to_json()),
        ("tiered_gate_qps_vs_all_resident".to_string(), gate_ratio.to_json()),
        ("tiered_points".to_string(), tiered_points.to_json()),
    ];
    println!("{}", microrec_json::to_string_pretty(&microrec_json::Json::Obj(obj)));
}
