//! Error types for the CPU baseline.

use std::error::Error;
use std::fmt;

use microrec_dnn::DnnError;
use microrec_embedding::EmbeddingError;

/// Errors returned by the CPU engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CpuError {
    /// The embedding layer rejected an operation.
    Embedding(EmbeddingError),
    /// The DNN substrate rejected an operation.
    Dnn(DnnError),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Embedding(e) => write!(f, "embedding error: {e}"),
            CpuError::Dnn(e) => write!(f, "dnn error: {e}"),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::Embedding(e) => Some(e),
            CpuError::Dnn(e) => Some(e),
        }
    }
}

impl From<EmbeddingError> for CpuError {
    fn from(e: EmbeddingError) -> Self {
        CpuError::Embedding(e)
    }
}

impl From<DnnError> for CpuError {
    fn from(e: DnnError) -> Self {
        CpuError::Dnn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: CpuError = EmbeddingError::DegenerateProduct.into();
        assert!(e.source().is_some());
        let e: CpuError = DnnError::EmptyNetwork.into();
        assert!(e.to_string().contains("no layers"));
    }
}
