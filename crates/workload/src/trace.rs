//! Request traces: queries with arrival times, as one replayable object.
//!
//! A trace freezes a workload (for replay across engines, serialization
//! into fixtures, or splitting across serving tiers) so comparisons are
//! apples-to-apples: the CPU baseline, the MicroRec engine, and the hybrid
//! router can all be driven by the *same* trace.

use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;

use crate::arrival::PoissonArrivals;
use crate::error::WorkloadError;
use crate::query_gen::{QueryGenConfig, QueryGenerator};

/// A fixed sequence of timestamped queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    arrivals: Vec<SimTime>,
    queries: Vec<Vec<u64>>,
}

impl RequestTrace {
    /// Builds a trace of `n` Zipf-sampled queries under Poisson arrivals at
    /// `rate_per_sec`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for bad rates or query
    /// configs.
    pub fn generate(
        model: &ModelSpec,
        rate_per_sec: f64,
        n: usize,
        config: QueryGenConfig,
    ) -> Result<Self, WorkloadError> {
        let mut arrivals = PoissonArrivals::new(rate_per_sec, config.seed)?;
        let mut queries = QueryGenerator::new(model, config)?;
        Ok(RequestTrace { arrivals: arrivals.take(n), queries: queries.next_batch(n) })
    }

    /// Builds a trace from explicit parts.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] if lengths disagree or
    /// arrivals are not sorted.
    pub fn from_parts(
        arrivals: Vec<SimTime>,
        queries: Vec<Vec<u64>>,
    ) -> Result<Self, WorkloadError> {
        if arrivals.len() != queries.len() {
            return Err(WorkloadError::InvalidConfig(format!(
                "{} arrivals vs {} queries",
                arrivals.len(),
                queries.len()
            )));
        }
        if arrivals.windows(2).any(|w| w[1] < w[0]) {
            return Err(WorkloadError::InvalidConfig("arrivals must be sorted".into()));
        }
        Ok(RequestTrace { arrivals, queries })
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Arrival instants, sorted ascending.
    #[must_use]
    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }

    /// The queries, aligned with [`RequestTrace::arrivals`].
    #[must_use]
    pub fn queries(&self) -> &[Vec<u64>] {
        &self.queries
    }

    /// Mean offered rate over the trace span, in queries per second.
    #[must_use]
    pub fn offered_rate(&self) -> f64 {
        match self.arrivals.last() {
            Some(last) if !last.is_zero() => self.len() as f64 / last.as_secs(),
            _ => 0.0,
        }
    }

    /// Iterates over `(arrival, query)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &[u64])> {
        self.arrivals.iter().copied().zip(self.queries.iter().map(Vec::as_slice))
    }

    /// Splits the trace at request index `at` (prefix keeps `[0, at)`).
    #[must_use]
    pub fn split_at(&self, at: usize) -> (RequestTrace, RequestTrace) {
        let at = at.min(self.len());
        (
            RequestTrace {
                arrivals: self.arrivals[..at].to_vec(),
                queries: self.queries[..at].to_vec(),
            },
            RequestTrace {
                arrivals: self.arrivals[at..].to_vec(),
                queries: self.queries[at..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelSpec {
        ModelSpec::dlrm_rmc2(4, 4)
    }

    #[test]
    fn generate_produces_aligned_parts() {
        let trace =
            RequestTrace::generate(&model(), 10_000.0, 500, QueryGenConfig::default()).unwrap();
        assert_eq!(trace.len(), 500);
        assert!(!trace.is_empty());
        assert_eq!(trace.arrivals().len(), trace.queries().len());
        let rate = trace.offered_rate();
        assert!((rate - 10_000.0).abs() / 10_000.0 < 0.25, "rate {rate}");
        for (arr, q) in trace.iter() {
            assert!(arr > SimTime::ZERO);
            assert_eq!(q.len(), 16);
        }
    }

    #[test]
    fn traces_are_reproducible() {
        let a = RequestTrace::generate(&model(), 1_000.0, 50, QueryGenConfig::default()).unwrap();
        let b = RequestTrace::generate(&model(), 1_000.0, 50, QueryGenConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_parts_validates() {
        let ok = RequestTrace::from_parts(
            vec![SimTime::from_us(1.0), SimTime::from_us(2.0)],
            vec![vec![1], vec![2]],
        );
        assert!(ok.is_ok());
        assert!(RequestTrace::from_parts(vec![SimTime::ZERO], vec![]).is_err());
        assert!(RequestTrace::from_parts(
            vec![SimTime::from_us(2.0), SimTime::from_us(1.0)],
            vec![vec![1], vec![2]],
        )
        .is_err());
    }

    #[test]
    fn split_preserves_everything() {
        let trace =
            RequestTrace::generate(&model(), 5_000.0, 100, QueryGenConfig::default()).unwrap();
        let (head, tail) = trace.split_at(30);
        assert_eq!(head.len(), 30);
        assert_eq!(tail.len(), 70);
        assert_eq!(head.queries()[29], trace.queries()[29]);
        assert_eq!(tail.queries()[0], trace.queries()[30]);
        let (all, none) = trace.split_at(1_000);
        assert_eq!(all.len(), 100);
        assert!(none.is_empty());
        assert_eq!(none.offered_rate(), 0.0);
    }
}
