//! Brute-force search over Cartesian combinations (§3.4.1).
//!
//! The paper describes — and dismisses as infeasible at scale — an
//! exhaustive search: choose any subset of tables as Cartesian candidates,
//! try every way of pairing them, allocate, and keep the best. This module
//! implements exactly that (restricted to pairings, matching heuristic rule
//! 2, with the same allocator as the heuristic) so the heuristic's
//! near-optimality claim can be *measured* on instances small enough to
//! enumerate.
//!
//! The number of solutions is `Σ_k C(N, 2k) · (2k-1)!!`, which passes a
//! million around N = 12; [`brute_force_search`] therefore refuses larger
//! instances instead of silently running forever.

use microrec_embedding::{MergePlan, ModelSpec, Precision};
use microrec_memsim::MemoryConfig;

use crate::alloc::{allocate_with, AllocStrategy};
use crate::error::PlacementError;
use crate::heuristic::SearchOutcome;
use crate::plan::PlanCost;

/// Largest model (table count) accepted by [`brute_force_search`].
pub const MAX_BRUTE_TABLES: usize = 12;

/// Exhaustively searches pair-merge plans for `model` on `config`.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] if `model` has more than
/// [`MAX_BRUTE_TABLES`] tables or the unmerged model cannot be placed.
pub fn brute_force_search(
    model: &ModelSpec,
    config: &MemoryConfig,
    precision: Precision,
    strategy: AllocStrategy,
) -> Result<SearchOutcome, PlacementError> {
    let n = model.num_tables();
    if n > MAX_BRUTE_TABLES {
        return Err(PlacementError::Infeasible(format!(
            "brute force is limited to {MAX_BRUTE_TABLES} tables, model has {n} \
             (the paper's point exactly — use the heuristic)"
        )));
    }

    let base = allocate_with(model, &MergePlan::none(), config, precision, strategy)?;
    let base_cost = base.cost(config, model.lookups_per_table);
    let mut best = SearchOutcome { plan: base, cost: base_cost, evaluated: 1 };
    let mut evaluated = 1usize;

    // Enumerate every subset by bitmask, keeping the even-sized ones, and
    // every perfect matching of each subset.
    for mask in 1u32..(1u32 << n) {
        if mask.count_ones() % 2 != 0 {
            continue;
        }
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        for_each_matching(&members, &mut |pairs| {
            let merge = MergePlan::pairs(pairs);
            if let Ok(plan) = allocate_with(model, &merge, config, precision, strategy) {
                evaluated += 1;
                let cost = plan.cost(config, model.lookups_per_table);
                if cost.better_than(&best.cost) {
                    best = SearchOutcome { plan, cost, evaluated };
                }
            }
        });
    }
    best.evaluated = evaluated;
    Ok(best)
}

/// Parallel variant of [`brute_force_search`]: the bitmask space is split
/// across `threads` workers and the per-worker winners are merged with the
/// sequential tie-break (first strictly-better plan in enumeration order),
/// so the returned [`SearchOutcome`] is identical to the sequential one.
///
/// # Errors
///
/// Returns [`PlacementError::Infeasible`] under the same conditions as
/// [`brute_force_search`].
pub fn brute_force_search_parallel(
    model: &ModelSpec,
    config: &MemoryConfig,
    precision: Precision,
    strategy: AllocStrategy,
    threads: usize,
) -> Result<SearchOutcome, PlacementError> {
    let n = model.num_tables();
    if n > MAX_BRUTE_TABLES {
        return Err(PlacementError::Infeasible(format!(
            "brute force is limited to {MAX_BRUTE_TABLES} tables, model has {n} \
             (the paper's point exactly — use the heuristic)"
        )));
    }

    let base = allocate_with(model, &MergePlan::none(), config, precision, strategy)?;
    let base_cost = base.cost(config, model.lookups_per_table);

    let masks: Vec<u32> = (1u32..(1u32 << n)).filter(|m| m.count_ones() % 2 == 0).collect();
    let threads = threads.max(1).min(masks.len().max(1));
    // Contiguous mask ranges keep every worker's candidates in enumeration
    // order; merging the workers in range order then reproduces the
    // sequential scan's first-strictly-better-wins semantics exactly.
    type Candidate = (crate::plan::Plan, PlanCost);
    let locals: Vec<(Option<Candidate>, usize)> =
        microrec_par::par_chunks(masks.len(), threads, |_, range| {
            let mut best: Option<Candidate> = None;
            let mut evaluated = 0usize;
            for &mask in &masks[range] {
                let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
                for_each_matching(&members, &mut |pairs| {
                    let merge = MergePlan::pairs(pairs);
                    if let Ok(plan) = allocate_with(model, &merge, config, precision, strategy) {
                        evaluated += 1;
                        let cost = plan.cost(config, model.lookups_per_table);
                        let replace = match &best {
                            None => true,
                            Some((_, best_cost)) => cost.better_than(best_cost),
                        };
                        if replace {
                            best = Some((plan, cost));
                        }
                    }
                });
            }
            (best, evaluated)
        });

    // Merge exactly as the sequential scan would: a later candidate only
    // displaces an earlier one when strictly better.
    let mut best = SearchOutcome { plan: base, cost: base_cost, evaluated: 1 };
    for (local, evaluated) in locals {
        best.evaluated += evaluated;
        if let Some((plan, cost)) = local {
            if cost.better_than(&best.cost) {
                best.plan = plan;
                best.cost = cost;
            }
        }
    }
    Ok(best)
}

/// Calls `f` with every perfect matching of `items` (which must have even
/// length).
fn for_each_matching(items: &[usize], f: &mut impl FnMut(&[(usize, usize)])) {
    let mut pairs = Vec::with_capacity(items.len() / 2);
    let mut pool: Vec<usize> = items.to_vec();
    recurse(&mut pool, &mut pairs, f);
}

fn recurse(
    pool: &mut [usize],
    pairs: &mut Vec<(usize, usize)>,
    f: &mut impl FnMut(&[(usize, usize)]),
) {
    if pool.is_empty() {
        f(pairs);
        return;
    }
    // Fix the first element; pair it with each other element in turn.
    let first = pool[0];
    for k in 1..pool.len() {
        let partner = pool[k];
        let mut rest: Vec<usize> =
            pool.iter().copied().filter(|&x| x != first && x != partner).collect();
        pairs.push((first, partner));
        recurse(&mut rest, pairs, f);
        pairs.pop();
    }
}

/// Ratio of heuristic cost to brute-force-optimal cost (≥ 1.0) for latency.
///
/// A value of 1.0 means the heuristic found an equally good solution.
#[must_use]
pub fn optimality_gap(heuristic: &PlanCost, optimal: &PlanCost) -> f64 {
    if optimal.lookup_latency.is_zero() {
        return 1.0;
    }
    heuristic.lookup_latency.as_ns() / optimal.lookup_latency.as_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{heuristic_search, HeuristicOptions};
    use microrec_embedding::TableSpec;

    fn toy_model(rows: &[u64]) -> ModelSpec {
        ModelSpec::new(
            "toy",
            rows.iter().enumerate().map(|(i, &r)| TableSpec::new(format!("t{i}"), r, 4)).collect(),
            vec![16],
            1,
        )
    }

    /// A cramped config: 3 DRAM channels, no on-chip, so merging matters.
    fn cramped() -> MemoryConfig {
        let mut c = MemoryConfig::fpga_without_hbm(3);
        c.banks.retain(|b| b.id.kind.is_dram());
        c
    }

    #[test]
    fn matching_enumeration_counts() {
        let mut count = 0;
        for_each_matching(&[0, 1, 2, 3], &mut |_| count += 1);
        assert_eq!(count, 3, "4 elements have 3 perfect matchings");
        let mut count = 0;
        for_each_matching(&[0, 1, 2, 3, 4, 5], &mut |_| count += 1);
        assert_eq!(count, 15, "6 elements have 15 perfect matchings");
    }

    #[test]
    fn matchings_are_valid_pairings() {
        for_each_matching(&[3, 5, 7, 9], &mut |pairs| {
            let mut flat: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
            flat.sort_unstable();
            assert_eq!(flat, vec![3, 5, 7, 9]);
        });
    }

    #[test]
    fn brute_force_finds_merging_when_it_helps() {
        // 5 equal tables on 3 channels: unmerged needs 2 rounds; merging one
        // pair (or two) reaches 1 round.
        let model = toy_model(&[100, 100, 100, 100, 100]);
        let out = brute_force_search(&model, &cramped(), Precision::F32, AllocStrategy::RoundRobin)
            .unwrap();
        assert_eq!(out.cost.dram_rounds, 1);
        assert!(out.plan.merge.tables_eliminated() >= 2);
        assert!(out.evaluated > 10);
    }

    #[test]
    fn heuristic_matches_brute_force_on_small_instances() {
        // The paper's near-optimality claim, verified on several instances.
        for rows in [
            &[100u64, 150, 200, 250, 300, 350][..],
            &[10, 20, 5000, 6000, 30][..],
            &[400, 400, 400, 400][..],
            &[100, 100, 100, 100, 100, 100, 100][..],
        ] {
            let model = toy_model(rows);
            let brute =
                brute_force_search(&model, &cramped(), Precision::F32, AllocStrategy::RoundRobin)
                    .unwrap();
            let heur =
                heuristic_search(&model, &cramped(), Precision::F32, &HeuristicOptions::default())
                    .unwrap();
            let gap = optimality_gap(&heur.cost, &brute.cost);
            assert!(
                gap <= 1.25,
                "heuristic {:.1} ns vs optimal {:.1} ns on {rows:?}",
                heur.cost.lookup_latency.as_ns(),
                brute.cost.lookup_latency.as_ns()
            );
            assert!(
                heur.evaluated < brute.evaluated || brute.evaluated <= 2,
                "heuristic must explore far fewer solutions"
            );
        }
    }

    #[test]
    fn parallel_brute_force_matches_sequential() {
        for rows in [
            &[100u64, 150, 200, 250, 300, 350][..],
            &[10, 20, 5000, 6000, 30][..],
            &[100, 100, 100, 100, 100][..],
        ] {
            let model = toy_model(rows);
            let seq =
                brute_force_search(&model, &cramped(), Precision::F32, AllocStrategy::RoundRobin)
                    .unwrap();
            for threads in [1usize, 2, 4, 9] {
                let par = brute_force_search_parallel(
                    &model,
                    &cramped(),
                    Precision::F32,
                    AllocStrategy::RoundRobin,
                    threads,
                )
                .unwrap();
                assert_eq!(par.plan, seq.plan, "{rows:?} threads={threads}");
                assert_eq!(par.cost, seq.cost);
                assert_eq!(par.evaluated, seq.evaluated);
            }
        }
    }

    #[test]
    fn parallel_brute_force_refuses_large_models() {
        assert!(matches!(
            brute_force_search_parallel(
                &ModelSpec::small_production(),
                &MemoryConfig::u280(),
                Precision::F32,
                AllocStrategy::RoundRobin,
                4,
            ),
            Err(PlacementError::Infeasible(_))
        ));
    }

    #[test]
    fn brute_force_refuses_large_models() {
        let model = ModelSpec::small_production();
        assert!(matches!(
            brute_force_search(
                &model,
                &MemoryConfig::u280(),
                Precision::F32,
                AllocStrategy::RoundRobin
            ),
            Err(PlacementError::Infeasible(_))
        ));
    }

    #[test]
    fn optimality_gap_math() {
        use microrec_memsim::SimTime;
        let opt = PlanCost {
            lookup_latency: SimTime::from_ns(100.0),
            storage_bytes: 1,
            dram_rounds: 1,
            tables_in_dram: 1,
            tables_on_chip: 0,
        };
        let mut h = opt;
        h.lookup_latency = SimTime::from_ns(110.0);
        assert!((optimality_gap(&h, &opt) - 1.1).abs() < 1e-9);
        assert!((optimality_gap(&opt, &opt) - 1.0).abs() < 1e-9);
    }
}
