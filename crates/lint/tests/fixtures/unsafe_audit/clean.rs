//! The canonical fix: a written SAFETY argument at the site.

pub fn first(values: &[u32]) -> u32 {
    assert!(!values.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *values.as_ptr() }
}
