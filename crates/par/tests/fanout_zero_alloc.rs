//! Proves the fan-out/fan-in join is allocation-free at steady state:
//! after construction, dispatching items over the lanes, parking early
//! arrivals in the reorder buffer, and re-emitting them in order never
//! touches the global allocator.
//!
//! A single `#[test]` keeps the process to one test thread, so the
//! counting allocator's delta is attributable to the code under test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator and
// only adds a relaxed atomic increment, so `GlobalAlloc`'s contract holds
// exactly as it does for `System` itself.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; we pass the
    // layout through to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller gave us, forwarded to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with this
    // layout — which means it came from `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` pair is valid for `System` per the above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; all three
    // arguments are forwarded to `System` untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` was allocated by `System` with `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn reorder_buffer_and_join_never_allocate_at_steady_state() {
    use microrec_par::{FanIn, FanOut, ReorderBuffer, SpscRing};

    // Construction allocates (slot array); steady state must not.
    let mut buf: ReorderBuffer<u64> = ReorderBuffer::new(8);

    // Warm-up lap, then park/release cycles with an always-out-of-order
    // arrival pattern (insert descending, take ascending).
    for i in 0..8u64 {
        buf.insert(i).unwrap();
        assert!(buf.take(i).is_some());
    }
    let before = allocation_count();
    for round in 0..10_000u64 {
        let base = round * 8;
        for k in (0..8u64).rev() {
            buf.insert(base + k).unwrap();
        }
        for k in 0..8u64 {
            assert_eq!(buf.take(base + k), Some(base + k));
        }
        assert!(buf.is_empty());
    }
    assert_eq!(allocation_count() - before, 0, "reorder buffer allocated at steady state");

    // A full fan-out → fan-in lap with lanes running ahead of their
    // turn, exercising try_push dispatch, the eager drain into the
    // reorder buffer, and in-order emission.
    let rings: Vec<Arc<SpscRing<u64>>> = (0..3).map(|_| Arc::new(SpscRing::new(4))).collect();
    let mut out = FanOut::new(rings.clone(), Vec::new());
    let mut join = FanIn::new(rings, Vec::new(), 0, 1, 8);
    // Warm-up lap.
    for i in 0..6u64 {
        out.try_push(i).unwrap();
    }
    for i in 0..6u64 {
        assert_eq!(join.pop(), Some(i));
    }
    let before = allocation_count();
    let mut next_in = 6u64;
    let mut next_out = 6u64;
    while next_out < 30_006 {
        while next_in < 30_006 && !out.would_block() {
            out.try_push(next_in).unwrap();
            next_in += 1;
        }
        assert_eq!(join.pop(), Some(next_out));
        next_out += 1;
    }
    assert_eq!(allocation_count() - before, 0, "fan-out/fan-in lap allocated at steady state");
}
