#![forbid(unsafe_code)]
//! CLI for `microrec-lint`.
//!
//! ```text
//! cargo run -p microrec-lint -- [--root DIR] [--config FILE] [--json] [--deny-all] [--quiet]
//! cargo run -p microrec-lint -- --explain <lint-id>
//! ```
//!
//! Exit codes: `0` clean (or only tolerated warns), `1` lint failure,
//! `2` usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use microrec_lint::{count_by_lint, explain, load_config, render_json, run, Severity, LINT_DOCS};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    quiet: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny_all: false,
        quiet: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--json" => args.json = true,
            "--deny-all" | "-D" => args.deny_all = true,
            "--quiet" | "-q" => args.quiet = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a lint id")?);
            }
            "--help" | "-h" => return Err(String::from(
                "usage: microrec-lint [--root DIR] [--config FILE] [--json] [--deny-all] [--quiet]\n       microrec-lint --explain <lint-id>",
            )),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn print_explain(id: &str) -> ExitCode {
    let Some(doc) = explain(id) else {
        let known: Vec<&str> = LINT_DOCS.iter().map(|d| d.id).collect();
        eprintln!("unknown lint id `{id}`; known ids: {}", known.join(", "));
        return ExitCode::from(2);
    };
    println!("{}", doc.id);
    println!("  invariant: {}", doc.invariant);
    println!("  rationale: {}", doc.rationale);
    if doc.allow_example.is_empty() {
        println!("  allow:     not allowable (always enforced)");
    } else {
        println!("  allow:     {}", doc.allow_example);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    if let Some(id) = &args.explain {
        return print_explain(id);
    }
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = match load_config(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("microrec-lint: cannot load {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match run(&args.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("microrec-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", render_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if !args.quiet {
            let by_lint = count_by_lint(&report.diagnostics);
            let breakdown: Vec<String> =
                by_lint.iter().map(|(lint, n)| format!("{lint}: {n}")).collect();
            let deny = report.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count();
            println!(
                "microrec-lint: {} files scanned, {} diagnostics ({} deny), {} suppressed by `lint: allow`{}",
                report.files_scanned,
                report.diagnostics.len(),
                deny,
                report.suppressed,
                if breakdown.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", breakdown.join(", "))
                },
            );
        }
    }

    if report.failing(args.deny_all) > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
