//! Randomized numeric tests for the DNN substrate, driven by a seeded RNG
//! so every case is reproducible (rerun with the printed seed on failure).

use microrec_rng::Rng;

use microrec_dnn::{
    gemm_blocked, gemm_naive, Activation, DenseLayer, Matrix, Mlp, PackedMlp, QuantizedMlp,
    ScratchArena, Q16, Q32,
};

/// Blocked GEMM equals the naive kernel on random shapes and values.
#[test]
fn blocked_equals_naive() {
    let mut rng = Rng::seed_from_u64(0xB10C);
    for case in 0..48 {
        let m = rng.gen_range_usize(1, 40);
        let k = rng.gen_range_usize(1, 40);
        let n = rng.gen_range_usize(1, 40);
        let salt = rng.gen_range_f32(0.0, 100.0);
        let f = |r: usize, c: usize, shift: usize| {
            let x = (r * 31 + c * 17 + shift) as f32 + salt;
            (x * 0.01).sin() * 0.5
        };
        let a = Matrix::from_fn(m, k, |r, c| f(r, c, 0));
        let b = Matrix::from_fn(k, n, |r, c| f(r, c, 1000));
        let c1 = gemm_naive(&a, &b).unwrap();
        let c2 = gemm_blocked(&a, &b).unwrap();
        for (x, y) in c1.as_slice().iter().zip(c2.as_slice()) {
            assert!((x - y).abs() < 1e-4 * k as f32, "case {case} ({m}x{k}x{n})");
        }
    }
}

/// Q-format multiply error is bounded by format resolution for in-range
/// operands.
#[test]
fn fixed_mul_error_bounds() {
    let mut rng = Rng::seed_from_u64(0xF1D0);
    for _ in 0..2000 {
        let a = rng.gen_range_f32(-1.9, 1.9);
        let b = rng.gen_range_f32(-1.9, 1.9);
        let exact = f64::from(a) * f64::from(b);
        let q16 = (Q16::from_f32(a) * Q16::from_f32(b)).to_f32();
        assert!((f64::from(q16) - exact).abs() < 8.0 / 8192.0, "Q16 {a} * {b}");
        let q32 = (Q32::from_f32(a) * Q32::from_f32(b)).to_f32();
        assert!((f64::from(q32) - exact).abs() < 8.0 / 8_388_608.0, "Q32 {a} * {b}");
    }
}

/// Fixed-point addition is exact (no rounding) while in range.
#[test]
fn fixed_add_is_exact() {
    let mut rng = Rng::seed_from_u64(0xADD);
    for _ in 0..2000 {
        let araw = rng.gen_range_u64(0, 16_000) as i16 - 8000;
        let braw = rng.gen_range_u64(0, 16_000) as i16 - 8000;
        let a = Q16::from_raw(araw);
        let b = Q16::from_raw(braw);
        assert_eq!((a + b).to_raw(), araw.saturating_add(braw));
    }
}

/// Dense-layer forward is linear: f(x+y) = f(x) + f(y) for the identity
/// activation with zero bias.
#[test]
fn dense_layer_linearity() {
    let mut rng = Rng::seed_from_u64(0x11EA);
    let w = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32 * 0.1).cos() * 0.3);
    let layer = DenseLayer::new(w, vec![0.0; 4], Activation::Identity).unwrap();
    for _ in 0..200 {
        let x: Vec<f32> = (0..8).map(|_| rng.gen_range_f32(-0.5, 0.5)).collect();
        let y: Vec<f32> = (0..8).map(|_| rng.gen_range_f32(-0.5, 0.5)).collect();
        let fx = layer.forward_vec(&x).unwrap();
        let fy = layer.forward_vec(&y).unwrap();
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let fxy = layer.forward_vec(&xy).unwrap();
        for i in 0..4 {
            assert!((fxy[i] - fx[i] - fy[i]).abs() < 1e-4);
        }
    }
}

/// Quantized inference error decreases (weakly) with bit width on random
/// networks.
#[test]
fn quantization_error_ordering() {
    for seed in 0..20u64 {
        let mlp = Mlp::top_mlp(16, &[32, 8], seed * 37 % 1000).unwrap();
        let cal: Vec<Vec<f32>> = (0..6)
            .map(|i| (0..16).map(|j| (((i * 16 + j) as f32) * 0.29).sin() * 0.7).collect())
            .collect();
        let q6 = QuantizedMlp::quantize(&mlp, 6, &cal).unwrap();
        let q16 = QuantizedMlp::quantize(&mlp, 16, &cal).unwrap();
        let sample = &cal[0];
        let reference = mlp.predict_ctr(sample).unwrap();
        let e6 = (q6.predict_ctr(sample).unwrap() - reference).abs();
        let e16 = (q16.predict_ctr(sample).unwrap() - reference).abs();
        assert!(e16 <= e6 + 1e-4, "seed {seed}: e16 {e16} vs e6 {e6}");
    }
}

/// CTR predictions are always probabilities, at every precision.
#[test]
fn ctr_is_probability() {
    let mut rng = Rng::seed_from_u64(0xC12);
    for seed in 0..64u64 {
        let mlp = Mlp::top_mlp(8, &[16], seed * 29 % 512).unwrap();
        let scale = rng.gen_range_f32(0.0, 2.0);
        let x: Vec<f32> = (0..8).map(|i| ((i as f32) * 0.9).sin() * scale).collect();
        for ctr in [
            mlp.predict_ctr(&x).unwrap(),
            mlp.predict_ctr_quantized::<Q16>(&x).unwrap(),
            mlp.predict_ctr_quantized::<Q32>(&x).unwrap(),
        ] {
            assert!((0.0..=1.0).contains(&ctr), "ctr {ctr}");
        }
    }
}

/// The packed batched path agrees bit-for-bit with the sequential forward
/// pass on random networks, batch sizes, and precisions.
#[test]
fn packed_batch_bitwise_equals_sequential() {
    let mut rng = Rng::seed_from_u64(0xBA7C);
    for case in 0..12 {
        let input = rng.gen_range_usize(4, 48);
        let hidden = [rng.gen_range_usize(4, 64) as u32, rng.gen_range_usize(2, 32) as u32];
        let mlp = Mlp::top_mlp(input as u32, &hidden, rng.gen_range_u64(0, 1 << 20)).unwrap();
        let batch = rng.gen_range_usize(1, 20);
        let raw: Vec<f32> = (0..batch * input).map(|_| rng.gen_range_f32(-0.8, 0.8)).collect();

        let packed: PackedMlp<f32> = PackedMlp::pack(&mlp);
        let mut arena = ScratchArena::new();
        let out = packed.forward_batch_into(&raw, batch, &mut arena).unwrap().to_vec();
        for (i, item) in raw.chunks_exact(input).enumerate() {
            let single = mlp.forward::<f32>(item).unwrap();
            assert_eq!(out[i].to_bits(), single[0].to_bits(), "case {case} item {i}");
        }

        let q: Vec<Q16> = raw.iter().map(|&v| Q16::from_f32(v)).collect();
        let packed: PackedMlp<Q16> = PackedMlp::pack(&mlp);
        let mut arena = ScratchArena::new();
        let out = packed.forward_batch_into(&q, batch, &mut arena).unwrap().to_vec();
        for (i, item) in q.chunks_exact(input).enumerate() {
            let single = mlp.forward::<Q16>(item).unwrap();
            assert_eq!(out[i], single[0], "Q16 case {case} item {i}");
        }
    }
}
