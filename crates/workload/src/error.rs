//! Error types for workload generation.

use std::error::Error;
use std::fmt;

/// Errors returned by workload generators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A generator was configured with invalid parameters.
    InvalidConfig(String),
    /// Statistics were requested over an empty sample set.
    NoSamples,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidConfig(why) => write!(f, "invalid workload config: {why}"),
            WorkloadError::NoSamples => write!(f, "no latency samples to summarize"),
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(WorkloadError::InvalidConfig("bad rate".into()).to_string().contains("bad rate"));
        assert!(WorkloadError::NoSamples.to_string().contains("samples"));
    }
}
