//! End-to-end tests of the DLRM-style bottom-MLP model family (Figure 1's
//! dense branch — Facebook's variant, which the paper's own production
//! models omit but its benchmark comparisons reference).

use microrec_core::MicroRec;
use microrec_cpu::CpuReferenceEngine;
use microrec_embedding::{synthetic_dense_features, ModelSpec, Precision};
use microrec_workload::{QueryGenConfig, QueryGenerator};

#[test]
fn spec_shape_accounting() {
    let model = ModelSpec::dlrm_with_bottom(8, 16);
    model.validate().unwrap();
    assert!(model.has_bottom_mlp());
    assert_eq!(model.dense_output_dim(), 64);
    // 8 tables x dim 16 x 4 lookups + bottom output 64.
    assert_eq!(model.feature_len(), 8 * 16 * 4 + 64);
    // Bottom MLP flops are counted.
    let plain = ModelSpec::dlrm_rmc2(8, 16);
    assert!(model.flops_per_item() > plain.flops_per_item());
}

#[test]
fn validation_rejects_bottom_without_dense() {
    let mut model = ModelSpec::dlrm_with_bottom(4, 8);
    model.dense_dim = 0;
    assert!(model.validate().is_err());
}

#[test]
fn dense_features_are_deterministic_and_query_sensitive() {
    let q1 = vec![1u64, 2, 3];
    let q2 = vec![1u64, 2, 4];
    assert_eq!(synthetic_dense_features(&q1, 13), synthetic_dense_features(&q1, 13));
    assert_ne!(synthetic_dense_features(&q1, 13), synthetic_dense_features(&q2, 13));
    assert_eq!(synthetic_dense_features(&q1, 13).len(), 13);
    for v in synthetic_dense_features(&q1, 13) {
        assert!((-1.0..1.0).contains(&v));
    }
}

#[test]
fn engines_agree_with_bottom_mlp() {
    let model = ModelSpec::dlrm_with_bottom(6, 8);
    let cpu = CpuReferenceEngine::build(&model, 77).unwrap();
    let mut fpga =
        MicroRec::builder(model.clone()).precision(Precision::Fixed32).seed(77).build().unwrap();
    let mut gen = QueryGenerator::new(&model, QueryGenConfig::default()).unwrap();
    for q in gen.next_batch(15) {
        let reference = cpu.predict(&q).unwrap();
        let quantized = fpga.predict(&q).unwrap();
        assert!(
            (reference - quantized).abs() < 2e-2,
            "bottom-MLP engines disagree: {quantized} vs {reference}"
        );
    }
}

#[test]
fn bottom_stage_appears_in_pipeline_without_hurting_throughput() {
    let model = ModelSpec::dlrm_with_bottom(8, 16);
    let engine = MicroRec::builder(model.clone()).seed(3).build().unwrap();
    let names: Vec<&str> = engine.pipeline().stages().iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"bottom.compute"), "{names:?}");
    // The (512,256,64) bottom stack over 13 features is tiny next to the
    // top MLP: it must not become the initiation interval.
    assert!(engine.pipeline().bottleneck() != "bottom.compute");

    let plain = MicroRec::builder(ModelSpec::dlrm_rmc2(8, 16)).seed(3).build().unwrap();
    assert!(engine.latency() > plain.latency(), "bottom stage adds latency");
}

#[test]
fn dense_path_changes_predictions() {
    // Two queries with identical sparse rows except one index must differ
    // through the dense path as well (dense features derive from the whole
    // query).
    let model = ModelSpec::dlrm_with_bottom(4, 8);
    let cpu = CpuReferenceEngine::build(&model, 5).unwrap();
    let q1 = vec![10u64; 16];
    let mut q2 = q1.clone();
    q2[15] = 11;
    assert_ne!(cpu.predict(&q1).unwrap(), cpu.predict(&q2).unwrap());
}
