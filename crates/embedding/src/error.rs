//! Error types for the embedding substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by embedding-table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmbeddingError {
    /// A row index was outside a table.
    IndexOutOfRange {
        /// Name of the table.
        table: String,
        /// Offending row index.
        index: u64,
        /// Number of rows in the table.
        rows: u64,
    },
    /// A query supplied the wrong number of indices for the model.
    ArityMismatch {
        /// Indices expected (one per sparse feature / logical table).
        expected: usize,
        /// Indices supplied.
        actual: usize,
    },
    /// An output buffer had the wrong length.
    BufferSizeMismatch {
        /// Required length in elements.
        expected: usize,
        /// Supplied length in elements.
        actual: usize,
    },
    /// Materializing a table (e.g. a Cartesian product) would exceed the
    /// configured size limit.
    TooLargeToMaterialize {
        /// Name of the table.
        table: String,
        /// Bytes the materialization would need.
        bytes: u64,
        /// The configured limit.
        limit: u64,
    },
    /// A cold-tier read or write against the file-backed row store failed.
    ///
    /// Carries the OS error text rather than the `std::io::Error` itself so
    /// the enum stays `Clone + PartialEq + Eq` (serving workers clone errors
    /// into per-request results).
    ColdTierIo {
        /// Name of the table being served from the cold tier.
        table: String,
        /// What the I/O layer reported.
        detail: String,
    },
    /// A Cartesian product was requested over fewer than two tables.
    DegenerateProduct,
    /// A merge plan referenced a logical table that does not exist or used
    /// one twice.
    InvalidMergePlan(String),
}

impl fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingError::IndexOutOfRange { table, index, rows } => {
                write!(f, "index {index} out of range for table `{table}` with {rows} rows")
            }
            EmbeddingError::ArityMismatch { expected, actual } => {
                write!(f, "query supplied {actual} indices, model expects {expected}")
            }
            EmbeddingError::BufferSizeMismatch { expected, actual } => {
                write!(f, "output buffer holds {actual} elements, {expected} required")
            }
            EmbeddingError::TooLargeToMaterialize { table, bytes, limit } => write!(
                f,
                "materializing `{table}` needs {bytes} bytes, over the {limit}-byte limit"
            ),
            EmbeddingError::ColdTierIo { table, detail } => {
                write!(f, "cold-tier I/O failure on table `{table}`: {detail}")
            }
            EmbeddingError::DegenerateProduct => {
                write!(f, "a cartesian product needs at least two source tables")
            }
            EmbeddingError::InvalidMergePlan(why) => write!(f, "invalid merge plan: {why}"),
        }
    }
}

impl Error for EmbeddingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EmbeddingError::IndexOutOfRange { table: "user_id".into(), index: 10, rows: 5 };
        assert!(e.to_string().contains("user_id"));
        assert!(e.to_string().contains("10"));
        let e = EmbeddingError::ArityMismatch { expected: 47, actual: 3 };
        assert!(e.to_string().contains("47"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<EmbeddingError>();
    }
}
