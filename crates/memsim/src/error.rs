//! Error types for the memory simulator.

use std::error::Error;
use std::fmt;

use crate::bank::BankId;

/// Errors returned by [`HybridMemory`](crate::HybridMemory) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemsimError {
    /// An allocation would exceed the capacity of a bank.
    CapacityExceeded {
        /// The bank the allocation targeted.
        bank: BankId,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available in the bank.
        available: u64,
    },
    /// An operation referenced a bank that does not exist in the
    /// configuration.
    UnknownBank(BankId),
    /// A region label was not found in the bank it was claimed to live in.
    UnknownRegion {
        /// The bank searched.
        bank: BankId,
        /// The missing region label.
        label: String,
    },
}

impl fmt::Display for MemsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemsimError::CapacityExceeded { bank, requested, available } => write!(
                f,
                "allocation of {requested} bytes exceeds bank {bank} (only {available} available)"
            ),
            MemsimError::UnknownBank(bank) => write!(f, "unknown memory bank {bank}"),
            MemsimError::UnknownRegion { bank, label } => {
                write!(f, "region `{label}` not found in bank {bank}")
            }
        }
    }
}

impl Error for MemsimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::MemoryKind;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = MemsimError::CapacityExceeded {
            bank: BankId::new(MemoryKind::Hbm, 3),
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100 bytes"));
        assert!(s.contains("HBM[3]"));
        let e = MemsimError::UnknownBank(BankId::new(MemoryKind::Ddr, 0));
        assert!(e.to_string().contains("DDR[0]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemsimError>();
    }
}
