#![forbid(unsafe_code)]
//! CLI for `microrec-lint`.
//!
//! ```text
//! cargo run -p microrec-lint -- [--root DIR] [--config FILE] [--json] [--deny-all] [--quiet]
//! ```
//!
//! Exit codes: `0` clean (or only tolerated warns), `1` lint failure,
//! `2` usage/configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

use microrec_lint::{count_by_lint, load_config, run, Severity};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny_all: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: PathBuf::from("."), config: None, json: false, deny_all: false, quiet: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--json" => args.json = true,
            "--deny-all" | "-D" => args.deny_all = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => return Err(String::from(
                "usage: microrec-lint [--root DIR] [--config FILE] [--json] [--deny-all] [--quiet]",
            )),
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let config = match load_config(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("microrec-lint: cannot load {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match run(&args.root, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("microrec-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.json {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in report.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.file),
                d.line,
                json_escape(&d.lint),
                d.severity,
                json_escape(&d.message),
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"suppressed\":{}}}",
            report.files_scanned, report.suppressed
        ));
        println!("{out}");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if !args.quiet {
            let by_lint = count_by_lint(&report.diagnostics);
            let breakdown: Vec<String> =
                by_lint.iter().map(|(lint, n)| format!("{lint}: {n}")).collect();
            let deny = report.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count();
            println!(
                "microrec-lint: {} files scanned, {} diagnostics ({} deny), {} suppressed by `lint: allow`{}",
                report.files_scanned,
                report.diagnostics.len(),
                deny,
                report.suppressed,
                if breakdown.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", breakdown.join(", "))
                },
            );
        }
    }

    if report.failing(args.deny_all) > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
