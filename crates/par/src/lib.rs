//! # microrec-par
//!
//! Rayon-style data parallelism built on `std::thread::scope`. The build
//! environment has no registry access, so this crate provides the small
//! slice of rayon's API the workspace actually uses — `join`, `scope`,
//! and indexed parallel maps with dynamic work stealing — with no
//! external dependencies and no global thread pool to configure. It also
//! vendors the bounded SPSC ring-buffer FIFO ([`SpscRing`]) that connects
//! the stages of the core crate's dataflow pipeline.
//!
//! All entry points degrade gracefully: with `threads <= 1` (or a single
//! available core) they run inline on the caller's thread, which keeps
//! single-threaded determinism tests trivially correct.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fanout;
mod spsc;

pub use fanout::{FanIn, FanOut, ReorderBuffer, Sequenced};
pub use spsc::{SpscPushError, SpscRing, DEFAULT_SPIN_ROUNDS};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Returns the number of worker threads to use by default: the machine's
/// available parallelism, clamped to at least 1.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Runs two closures, potentially in parallel, and returns both results.
///
/// The first closure runs on the calling thread; the second runs on a
/// scoped worker. Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("parallel closure panicked");
        (ra, rb)
    })
}

/// Maps `f` over `items`, running up to `threads` workers that pull items
/// dynamically from a shared atomic cursor (work stealing by index).
/// Results come back in input order.
///
/// With `threads <= 1` or fewer than two items, runs inline with no
/// thread spawns.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                if !local.is_empty() {
                    // lint: allow(transitive-panic) poisoned only if a sibling worker panicked; re-raising preserves fail-fast
                    out.lock().expect("result mutex poisoned").extend(local);
                }
            });
        }
    });

    // lint: allow(transitive-panic) poisoned only if a sibling worker panicked; re-raising preserves fail-fast
    let mut pairs = out.into_inner().expect("result mutex poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Splits `0..len` into at most `threads` contiguous chunks of
/// near-equal size and maps `f` over the `(start, end)` ranges in
/// parallel. Returns per-chunk results in range order.
///
/// Useful when the caller wants each worker to own a contiguous shard
/// (e.g. batch slices) rather than interleaved items.
pub fn par_chunks<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.min(len).max(1);
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    par_map(&ranges, threads, |i, r| f(i, r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64, 1000] {
            let got = par_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_actually_runs_concurrently_safe() {
        let counter = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        par_map(&items, 8, |_, _| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_chunks_partitions_exactly() {
        for len in [0usize, 1, 5, 7, 64, 100] {
            for threads in [1usize, 2, 3, 7, 16] {
                let ranges = par_chunks(len, threads, |_, r| r);
                let total: usize = ranges.iter().map(ExactSizeIterator::len).sum();
                assert_eq!(total, len, "len {len} threads {threads}");
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous shards");
                    assert!(!r.is_empty(), "no empty shard emitted");
                    next = r.end;
                }
            }
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, &x| x).is_empty());
        assert!(par_chunks(0, 8, |_, r| r).is_empty());
    }
}
