//! A justified unwrap: the invariant is established one line above.

pub fn serve(values: &[f32]) -> f32 {
    assert!(!values.is_empty());
    // lint: allow(no-panic-serving) emptiness checked by the assert above
    *values.first().unwrap()
}
