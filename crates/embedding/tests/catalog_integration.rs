//! Integration tests for the embedding substrate: multi-way merges,
//! production-scale catalogs, and materialized/procedural equivalence.

use microrec_embedding::cartesian::{materialize_product, merged_row_index};
use microrec_embedding::{
    synthetic_model, Catalog, EmbeddingTable, MergePlan, ModelSpec, Precision,
    SyntheticModelConfig, TableSpec,
};

#[test]
fn three_way_merge_group_is_transparent() {
    let tables: Vec<EmbeddingTable> = (0..5)
        .map(|i| {
            EmbeddingTable::procedural(TableSpec::new(format!("t{i}"), 4 + i, 2 + i as u32), i)
        })
        .collect();
    let plan = MergePlan { groups: vec![vec![0, 2, 4]] };
    let merged = Catalog::from_tables(tables.clone(), &plan).unwrap();
    let unmerged = Catalog::from_tables(tables, &MergePlan::none()).unwrap();
    assert_eq!(merged.physical_tables().len(), 3);
    for indices in [[0u64, 0, 0, 0, 0], [3, 4, 5, 6, 7], [1, 2, 3, 4, 5]] {
        assert_eq!(merged.gather_vec(&indices).unwrap(), unmerged.gather_vec(&indices).unwrap());
    }
    // Resolution count drops by two.
    assert_eq!(merged.resolve(&[0; 5]).unwrap().len(), 3);
}

#[test]
fn production_catalog_resolves_at_scale() {
    let model = ModelSpec::large_production();
    let catalog = Catalog::build(&model, &MergePlan::none(), 9).unwrap();
    // The 30M-row giant is procedural: row reads at extreme indices work.
    let indices: Vec<u64> = model.tables.iter().map(|t| t.rows - 1).collect();
    let features = catalog.gather_vec(&indices).unwrap();
    assert_eq!(features.len(), 876);
    assert!(features.iter().all(|v| (-1.0..1.0).contains(v)));
}

#[test]
fn merged_index_agrees_with_materialized_product_at_scale() {
    // A realistic merge-candidate pair from the small model.
    let a = EmbeddingTable::procedural(TableSpec::new("cand00", 660, 4), 1);
    let b = EmbeddingTable::procedural(TableSpec::new("cand09", 380, 4), 2);
    let product = materialize_product(&[&a, &b], u64::MAX).unwrap();
    assert_eq!(product.rows(), 660 * 380);
    for (i, j) in [(0u64, 0u64), (659, 379), (123, 77), (400, 200)] {
        let merged = merged_row_index(&[660, 380], &[i, j]).unwrap();
        let mut expect = a.row(i).unwrap();
        expect.extend(b.row(j).unwrap());
        assert_eq!(product.row(merged).unwrap(), expect);
    }
}

#[test]
fn materialized_tables_can_back_a_catalog() {
    let spec = TableSpec::new("m", 10, 3);
    let values: Vec<f32> = (0..30).map(|i| i as f32 / 30.0).collect();
    let table = EmbeddingTable::materialized(spec, values).unwrap();
    let other = EmbeddingTable::procedural(TableSpec::new("p", 5, 2), 3);
    let catalog = Catalog::from_tables(vec![table, other], &MergePlan::none()).unwrap();
    let out = catalog.gather_vec(&[2, 1]).unwrap();
    assert_eq!(&out[..3], &[6.0 / 30.0, 7.0 / 30.0, 8.0 / 30.0]);
}

#[test]
fn synthetic_models_build_catalogs() {
    let model = synthetic_model(&SyntheticModelConfig {
        tables: 30,
        target_bytes: 50_000_000,
        ..Default::default()
    })
    .unwrap();
    let catalog = Catalog::build(&model, &MergePlan::none(), 4).unwrap();
    let indices: Vec<u64> = model.tables.iter().map(|t| t.rows / 2).collect();
    let features = catalog.gather_vec(&indices).unwrap();
    assert_eq!(features.len() as u32, model.feature_len() / model.lookups_per_table);
}

#[test]
fn storage_factor_matches_hand_computation_on_production_plan() {
    let model = ModelSpec::small_production();
    // Merge the 5 candidate pairs (the cand** tables sit at indices
    // 29..=38 in the preset's declaration order).
    let pairs = [(38usize, 29usize), (37, 30), (36, 31), (35, 32), (34, 33)];
    let plan = MergePlan::pairs(&pairs);
    let catalog = Catalog::build(&model, &plan, 0).unwrap();
    let factor = catalog.storage_factor(Precision::F32);
    assert!((1.02..1.05).contains(&factor), "storage factor {factor}");
}

#[test]
fn error_paths_are_consistent_between_merged_and_unmerged() {
    let model = ModelSpec::dlrm_rmc2(4, 4);
    let unmerged = Catalog::build(&model, &MergePlan::none(), 0).unwrap();
    let merged = Catalog::build(&model, &MergePlan::pairs(&[(0, 1)]), 0).unwrap();
    let bad = [0u64, 0, 0, u64::MAX];
    assert!(unmerged.resolve(&bad).is_err());
    assert!(merged.resolve(&bad).is_err());
    assert!(unmerged.gather_vec(&bad).is_err());
    assert!(merged.gather_vec(&bad).is_err());
}
