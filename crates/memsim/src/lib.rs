//! # microrec-memsim
//!
//! Deterministic timing simulator for the hybrid memory system MicroRec
//! (Jiang et al., MLSys 2021) runs on: 32 HBM2 pseudo-channels, 2 DDR4
//! channels, and on-chip BRAM/URAM banks of a Xilinx Alveo U280, plus the
//! 8-channel DDR4 system of the CPU baseline server.
//!
//! The simulator is a *substitute* for the physical memory of the paper's
//! testbed: it reproduces the quantities the paper's results depend on —
//! per-access latency as a function of payload size, per-channel
//! serialization ("DRAM access rounds"), inter-channel parallelism, and
//! capacity limits — with timing constants calibrated to the paper's own
//! published micro-measurements (see [`MemTiming`]).
//!
//! ## Example
//!
//! ```
//! use microrec_memsim::{BankId, HybridMemory, MemoryConfig, MemoryKind, ReadRequest};
//!
//! let mut mem = HybridMemory::new(MemoryConfig::u280());
//!
//! // Place one embedding table on each of three HBM pseudo-channels.
//! for i in 0..3 {
//!     mem.alloc(BankId::new(MemoryKind::Hbm, i), format!("table-{i}"), 4096)?;
//! }
//!
//! // One lookup per table: all three proceed in parallel -> one DRAM round.
//! let reqs: Vec<_> =
//!     (0..3).map(|i| ReadRequest::new(BankId::new(MemoryKind::Hbm, i), 64)).collect();
//! let timing = mem.parallel_read(&reqs)?;
//! assert_eq!(timing.max_reads_per_bank, 1);
//! # Ok::<(), microrec_memsim::MemsimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod cache;
mod config;
mod error;
mod hybrid;
mod rowstate;
mod sched;
mod stats;
mod time;
mod timing;

pub use bank::{Bank, BankId, MemoryKind, Region};
pub use cache::{CacheConfig, EntryCache};
pub use config::{BankSpec, MemoryConfig, GIB, MIB};
pub use error::MemsimError;
pub use hybrid::{BatchTiming, HybridMemory, ReadRequest};
pub use rowstate::{AddressedRead, RowPolicy, RowState};
pub use sched::{schedule_channel, BankRequest, DetailedTiming, ScheduleResult, SchedulerPolicy};
pub use stats::{AccessStats, BankStats};
pub use time::SimTime;
pub use timing::MemTiming;
