//! Placement search: Algorithm 1 on the production models, brute force on
//! a downscaled instance.

use std::time::Duration;

use microrec_bench::harness::{black_box, criterion_group, criterion_main, Criterion};
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_memsim::MemoryConfig;
use microrec_placement::{
    brute_force_search, heuristic_search, heuristic_search_parallel, AllocStrategy,
    HeuristicOptions,
};

fn bench_heuristic(c: &mut Criterion) {
    let config = MemoryConfig::u280();
    let mut group = c.benchmark_group("heuristic_search");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.sample_size(20);
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        group.bench_function(model.name.clone(), |b| {
            b.iter(|| {
                heuristic_search(
                    black_box(&model),
                    &config,
                    Precision::F32,
                    &HeuristicOptions::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parallel_search(c: &mut Criterion) {
    let config = MemoryConfig::u280();
    let model = ModelSpec::large_production();
    let mut group = c.benchmark_group("parallel_search");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_function(format!("large_{threads}_threads"), |b| {
            b.iter(|| {
                heuristic_search_parallel(
                    black_box(&model),
                    &config,
                    Precision::F32,
                    &HeuristicOptions::default(),
                    threads,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let model = ModelSpec::new(
        "toy8",
        (0..8).map(|i| TableSpec::new(format!("t{i}"), 100 + 50 * i as u64, 4)).collect(),
        vec![32],
        1,
    );
    let mut config = MemoryConfig::fpga_without_hbm(3);
    config.banks.retain(|b| b.id.kind.is_dram());
    let mut group = c.benchmark_group("brute_force");
    group.measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    group.sample_size(10);
    group.bench_function("8_tables_3_channels", |b| {
        b.iter(|| {
            brute_force_search(
                black_box(&model),
                &config,
                Precision::F32,
                AllocStrategy::RoundRobin,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_heuristic, bench_parallel_search, bench_brute_force);
criterion_main!(benches);
