//! Deterministic micro-batch forming.
//!
//! The serving runtime closes a micro-batch when it reaches `max_batch`
//! items **or** when the oldest queued request has waited `max_wait_us`,
//! whichever comes first. This module states that close rule as a pure
//! function over arrival timestamps, so it can be tested deterministically
//! (same seeded arrival stream ⇒ same batch boundaries) independent of
//! thread scheduling. The real-time queue
//! ([`BoundedQueue::pop_batch`](super::queue::BoundedQueue::pop_batch))
//! implements the same rule against the wall clock.

/// Knobs of the batch former.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFormerConfig {
    /// A batch closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// A batch closes once its oldest request has waited this long (µs).
    pub max_wait_us: u64,
}

/// Why a micro-batch closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClose {
    /// `max_batch` requests were available.
    Size,
    /// The oldest request hit its `max_wait_us` deadline.
    Deadline,
    /// The runtime is shutting down and drained the queue.
    Drain,
}

/// One planned micro-batch over an arrival trace: requests
/// `[start, end)` close together at `close_at_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedBatch {
    /// Index of the first request in the batch.
    pub start: usize,
    /// One past the last request in the batch.
    pub end: usize,
    /// Instant the batch closed, in trace microseconds.
    pub close_at_us: u64,
    /// Which rule closed the batch.
    pub close: BatchClose,
}

impl PlannedBatch {
    /// Number of requests in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the batch is empty (never produced by the planner).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Plans the micro-batch boundaries the close rule produces over a sorted
/// arrival trace (`arrivals_us[i]` = arrival instant of request `i` in
/// microseconds), assuming a worker is always free when a batch closes.
///
/// Deterministic: the same trace and config always produce the same plan.
/// The plan is an exact partition of the trace — every request lands in
/// exactly one batch, and no batch's oldest request waits longer than
/// `max_wait_us`.
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero (a batch must hold at least one
/// request).
#[must_use]
pub fn plan_batches(arrivals_us: &[u64], cfg: &BatchFormerConfig) -> Vec<PlannedBatch> {
    assert!(cfg.max_batch > 0, "max_batch must be at least 1");
    debug_assert!(arrivals_us.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
    let mut plan = Vec::new();
    let mut start = 0usize;
    while start < arrivals_us.len() {
        let deadline = arrivals_us[start].saturating_add(cfg.max_wait_us);
        let full_index = start + cfg.max_batch - 1;
        if full_index < arrivals_us.len() && arrivals_us[full_index] <= deadline {
            // The batch fills before the oldest request times out.
            plan.push(PlannedBatch {
                start,
                end: full_index + 1,
                close_at_us: arrivals_us[full_index],
                close: BatchClose::Size,
            });
            start = full_index + 1;
        } else {
            // Deadline close: everything that arrived by the deadline.
            let mut end = start + 1;
            while end < arrivals_us.len() && end - start < cfg.max_batch {
                if arrivals_us[end] > deadline {
                    break;
                }
                end += 1;
            }
            plan.push(PlannedBatch {
                start,
                end,
                close_at_us: deadline,
                close: BatchClose::Deadline,
            });
            start = end;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_rng::{Exp, Rng};

    fn poisson_trace_us(rate_per_sec: f64, n: usize, seed: u64) -> Vec<u64> {
        let exp = Exp::new(rate_per_sec).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = 0.0f64;
        (0..n)
            .map(|_| {
                t += exp.sample(&mut rng) * 1e6;
                t as u64
            })
            .collect()
    }

    fn check_invariants(arrivals: &[u64], cfg: &BatchFormerConfig, plan: &[PlannedBatch]) {
        // Exact partition, in order.
        let mut next = 0usize;
        for b in plan {
            assert_eq!(b.start, next, "batches must tile the trace");
            assert!(!b.is_empty(), "no empty batches");
            assert!(b.len() <= cfg.max_batch, "batch over max_batch");
            // Everything in the batch arrived by the close instant...
            assert!(arrivals[b.end - 1] <= b.close_at_us);
            // ...and the oldest request never waited more than max_wait.
            assert!(b.close_at_us <= arrivals[b.start] + cfg.max_wait_us);
            match b.close {
                BatchClose::Size => assert_eq!(b.len(), cfg.max_batch),
                BatchClose::Deadline => {
                    assert_eq!(b.close_at_us, arrivals[b.start] + cfg.max_wait_us);
                }
                BatchClose::Drain => panic!("planner never drains"),
            }
            next = b.end;
        }
        assert_eq!(next, arrivals.len(), "every request is batched");
    }

    #[test]
    fn same_seed_means_same_boundaries() {
        let cfg = BatchFormerConfig { max_batch: 16, max_wait_us: 2_000 };
        let a = plan_batches(&poisson_trace_us(10_000.0, 3_000, 7), &cfg);
        let b = plan_batches(&poisson_trace_us(10_000.0, 3_000, 7), &cfg);
        assert_eq!(a, b, "seeded arrivals must produce identical plans");
        let c = plan_batches(&poisson_trace_us(10_000.0, 3_000, 8), &cfg);
        assert_ne!(a, c, "a different seed should shift boundaries");
        check_invariants(&poisson_trace_us(10_000.0, 3_000, 7), &cfg, &a);
    }

    #[test]
    fn high_rate_closes_on_size() {
        // 1M QPS against a 10 ms window: batches fill long before the
        // deadline.
        let arrivals = poisson_trace_us(1_000_000.0, 2_000, 3);
        let cfg = BatchFormerConfig { max_batch: 32, max_wait_us: 10_000 };
        let plan = plan_batches(&arrivals, &cfg);
        check_invariants(&arrivals, &cfg, &plan);
        let size_closes = plan.iter().filter(|b| b.close == BatchClose::Size).count();
        assert!(
            size_closes as f64 > plan.len() as f64 * 0.9,
            "{size_closes}/{} size closes",
            plan.len()
        );
    }

    #[test]
    fn low_rate_closes_on_deadline() {
        // 100 QPS against a 2 ms window: the window expires with 1-2
        // requests nearly every time.
        let arrivals = poisson_trace_us(100.0, 500, 11);
        let cfg = BatchFormerConfig { max_batch: 32, max_wait_us: 2_000 };
        let plan = plan_batches(&arrivals, &cfg);
        check_invariants(&arrivals, &cfg, &plan);
        assert!(plan.iter().all(|b| b.close == BatchClose::Deadline));
        let mean: f64 =
            plan.iter().map(PlannedBatch::len).sum::<usize>() as f64 / plan.len() as f64;
        assert!(mean < 4.0, "mean batch {mean} should be tiny at 100 QPS");
    }

    #[test]
    fn burst_splits_into_full_batches() {
        // 100 simultaneous arrivals, max_batch 32: three size closes and a
        // deadline close for the remainder of 4.
        let arrivals = vec![5_000u64; 100];
        let cfg = BatchFormerConfig { max_batch: 32, max_wait_us: 1_000 };
        let plan = plan_batches(&arrivals, &cfg);
        check_invariants(&arrivals, &cfg, &plan);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[0].close, BatchClose::Size);
        assert_eq!(plan[2].close, BatchClose::Size);
        assert_eq!(plan[3].len(), 4);
        assert_eq!(plan[3].close, BatchClose::Deadline);
    }

    #[test]
    fn max_batch_one_degenerates_to_item_at_a_time() {
        let arrivals = poisson_trace_us(5_000.0, 100, 1);
        let cfg = BatchFormerConfig { max_batch: 1, max_wait_us: 1_000 };
        let plan = plan_batches(&arrivals, &cfg);
        check_invariants(&arrivals, &cfg, &plan);
        assert_eq!(plan.len(), 100);
        assert!(plan.iter().all(|b| b.close == BatchClose::Size));
    }

    #[test]
    fn empty_trace_plans_nothing() {
        let cfg = BatchFormerConfig { max_batch: 8, max_wait_us: 100 };
        assert!(plan_batches(&[], &cfg).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = plan_batches(&[1, 2], &BatchFormerConfig { max_batch: 0, max_wait_us: 100 });
    }
}
