//! Hybrid CPU+FPGA serving (DeepRecSys-style scheduling).
//!
//! Gupta et al. 2020a (§6's related work) maximize throughput under a
//! latency constraint by splitting query streams between CPUs and
//! accelerators. With both engines modelled here, the same idea is a small
//! router: queries go to the MicroRec pipeline while its backlog stays
//! bounded, and overflow spills to the batching CPU engine, which is happy
//! to trade latency for throughput. The tests show the crossover the
//! scheduling paper is about: below FPGA capacity the router sends
//! everything to the accelerator; past it, the CPU absorbs the overflow
//! and keeps the SLA hit rate from collapsing.

use microrec_cpu::CpuTimingModel;
use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;
use microrec_workload::{simulate_batched_serving, LatencyStats, WorkloadError};

use crate::engine::MicroRec;
use crate::serve::ServingReport;

/// Configuration of the hybrid router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Largest tolerated FPGA admission backlog before spilling to CPU.
    pub backlog_limit: SimTime,
    /// CPU batch size for spilled queries.
    pub cpu_batch: usize,
    /// CPU batch aggregation timeout.
    pub cpu_max_wait: SimTime,
    /// Steady-state hot-row-cache hit rate, when the engine fronts its
    /// embedding reads with a cache (e.g. the `lookup` bench's measured
    /// rate). `Some(h)` shrinks the modelled lookup stage via
    /// [`surviving_dram_fraction`]; `None` models the uncached engine.
    pub lookup_hit_rate: Option<f64>,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            backlog_limit: SimTime::from_ms(1.0),
            cpu_batch: 256,
            cpu_max_wait: SimTime::from_ms(10.0),
            lookup_hit_rate: None,
        }
    }
}

/// Expected fraction of a round-combined lookup's DRAM rounds that still
/// reach memory behind a hot-row cache with per-lookup hit rate
/// `hit_rate`: the paper's round combining issues one DRAM round for all
/// `tables` lookups together, so a round is saved only when every lookup
/// in it hits the cache (probability `hit_rate^tables` under independent
/// hits). DESIGN.md §9 derives this mapping.
#[must_use]
pub fn surviving_dram_fraction(hit_rate: f64, tables: usize) -> f64 {
    let h = hit_rate.clamp(0.0, 1.0);
    1.0 - h.powi(i32::try_from(tables).unwrap_or(i32::MAX))
}

/// Single-item fill latency with the cache model applied: the lookup
/// stage shrinks by the fraction of DRAM rounds the cache absorbs; the
/// MLP stages are unchanged.
fn cache_adjusted_fill(engine: &MicroRec, hit_rate: f64) -> SimTime {
    let lookup = engine.placement_cost().lookup_latency;
    let surviving = surviving_dram_fraction(hit_rate, engine.model().num_tables());
    let saved = SimTime::from_ns(lookup.as_ns() * (1.0 - surviving));
    engine.latency().saturating_sub(saved)
}

/// Outcome of a hybrid serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridReport {
    /// Combined response-time summary.
    pub combined: ServingReport,
    /// Fraction of queries served by the FPGA.
    pub fpga_fraction: f64,
}

/// Routes `arrivals` between `engine` (item-by-item pipeline) and the CPU
/// baseline (batched), then summarizes against `sla`.
///
/// # Examples
///
/// ```
/// use microrec_core::{simulate_hybrid_serving, HybridConfig, MicroRec};
/// use microrec_cpu::CpuTimingModel;
/// use microrec_embedding::ModelSpec;
/// use microrec_memsim::SimTime;
/// use microrec_workload::PoissonArrivals;
///
/// let model = ModelSpec::dlrm_rmc2(4, 4);
/// let engine = MicroRec::builder(model.clone()).build()?;
/// let trace = PoissonArrivals::new(10_000.0, 1).unwrap().take(2_000);
/// let report = simulate_hybrid_serving(
///     &engine,
///     &CpuTimingModel::aws_16vcpu(),
///     &model,
///     &HybridConfig::default(),
///     &trace,
///     SimTime::from_ms(25.0),
/// ).unwrap();
/// assert!(report.combined.sla_hit_rate > 0.99);
/// # Ok::<(), microrec_core::MicroRecError>(())
/// ```
///
/// # Errors
///
/// Returns [`WorkloadError::NoSamples`] for an empty trace.
pub fn simulate_hybrid_serving(
    engine: &MicroRec,
    cpu: &CpuTimingModel,
    model: &ModelSpec,
    config: &HybridConfig,
    arrivals: &[SimTime],
    sla: SimTime,
) -> Result<HybridReport, WorkloadError> {
    let ii = engine.pipeline().initiation_interval();
    let fill = match config.lookup_hit_rate {
        Some(h) => cache_adjusted_fill(engine, h),
        None => engine.latency(),
    };

    let mut fpga_next_slot = SimTime::ZERO;
    let mut fpga_latencies = Vec::new();
    let mut cpu_arrivals = Vec::new();
    for &arr in arrivals {
        let start = arr.max(fpga_next_slot);
        if start.saturating_sub(arr) <= config.backlog_limit {
            fpga_next_slot = start + ii;
            fpga_latencies.push((start + fill).saturating_sub(arr));
        } else {
            cpu_arrivals.push(arr);
        }
    }
    let cpu_latencies = simulate_batched_serving(
        &cpu_arrivals,
        config.cpu_batch,
        config.cpu_max_wait,
        cpu.total_time(model, config.cpu_batch as u64),
    );

    let fpga_count = fpga_latencies.len();
    let mut all = fpga_latencies;
    all.extend(cpu_latencies);
    let span = arrivals.last().copied().unwrap_or(SimTime::ZERO)
        + all.iter().copied().max().unwrap_or(SimTime::ZERO);
    let combined = ServingReport {
        latency: LatencyStats::from_samples(&all)?,
        tail: crate::serve::tail_percentiles(&all),
        sla_hit_rate: LatencyStats::sla_hit_rate(&all, sla),
        throughput: if span.is_zero() { f64::INFINITY } else { all.len() as f64 / span.as_secs() },
    };
    Ok(HybridReport { combined, fpga_fraction: fpga_count as f64 / arrivals.len() as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::simulate_microrec_serving;
    use microrec_embedding::Precision;
    use microrec_workload::PoissonArrivals;

    fn setup() -> (MicroRec, CpuTimingModel, ModelSpec) {
        let model = ModelSpec::small_production();
        let engine =
            MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().unwrap();
        (engine, CpuTimingModel::aws_16vcpu(), model)
    }

    #[test]
    fn below_capacity_everything_goes_to_the_fpga() {
        let (engine, cpu, model) = setup();
        let rate = engine.throughput_items_per_sec() * 0.5;
        let mut arrivals = PoissonArrivals::new(rate, 3).unwrap();
        let trace = arrivals.take(10_000);
        let report = simulate_hybrid_serving(
            &engine,
            &cpu,
            &model,
            &HybridConfig::default(),
            &trace,
            SimTime::from_ms(20.0),
        )
        .unwrap();
        assert!(report.fpga_fraction > 0.999, "fraction {}", report.fpga_fraction);
        assert!(report.combined.sla_hit_rate > 0.999);
    }

    #[test]
    fn overload_spills_to_cpu_and_preserves_sla() {
        let (engine, cpu, model) = setup();
        // Offer 8% above the FPGA's capacity — a spill the CPU (batch 256:
        // ~30k items/s under a 10 ms wait cap) can actually absorb. Much
        // beyond that no single CPU server helps, which is DeepRecSys's
        // own scaling argument for *fleets* of CPUs behind accelerators.
        let rate = engine.throughput_items_per_sec() * 1.08;
        let mut arrivals = PoissonArrivals::new(rate, 7).unwrap();
        // Long enough for the saturated FPGA-only queue to blow the SLA.
        let trace = arrivals.take(120_000);
        let sla = SimTime::from_ms(25.0);

        let fpga_only = simulate_microrec_serving(&engine, &trace, sla).unwrap();
        let hybrid =
            simulate_hybrid_serving(&engine, &cpu, &model, &HybridConfig::default(), &trace, sla)
                .unwrap();
        assert!(
            hybrid.fpga_fraction > 0.7 && hybrid.fpga_fraction < 0.999,
            "overflow should spill: {}",
            hybrid.fpga_fraction
        );
        assert!(
            hybrid.combined.sla_hit_rate > fpga_only.sla_hit_rate,
            "hybrid {} must beat saturated fpga-only {}",
            hybrid.combined.sla_hit_rate,
            fpga_only.sla_hit_rate
        );
        assert!(hybrid.combined.sla_hit_rate > 0.9, "{}", hybrid.combined.sla_hit_rate);
    }

    #[test]
    fn surviving_fraction_shape() {
        // No hits → every DRAM round survives; perfect hits → none do.
        assert!((surviving_dram_fraction(0.0, 8) - 1.0).abs() < 1e-12);
        assert!(surviving_dram_fraction(1.0, 8).abs() < 1e-12);
        // Monotonically decreasing in the hit rate, and more tables make
        // a fully-hit round rarer.
        assert!(surviving_dram_fraction(0.5, 8) > surviving_dram_fraction(0.9, 8));
        assert!(surviving_dram_fraction(0.9, 16) > surviving_dram_fraction(0.9, 2));
        // Out-of-range inputs clamp instead of going negative.
        assert!((surviving_dram_fraction(1.5, 4) - 0.0).abs() < 1e-12);
        assert!((surviving_dram_fraction(-0.5, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate_shrinks_fill_latency() {
        let (engine, cpu, model) = setup();
        let rate = engine.throughput_items_per_sec() * 0.5;
        let trace = PoissonArrivals::new(rate, 11).unwrap().take(5_000);
        let sla = SimTime::from_ms(20.0);
        let plain =
            simulate_hybrid_serving(&engine, &cpu, &model, &HybridConfig::default(), &trace, sla)
                .unwrap();
        let cached_cfg = HybridConfig { lookup_hit_rate: Some(0.95), ..HybridConfig::default() };
        let cached =
            simulate_hybrid_serving(&engine, &cpu, &model, &cached_cfg, &trace, sla).unwrap();
        assert!(
            cached.combined.latency.mean <= plain.combined.latency.mean,
            "cache-adjusted fill must not increase latency: {:?} vs {:?}",
            cached.combined.latency.mean,
            plain.combined.latency.mean
        );
        // A lossless cache model (hit rate 1.0 over every table) strictly
        // beats the uncached fill when the lookup stage is non-zero.
        let perfect_cfg = HybridConfig { lookup_hit_rate: Some(1.0), ..HybridConfig::default() };
        let perfect =
            simulate_hybrid_serving(&engine, &cpu, &model, &perfect_cfg, &trace, sla).unwrap();
        assert!(perfect.combined.latency.mean < plain.combined.latency.mean);
    }

    #[test]
    fn empty_trace_errors() {
        let (engine, cpu, model) = setup();
        assert!(matches!(
            simulate_hybrid_serving(
                &engine,
                &cpu,
                &model,
                &HybridConfig::default(),
                &[],
                SimTime::from_ms(1.0)
            ),
            Err(WorkloadError::NoSamples)
        ));
    }
}
