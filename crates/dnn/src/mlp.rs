//! The top MLP of the recommendation model (Figure 1).
//!
//! The paper's production models feed the concatenated embedding vector
//! into fully connected layers of (1024, 512, 256) hidden units and a
//! single sigmoid CTR neuron. [`Mlp::top_mlp`] builds exactly that shape
//! from a deterministic seed; the forward pass is generic over precision so
//! the same network runs at `f32` (CPU reference) and Q-format (FPGA
//! datapath).

use crate::error::DnnError;
use crate::fixed::FixedNum;
use crate::layer::{Activation, DenseLayer};
use crate::packed::PackedMlp;
use crate::scratch::ScratchArena;
use crate::tensor::Matrix;

/// A multi-layer perceptron.
///
/// # Examples
///
/// ```
/// use microrec_dnn::Mlp;
///
/// // The small production model's head: 352 -> 1024 -> 512 -> 256 -> 1.
/// let mlp = Mlp::top_mlp(352, &[1024, 512, 256], 42)?;
/// let features = vec![0.1f32; 352];
/// let ctr = mlp.predict_ctr(&features)?;
/// assert!(ctr > 0.0 && ctr < 1.0);
/// # Ok::<(), microrec_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Builds an MLP from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyNetwork`] for zero layers and
    /// [`DnnError::ShapeMismatch`] if consecutive layers disagree.
    pub fn new(layers: Vec<DenseLayer>) -> Result<Self, DnnError> {
        if layers.is_empty() {
            return Err(DnnError::EmptyNetwork);
        }
        for pair in layers.windows(2) {
            if pair[0].output_dim() != pair[1].input_dim() {
                return Err(DnnError::ShapeMismatch {
                    context: "Mlp layer chaining",
                    expected: pair[0].output_dim(),
                    actual: pair[1].input_dim(),
                });
            }
        }
        Ok(Mlp { layers })
    }

    /// Builds the paper's top MLP: ReLU hidden layers of the given widths
    /// plus a single sigmoid output neuron, Xavier-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyNetwork`] if `hidden` is empty.
    pub fn top_mlp(input_dim: u32, hidden: &[u32], seed: u64) -> Result<Self, DnnError> {
        if hidden.is_empty() {
            return Err(DnnError::EmptyNetwork);
        }
        let mut layers = Vec::with_capacity(hidden.len() + 1);
        let mut prev = input_dim as usize;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(DenseLayer::xavier(prev, h as usize, Activation::Relu, seed + i as u64));
            prev = h as usize;
        }
        layers.push(DenseLayer::xavier(prev, 1, Activation::Sigmoid, seed + hidden.len() as u64));
        Mlp::new(layers)
    }

    /// Builds a DLRM-style bottom MLP: ReLU layers of the given widths
    /// over the dense input features (no output head — its last layer's
    /// activations are concatenated with the embeddings).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyNetwork`] if `hidden` is empty.
    pub fn bottom_mlp(input_dim: u32, hidden: &[u32], seed: u64) -> Result<Self, DnnError> {
        if hidden.is_empty() {
            return Err(DnnError::EmptyNetwork);
        }
        let mut layers = Vec::with_capacity(hidden.len());
        let mut prev = input_dim as usize;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(DenseLayer::xavier(
                prev,
                h as usize,
                Activation::Relu,
                seed ^ 0xB0770 ^ (i as u64) << 32,
            ));
            prev = h as usize;
        }
        Mlp::new(layers)
    }

    /// The layers, input-first.
    #[must_use]
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Input feature width.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output width (1 for a CTR head).
    #[must_use]
    pub fn output_dim(&self) -> usize {
        // lint: allow(transitive-panic) Mlp::new rejects empty layer stacks; last() cannot fail
        self.layers.last().expect("non-empty").output_dim()
    }

    /// Multiply–accumulate operations per forward item (the paper's GOP
    /// convention).
    #[must_use]
    pub fn flops(&self) -> u64 {
        self.layer_flops().sum()
    }

    /// Per-layer MAC operations, input-first — the compute profile a
    /// stage-level cost model scores (the bottleneck layer bounds a
    /// pipelined plan's throughput).
    pub fn layer_flops(&self) -> impl Iterator<Item = u64> + '_ {
        self.layers.iter().map(DenseLayer::flops)
    }

    /// Widest activation vector in the network, input included — the
    /// per-item scratch requirement of a forward pass.
    #[must_use]
    pub fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(DenseLayer::output_dim)
            .chain(std::iter::once(self.input_dim()))
            .max()
            // lint: allow(transitive-panic) the once() element makes the iterator non-empty
            .expect("non-empty")
    }

    /// Full forward pass at precision `T`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `input` has the wrong width.
    pub fn forward<T: FixedNum>(&self, input: &[T]) -> Result<Vec<T>, DnnError> {
        let mut current = input.to_vec();
        for layer in &self.layers {
            current = layer.forward_vec(&current)?;
        }
        Ok(current)
    }

    /// Forward pass through caller-owned scratch: after
    /// [`ScratchArena::warm`]`(self.max_width())`, repeated calls perform
    /// zero heap allocations. Bit-identical to [`Mlp::forward`].
    ///
    /// The result borrows `arena`; copy it out before the next call.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `input` has the wrong width.
    pub fn forward_with<'a, T: FixedNum>(
        &self,
        input: &[T],
        arena: &'a mut ScratchArena<T>,
    ) -> Result<&'a [T], DnnError> {
        arena.load(input);
        for layer in &self.layers {
            let (front, back) = arena.buffers();
            back.resize(layer.output_dim(), T::ZERO);
            // lint: allow(transitive-hot-path-alloc) reference per-layer forward; the packed kernels serve the fast path
            layer.forward(front, back)?;
            arena.swap();
        }
        Ok(arena.front())
    }

    /// Predicts the click-through rate for one `f32` feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `input` has the wrong width.
    pub fn predict_ctr(&self, input: &[f32]) -> Result<f32, DnnError> {
        Ok(self.forward(input)?[0])
    }

    /// Predicts CTR at precision `T` (the accelerator path), returning the
    /// de-quantized probability.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `input` has the wrong width.
    pub fn predict_ctr_quantized<T: FixedNum>(&self, input: &[f32]) -> Result<f32, DnnError> {
        let q: Vec<T> = input.iter().map(|&v| T::from_f32(v)).collect();
        Ok(self.forward(&q)?[0].to_f32())
    }

    /// Batched forward pass on the packed GEMM kernel: `inputs` is
    /// `batch × input_dim`; each row's result is bit-identical to
    /// [`Mlp::predict_ctr`] on that row.
    ///
    /// This packs the weights per call — a serving loop should hold a
    /// [`PackedMlp`] and a [`ScratchArena`] instead and pay the packing
    /// cost once.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `inputs` has the wrong width.
    pub fn forward_batch(&self, inputs: &Matrix) -> Result<Matrix, DnnError> {
        if inputs.cols() != self.input_dim() {
            return Err(DnnError::ShapeMismatch {
                context: "Mlp::forward_batch",
                expected: self.input_dim(),
                actual: inputs.cols(),
            });
        }
        let packed: PackedMlp<f32> = PackedMlp::pack(self);
        let mut arena = ScratchArena::new();
        packed.warm(inputs.rows(), &mut arena);
        let out = packed.forward_batch_into(inputs.as_slice(), inputs.rows(), &mut arena)?;
        // lint: allow(hot-path-alloc) convenience Matrix API; callers on the hot path use PackedMlp directly
        Matrix::from_vec(inputs.rows(), self.output_dim(), out.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{Q16, Q32};

    fn small_head() -> Mlp {
        Mlp::top_mlp(32, &[64, 16], 9).unwrap()
    }

    #[test]
    fn top_mlp_shape() {
        let mlp = small_head();
        assert_eq!(mlp.layers().len(), 3);
        assert_eq!(mlp.input_dim(), 32);
        assert_eq!(mlp.output_dim(), 1);
        assert_eq!(mlp.flops(), 2 * (32 * 64 + 64 * 16 + 16));
        let per_layer: Vec<u64> = mlp.layer_flops().collect();
        assert_eq!(per_layer, vec![2 * 32 * 64, 2 * 64 * 16, 2 * 16]);
    }

    #[test]
    fn production_flops_match_paper() {
        let small = Mlp::top_mlp(352, &[1024, 512, 256], 1).unwrap();
        assert_eq!(small.flops(), 2 * (352 * 1024 + 1024 * 512 + 512 * 256 + 256));
    }

    #[test]
    fn ctr_is_probability_and_deterministic() {
        let mlp = small_head();
        let x: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.2).sin()).collect();
        let a = mlp.predict_ctr(&x).unwrap();
        let b = mlp.predict_ctr(&x).unwrap();
        assert_eq!(a, b);
        assert!(a > 0.0 && a < 1.0);
    }

    #[test]
    fn quantized_paths_track_reference() {
        let mlp = small_head();
        let x: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.2).sin() * 0.5).collect();
        let f = mlp.predict_ctr(&x).unwrap();
        let q32 = mlp.predict_ctr_quantized::<Q32>(&x).unwrap();
        let q16 = mlp.predict_ctr_quantized::<Q16>(&x).unwrap();
        assert!((f - q32).abs() < 1e-2, "Q32 {q32} vs f32 {f}");
        assert!((f - q16).abs() < 0.15, "Q16 {q16} vs f32 {f}");
        // Q32 must be at least as accurate as Q16.
        assert!((f - q32).abs() <= (f - q16).abs() + 1e-6);
    }

    #[test]
    fn batch_forward_matches_single() {
        let mlp = small_head();
        let rows = 5;
        let inputs = Matrix::from_fn(rows, 32, |r, c| ((r * 32 + c) as f32 * 0.1).sin() * 0.5);
        let batch = mlp.forward_batch(&inputs).unwrap();
        for r in 0..rows {
            let single = mlp.predict_ctr(inputs.row(r)).unwrap();
            assert_eq!(
                batch.get(r, 0).to_bits(),
                single.to_bits(),
                "row {r}: batch {} vs single {single}",
                batch.get(r, 0)
            );
        }
    }

    #[test]
    fn forward_with_matches_forward_and_reuses_arena() {
        let mlp = small_head();
        let mut arena = ScratchArena::<f32>::new();
        arena.warm(mlp.max_width());
        assert_eq!(mlp.max_width(), 64);
        for k in 0..5 {
            let x: Vec<f32> = (0..32).map(|i| ((i + k) as f32 * 0.2).sin() * 0.5).collect();
            let alloc = mlp.forward::<f32>(&x).unwrap();
            let scratch = mlp.forward_with(&x, &mut arena).unwrap();
            assert_eq!(scratch.len(), alloc.len());
            for (s, a) in scratch.iter().zip(&alloc) {
                assert_eq!(s.to_bits(), a.to_bits());
            }
        }
        assert!(mlp.forward_with(&[0.0f32; 31], &mut arena).is_err());
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(Mlp::new(vec![]), Err(DnnError::EmptyNetwork)));
        assert!(matches!(Mlp::top_mlp(8, &[], 0), Err(DnnError::EmptyNetwork)));
        let l1 = DenseLayer::xavier(4, 8, Activation::Relu, 0);
        let l2 = DenseLayer::xavier(9, 2, Activation::Relu, 1);
        assert!(Mlp::new(vec![l1, l2]).is_err());
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mlp = small_head();
        assert!(mlp.predict_ctr(&[0.0; 31]).is_err());
        let m = Matrix::zeros(2, 31);
        assert!(mlp.forward_batch(&m).is_err());
    }
}
