//! # microrec-placement
//!
//! Table combination and allocation for MicroRec (Jiang et al., MLSys
//! 2021): the heuristic-rule-based search of Algorithm 1 (§3.4.2), the
//! brute-force comparator it is measured against (§3.4.1), the bank
//! allocator implementing rule 4, and the cost model that turns a placement
//! into embedding-lookup latency, DRAM access rounds, and storage overhead.
//!
//! ## Example
//!
//! ```
//! use microrec_embedding::{ModelSpec, Precision};
//! use microrec_memsim::MemoryConfig;
//! use microrec_placement::{heuristic_search, HeuristicOptions};
//!
//! let model = ModelSpec::small_production();
//! let outcome = heuristic_search(
//!     &model,
//!     &MemoryConfig::u280(),
//!     Precision::F32,
//!     &HeuristicOptions::default(),
//! )?;
//! // Table 3 of the paper: one DRAM access round after merging.
//! assert_eq!(outcome.cost.dram_rounds, 1);
//! # Ok::<(), microrec_placement::PlacementError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod brute;
mod error;
mod heuristic;
mod parallel;
mod plan;
mod refine;
mod traffic;

pub use alloc::{allocate, allocate_with, allocate_with_traffic, physical_specs, AllocStrategy};
pub use brute::{
    brute_force_search, brute_force_search_parallel, optimality_gap, MAX_BRUTE_TABLES,
};
pub use error::PlacementError;
pub use heuristic::{heuristic_search, heuristic_search_with_traffic, HeuristicOptions, SearchOutcome};
pub use parallel::heuristic_search_parallel;
pub use plan::{PlacedTable, Plan, PlanCost};
pub use refine::{refine_plan, RefineOutcome};
pub use traffic::TrafficProfile;
