//! Per-technology memory timing parameters.
//!
//! The simulator reduces every embedding read to a simple, physically
//! grounded cost model:
//!
//! ```text
//! access_time(bytes) = base_latency + ceil(bytes / port_bytes) * port_period
//! ```
//!
//! where `base_latency` covers the memory-controller round trip plus the DRAM
//! row activation (the dominant term for the short, nearly random reads that
//! embedding lookups produce — exactly the observation MicroRec §3.3 builds
//! on), and the second term is the streaming of the row payload over the
//! memory port (a 32-bit AXI port on the FPGA, a 64-byte cache-line path on
//! the CPU).
//!
//! The FPGA presets are calibrated against the paper's published
//! micro-measurements: Table 5 reports single-round HBM lookup latencies of
//! 334.5 ns at 16-byte vectors rising to 648.4 ns at 256-byte vectors, which
//! a linear fit resolves to ≈ 313 ns base + ≈ 1.31 ns/byte. On-chip reads
//! take "about 1/3" of a DRAM read (§3.2.2).

use crate::time::SimTime;

/// Timing parameters of one memory technology.
///
/// # Examples
///
/// ```
/// use microrec_memsim::MemTiming;
///
/// let hbm = MemTiming::hbm2_vitis();
/// // A 64-byte (16 x f32) embedding vector:
/// let t = hbm.access_time(64);
/// assert!(t.as_ns() > 300.0 && t.as_ns() < 450.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemTiming {
    /// Human-readable technology label (e.g. `"HBM2"`).
    pub label: String,
    /// Fixed cost of a random access: controller round trip + row activate.
    pub base_latency: SimTime,
    /// Bytes transferred per port cycle once the access is open.
    pub port_bytes: u32,
    /// Port (AXI / bus) clock frequency in Hz.
    pub port_hz: u64,
    /// DRAM row-buffer size; reads crossing a row boundary pay an extra
    /// activation per additional row. Zero disables row modelling (on-chip).
    pub row_bytes: u32,
}

impl MemTiming {
    /// HBM2 pseudo-channel behind the Vitis-generated AXI controller on a
    /// Xilinx Alveo U280, 32-bit AXI data width (paper appendix).
    ///
    /// Calibrated to the paper's Table 5 single-round latencies.
    #[must_use]
    pub fn hbm2_vitis() -> Self {
        MemTiming {
            label: "HBM2".to_string(),
            base_latency: SimTime::from_ns(318.0),
            port_bytes: 4,
            // 4 bytes per cycle at 192 MHz ≈ 1.30 ns/byte, the least-squares
            // slope of the paper's five Table 5 single-round latencies.
            port_hz: 192_000_000,
            row_bytes: 1024,
        }
    }

    /// DDR4 channel on the U280 behind the same Vitis AXI stack.
    ///
    /// The paper reports DDR and HBM "show close access latency of a couple
    /// of hundreds of nanoseconds" (§3.2.2); DDR rows are wider.
    #[must_use]
    pub fn ddr4_vitis() -> Self {
        MemTiming {
            label: "DDR4".to_string(),
            base_latency: SimTime::from_ns(324.0),
            port_bytes: 4,
            port_hz: 192_000_000,
            row_bytes: 8192,
        }
    }

    /// FPGA on-chip memory (BRAM/URAM): no read-initiation overhead, one
    /// element per cycle after a short control-logic delay, ≈ 1/3 of a DRAM
    /// access for typical embedding vectors (§3.2.2).
    #[must_use]
    pub fn onchip_fpga() -> Self {
        MemTiming {
            label: "on-chip".to_string(),
            base_latency: SimTime::from_ns(60.0),
            port_bytes: 8,
            port_hz: 140_000_000,
            row_bytes: 0,
        }
    }

    /// A server DDR4-2400 channel as seen from a CPU core (cache-line
    /// granularity, ~90 ns loaded random-access latency).
    #[must_use]
    pub fn ddr4_server() -> Self {
        MemTiming {
            label: "DDR4-server".to_string(),
            base_latency: SimTime::from_ns(90.0),
            port_bytes: 64,
            // One 64-byte line per ~3.33 ns sustains 19.2 GB/s per channel.
            port_hz: 300_000_000,
            row_bytes: 8192,
        }
    }

    /// Period of one port cycle.
    #[must_use]
    pub fn port_period(&self) -> SimTime {
        SimTime::from_cycles(1, self.port_hz)
    }

    /// Time to read `bytes` starting at a row boundary after a row miss.
    ///
    /// This is the cost charged to every embedding-vector read: random
    /// accesses essentially never hit an open row (Ke et al. 2020, cited in
    /// §2.2, measured high cache/row miss rates for recommendation
    /// inference).
    #[must_use]
    pub fn access_time(&self, bytes: u32) -> SimTime {
        let cycles = u64::from(bytes.div_ceil(self.port_bytes.max(1)));
        let mut t = self.base_latency + SimTime::from_cycles(cycles, self.port_hz);
        if self.row_bytes > 0 && bytes > self.row_bytes {
            let extra_rows = u64::from((bytes - 1) / self.row_bytes);
            t += self.base_latency * extra_rows;
        }
        t
    }

    /// Time to read `bytes` when the target row is already open (sequential
    /// follow-up access). Only the streaming term is charged.
    #[must_use]
    pub fn access_time_row_hit(&self, bytes: u32) -> SimTime {
        let cycles = u64::from(bytes.div_ceil(self.port_bytes.max(1)));
        SimTime::from_cycles(cycles, self.port_hz)
    }

    /// Sustained sequential bandwidth in bytes per second.
    #[must_use]
    pub fn sequential_bandwidth(&self) -> f64 {
        f64::from(self.port_bytes) * self.port_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_matches_paper_table5_row() {
        let hbm = MemTiming::hbm2_vitis();
        // Paper Table 5, 8 tables / one HBM round, fp32 vectors:
        //   veclen 4  (16 B)  -> 334.5 ns
        //   veclen 8  (32 B)  -> 353.7 ns
        //   veclen 16 (64 B)  -> 411.6 ns
        //   veclen 32 (128 B) -> 486.3 ns
        //   veclen 64 (256 B) -> 648.4 ns
        let cases = [(16u32, 334.5), (32, 353.7), (64, 411.6), (128, 486.3), (256, 648.4)];
        for (bytes, paper_ns) in cases {
            let model = hbm.access_time(bytes).as_ns();
            let err = (model - paper_ns).abs() / paper_ns;
            assert!(
                err < 0.06,
                "HBM access_time({bytes}) = {model:.1} ns, paper {paper_ns} ns (err {err:.3})"
            );
        }
    }

    #[test]
    fn onchip_is_about_a_third_of_dram() {
        let hbm = MemTiming::hbm2_vitis();
        let ocm = MemTiming::onchip_fpga();
        // Typical small embedding vector: 32 bytes.
        let ratio = ocm.access_time(32).as_ns() / hbm.access_time(32).as_ns();
        assert!(ratio < 0.40, "on-chip/DRAM ratio {ratio:.2} should be ~1/3");
    }

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        for t in [MemTiming::hbm2_vitis(), MemTiming::ddr4_vitis(), MemTiming::ddr4_server()] {
            assert!(t.access_time_row_hit(64) < t.access_time(64), "{}", t.label);
        }
    }

    #[test]
    fn access_time_monotone_in_bytes() {
        let hbm = MemTiming::hbm2_vitis();
        let mut prev = SimTime::ZERO;
        for bytes in [1u32, 4, 16, 64, 256, 1024, 4096] {
            let t = hbm.access_time(bytes);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn huge_read_pays_extra_row_activations() {
        let hbm = MemTiming::hbm2_vitis();
        let one_row = hbm.access_time(1024);
        let three_rows = hbm.access_time(3 * 1024);
        // Two extra activations beyond pure streaming.
        let streaming_delta = hbm.access_time_row_hit(2 * 1024);
        assert!(three_rows > one_row + streaming_delta);
    }

    #[test]
    fn server_channel_bandwidth_is_ddr4_2400_class() {
        let bw = MemTiming::ddr4_server().sequential_bandwidth();
        assert!((15e9..25e9).contains(&bw), "bandwidth {bw:.2e}");
    }
}

microrec_json::impl_json_struct!(
    MemTiming,
    required { label, base_latency, port_bytes, port_hz, row_bytes }
);
