//! Traffic-driven online re-sharding: the coordinator that turns observed
//! lookup counters into published arena generations.
//!
//! The [`Resharder`] closes the feedback loop the static search cannot:
//! Algorithm 1 places tables under a uniform-workload assumption, live
//! traffic is skewed, and the skew moves. At each evaluation the resharder
//! distills the runtime's per-table cache counters into a
//! [`TrafficProfile`], re-runs the fixed-merge traffic-aware allocation
//! ([`allocate_with_traffic`]), and compares the current plan against the
//! candidate under the traffic-weighted cost. When the predicted
//! improvement clears the [`ReshardingPolicy`] gates, it rebuilds the
//! arena under the candidate's channel assignment *off-thread* (shielded —
//! a panic mid-build leaves the old generation serving), publishes the new
//! generation through the epoch [`GenerationCell`], and re-seeds the
//! router's observed-latency history.
//!
//! The merge plan is deliberately fixed online: engine catalogs (logical →
//! physical table resolution, hot-row-cache keying) are immutable for the
//! process lifetime, so an online migration only re-distributes tables
//! across memory channels. Changing the merge remains an offline decision
//! (restart with a new plan). Rebuilt generations relocate encoded row
//! bytes verbatim, so a swap is bit-invisible to predictions.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{BankId, MemoryConfig};
use microrec_placement::{
    allocate_with_traffic, heuristic_search, AllocStrategy, Plan, PlacementError, TrafficProfile,
};

use crate::engine::MicroRecBuilder;
use crate::epoch::{build_generation_shielded, ArenaGeneration, GenerationCell};
use crate::error::MicroRecError;
use crate::report::MigrationRecord;
use crate::router::PathCostModel;
use crate::sync::lock_or_recover;

/// Gates deciding when observed traffic justifies an online re-shard.
///
/// All three gates must pass (unless forced): enough traffic observed in
/// the window, enough predicted improvement, and enough time since the
/// previous migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReshardingPolicy {
    /// Minimum predicted fractional improvement of the traffic-weighted
    /// lookup score — `(old − new) / old` — before a migration fires.
    pub divergence_threshold: f64,
    /// Minimum lookups (hits + misses) observed in the trigger window;
    /// below this the profile is noise, not signal.
    pub min_traffic: u64,
    /// Minimum milliseconds between migrations, so a boundary-straddling
    /// workload cannot thrash rebuilds.
    pub cooldown_ms: u64,
}

impl Default for ReshardingPolicy {
    fn default() -> Self {
        ReshardingPolicy { divergence_threshold: 0.05, min_traffic: 10_000, cooldown_ms: 200 }
    }
}

/// Channel assignment induced by a plan, computed from the plan alone:
/// each logical table takes the dense index of its physical table's
/// primary bank, in first-seen order over logical tables. Must agree with
/// `engine::channel_assignment` (which derives the same mapping through a
/// built catalog) — the equivalence is pinned by a test below — so a
/// migration reproduces exactly the channel layout a fresh build with the
/// same plan would produce.
pub(crate) fn channels_for_plan(plan: &Plan, n_logical: usize) -> Vec<usize> {
    let mut bank_of: Vec<Option<BankId>> = vec![None; n_logical];
    for table in &plan.placed {
        for &member in &table.members {
            if let Some(slot) = bank_of.get_mut(member) {
                *slot = table.banks.first().copied();
            }
        }
    }
    let mut banks: Vec<BankId> = Vec::new();
    bank_of
        .iter()
        .map(|bank| match bank {
            Some(bank) => banks.iter().position(|b| b == bank).unwrap_or_else(|| {
                banks.push(*bank);
                banks.len() - 1
            }),
            // A logical table no physical table claims cannot occur in a
            // validated plan; map it to channel 0 rather than failing.
            None => 0,
        })
        .collect()
}

/// Everything known about a migration at decision time, handed from the
/// gate evaluation to the swap so the published record carries the
/// trigger, not a re-derivation.
struct MigrationTrigger {
    trigger_hits: u64,
    trigger_misses: u64,
    divergence: f64,
    old_weighted_us: f64,
    new_weighted_us: f64,
    tables_moved: u64,
}

/// The online re-sharding coordinator: single writer of the epoch
/// [`GenerationCell`] every serving engine reads.
///
/// Counters flow in through [`Resharder::evaluate`] (cumulative per-table
/// hit/miss snapshots, as [`lookup_stats`](crate::ServingRuntime::lookup_stats)
/// reports them); the resharder internally windows them against the last
/// migration. It never touches the engines: publication is the only side
/// effect, and workers pick the new generation up at batch boundaries.
#[derive(Debug)]
pub struct Resharder {
    model: ModelSpec,
    memory: MemoryConfig,
    precision: Precision,
    strategy: AllocStrategy,
    policy: ReshardingPolicy,
    cell: Arc<GenerationCell>,
    router: Option<Arc<Mutex<PathCostModel>>>,
    /// The plan currently serving (updated on every migration).
    plan: Plan,
    /// Channel of each logical table under `plan`.
    channel_of: Vec<usize>,
    /// Cumulative counter snapshot at the last migration — the base of
    /// the current trigger window.
    prev_hits: Vec<u64>,
    prev_misses: Vec<u64>,
    last_migration: Option<Instant>,
    records: Vec<MigrationRecord>,
    /// Fault-injection hook run inside the shielded build thread (tests
    /// inject a panic here to prove the old generation keeps serving).
    build_hook: Option<fn()>,
}

impl Resharder {
    /// Builds a resharder for the engines `builder` produces: same model,
    /// memory platform, precision, and search options, so its as-built
    /// plan is exactly the plan every engine replica serves.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the placement search fails (it cannot,
    /// if an engine already built from the same configuration).
    pub fn from_builder(
        builder: &MicroRecBuilder,
        cell: Arc<GenerationCell>,
        policy: ReshardingPolicy,
    ) -> Result<Self, MicroRecError> {
        let model = builder.model_spec().clone();
        let options = builder.heuristic_options().clone();
        let outcome = heuristic_search(
            &model,
            builder.memory_config(),
            builder.stored_precision(),
            &options,
        )?;
        let n = model.num_tables();
        let channel_of = channels_for_plan(&outcome.plan, n);
        Ok(Resharder {
            model,
            memory: builder.memory_config().clone(),
            precision: builder.stored_precision(),
            strategy: options.strategy,
            policy,
            cell,
            router: None,
            plan: outcome.plan,
            channel_of,
            prev_hits: vec![0; n],
            prev_misses: vec![0; n],
            last_migration: None,
            records: Vec::new(),
            build_hook: None,
        })
    }

    /// Attaches the shared router cost model; after each migration its
    /// observed-latency history is re-seeded (calibration kept), so paths
    /// re-probe against the new layout instead of trusting stale EWMAs.
    pub fn attach_router(&mut self, router: Arc<Mutex<PathCostModel>>) {
        self.router = Some(router);
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> ReshardingPolicy {
        self.policy
    }

    /// Replaces the policy (applies from the next evaluation).
    pub fn set_policy(&mut self, policy: ReshardingPolicy) {
        self.policy = policy;
    }

    /// Every migration performed so far, oldest first.
    #[must_use]
    pub fn records(&self) -> &[MigrationRecord] {
        &self.records
    }

    /// The plan currently serving.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Memory channel of each logical table under the serving plan. The
    /// exact assignment is traffic-dependent (cold-table tie-breaks move
    /// with counter noise), so callers that need to know which tables a
    /// migration co-located must observe it rather than predict it.
    #[must_use]
    pub fn channels(&self) -> &[usize] {
        &self.channel_of
    }

    /// Installs a hook run inside the shielded build thread, before the
    /// rebuild. Fault-injection tests pass a panicking hook to prove a
    /// crash mid-build leaves the old generation serving.
    #[doc(hidden)]
    pub fn set_build_hook(&mut self, hook: fn()) {
        self.build_hook = Some(hook);
    }

    /// Evaluates the policy against cumulative per-table counters and
    /// migrates if every gate passes. Returns whether a migration was
    /// published.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the candidate allocation fails
    /// unexpectedly or the rebuild errors/panics; the old generation keeps
    /// serving in every error case.
    pub fn evaluate(&mut self, hits: &[u64], misses: &[u64]) -> Result<bool, MicroRecError> {
        self.consider(hits, misses, false)
    }

    /// [`Resharder::evaluate`] with the traffic, divergence, and cooldown
    /// gates skipped: migrates whenever the traffic-aware candidate moves
    /// at least one table. Returns `Ok(false)` when the observed profile
    /// changes nothing.
    ///
    /// # Errors
    ///
    /// Same contract as [`Resharder::evaluate`].
    pub fn force_migrate(&mut self, hits: &[u64], misses: &[u64]) -> Result<bool, MicroRecError> {
        self.consider(hits, misses, true)
    }

    fn consider(
        &mut self,
        hits: &[u64],
        misses: &[u64],
        force: bool,
    ) -> Result<bool, MicroRecError> {
        let n = self.model.num_tables();
        if hits.len() != n || misses.len() != n {
            // No per-table counters (cache disabled, or a mode that only
            // publishes at drain): nothing to distill from.
            return Ok(false);
        }
        // Window since the last migration: the counters are cumulative,
        // saturating in case a caller reset them underneath us.
        let delta_hits: Vec<u64> =
            hits.iter().zip(&self.prev_hits).map(|(&c, &p)| c.saturating_sub(p)).collect();
        let delta_misses: Vec<u64> =
            misses.iter().zip(&self.prev_misses).map(|(&c, &p)| c.saturating_sub(p)).collect();
        let trigger_hits: u64 = delta_hits.iter().sum();
        let trigger_misses: u64 = delta_misses.iter().sum();
        if !force {
            if trigger_hits.saturating_add(trigger_misses) < self.policy.min_traffic {
                return Ok(false);
            }
            if let Some(at) = self.last_migration {
                if at.elapsed() < Duration::from_millis(self.policy.cooldown_ms) {
                    return Ok(false);
                }
            }
        }
        let profile = TrafficProfile::from_lookup_counts(&delta_hits, &delta_misses);
        if profile.is_uniform() {
            // No skew: the traffic-aware allocation is bit-identical to
            // the uniform one, so there is nothing to move.
            return Ok(false);
        }
        // Fixed-merge candidate: re-distribute the same physical tables
        // across channels under the observed weights.
        let candidate = match allocate_with_traffic(
            &self.model,
            &self.plan.merge,
            &self.memory,
            self.precision,
            self.strategy,
            &profile,
        ) {
            Ok(plan) => plan,
            // The serving plan proves the merge fits; a transient
            // infeasibility (shouldn't happen) is a no-op, not an error.
            Err(PlacementError::Infeasible(_)) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        let lookups = self.model.lookups_per_table;
        let old_cost = self.plan.cost_with_traffic(&self.memory, lookups, &profile);
        let new_cost = candidate.cost_with_traffic(&self.memory, lookups, &profile);
        let old_ps = old_cost.lookup_latency.as_ps();
        let new_ps = new_cost.lookup_latency.as_ps();
        if old_ps == 0 {
            return Ok(false);
        }
        let divergence = old_ps.saturating_sub(new_ps) as f64 / old_ps as f64;
        if !force && divergence < self.policy.divergence_threshold {
            return Ok(false);
        }
        let new_channels = channels_for_plan(&candidate, n);
        let tables_moved =
            new_channels.iter().zip(&self.channel_of).filter(|(a, b)| a != b).count() as u64;
        if tables_moved == 0 {
            return Ok(false);
        }
        let trigger = MigrationTrigger {
            trigger_hits,
            trigger_misses,
            divergence,
            old_weighted_us: old_cost.lookup_latency.as_us(),
            new_weighted_us: new_cost.lookup_latency.as_us(),
            tables_moved,
        };
        self.migrate(candidate, new_channels, trigger, hits, misses)
    }

    /// Rebuilds the arena off-thread under `new_channels`, publishes the
    /// generation, re-seeds the router, and records the migration. Only on
    /// success does the resharder's own state (plan, channels, window
    /// base) advance — a failed build leaves it primed to retry.
    fn migrate(
        &mut self,
        candidate: Plan,
        new_channels: Vec<usize>,
        trigger: MigrationTrigger,
        hits: &[u64],
        misses: &[u64],
    ) -> Result<bool, MicroRecError> {
        let snapshot = self.cell.snapshot();
        let generation = snapshot.generation + 1;
        let hook = self.build_hook;
        let channels = new_channels.clone();
        let build_started = Instant::now();
        let built = if let Some(backing) = snapshot.backing {
            // Tiered: only the resident arena relocates; the cold store
            // file is shared untouched (cold rows are addressed by file
            // offset and never move).
            build_generation_shielded(move || {
                if let Some(hook) = hook {
                    hook();
                }
                let rebuilt = backing.rebuild_with_channels(&channels, generation)?;
                Ok(ArenaGeneration::from_backing(rebuilt))
            })
        } else if let Some(arena) = snapshot.arena {
            build_generation_shielded(move || {
                if let Some(hook) = hook {
                    hook();
                }
                let rebuilt = arena.rebuild_with_channels(&channels, generation)?;
                Ok(ArenaGeneration::from_arena(Arc::new(rebuilt)))
            })
        } else {
            Err(MicroRecError::Runtime(
                "no published embedding store generation to migrate".into(),
            ))
        }?;
        let build_us = build_started.elapsed().as_secs_f64() * 1e6;
        let publish_started = Instant::now();
        self.cell.publish(built);
        let swap_us = publish_started.elapsed().as_secs_f64() * 1e6;
        if let Some(router) = &self.router {
            lock_or_recover(router).reseed_after_swap();
        }
        self.records.push(MigrationRecord {
            generation,
            trigger_hits: trigger.trigger_hits,
            trigger_misses: trigger.trigger_misses,
            divergence: trigger.divergence,
            old_weighted_us: trigger.old_weighted_us,
            new_weighted_us: trigger.new_weighted_us,
            tables_moved: trigger.tables_moved,
            build_us,
            swap_us,
        });
        self.plan = candidate;
        self.channel_of = new_channels;
        self.prev_hits.clear();
        self.prev_hits.extend_from_slice(hits);
        self.prev_misses.clear();
        self.prev_misses.extend_from_slice(misses);
        self.last_migration = Some(Instant::now());
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{channel_assignment, MicroRec};
    use microrec_embedding::{RowFormat, TableSpec};
    use microrec_memsim::MemoryConfig;
    use microrec_placement::HeuristicOptions;

    /// Two hot and two cold tables; with only two DRAM channels the
    /// traffic-aware allocation separates the hot pair (see the placement
    /// crate's `traffic_allocation_spreads_hot_tables_across_channels`).
    fn skewed_model() -> ModelSpec {
        ModelSpec::new(
            "skewed",
            vec![
                TableSpec::new("hot-big", 200_000, 16),
                TableSpec::new("hot-small", 100_000, 8),
                TableSpec::new("cold-big", 200_000, 16),
                TableSpec::new("cold-small", 100_000, 8),
            ],
            vec![32, 16],
            1,
        )
    }

    fn skewed_builder() -> MicroRecBuilder {
        MicroRec::builder(skewed_model())
            .memory(MemoryConfig::fpga_without_hbm(2))
            .precision(Precision::F32)
            .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
            .embedding_arena(RowFormat::F32)
            .seed(13)
    }

    fn eager_policy() -> ReshardingPolicy {
        ReshardingPolicy { divergence_threshold: 0.01, min_traffic: 1, cooldown_ms: 0 }
    }

    /// Shared-arena builder + its epoch cell, as the runtime wires them.
    fn prepared() -> (MicroRecBuilder, Arc<GenerationCell>) {
        let mut builder = skewed_builder();
        builder.prepare_shared_arena().unwrap();
        let arena = Arc::clone(builder.shared_arena_handle().unwrap());
        let cell = GenerationCell::new(ArenaGeneration::from_arena(arena));
        let builder = builder.epoch_cell(Arc::clone(&cell));
        (builder, cell)
    }

    fn queries(n: usize) -> Vec<Vec<u64>> {
        (0..n).map(|i| (0..4).map(|j| ((i * 7919 + j * 104_729) % 100_000) as u64).collect()).collect()
    }

    #[test]
    fn channels_for_plan_matches_engine_channel_assignment() {
        // Plan-only derivation must agree with the catalog-backed one, for
        // a merged production model and for the unmerged skewed model.
        for engine in [
            MicroRec::builder(ModelSpec::small_production()).seed(5).build().unwrap(),
            skewed_builder().build().unwrap(),
        ] {
            let n = engine.model().num_tables();
            assert_eq!(
                channels_for_plan(engine.plan(), n),
                channel_assignment(engine.catalog(), engine.plan()),
                "{}",
                engine.model().name
            );
        }
    }

    #[test]
    fn uniform_counters_never_migrate_and_gates_hold() {
        let (builder, cell) = prepared();
        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        // Uniform skew: nothing to move.
        assert!(!resharder.evaluate(&[0; 4], &[500, 500, 500, 500]).unwrap());
        // Below min_traffic: gated even under heavy skew.
        resharder.set_policy(ReshardingPolicy { min_traffic: 1_000_000, ..eager_policy() });
        assert!(!resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
        // Counter slices of the wrong arity are ignored, not an error.
        assert!(!resharder.evaluate(&[0; 3], &[1, 2, 3]).unwrap());
        assert_eq!(cell.version(), 0, "no migration may have published");
        assert!(resharder.records().is_empty());
    }

    #[test]
    fn skewed_counters_publish_a_bit_identical_generation() {
        let (builder, cell) = prepared();
        let mut engine = builder.clone().build().unwrap();
        let qs = queries(24);
        let want: Vec<f32> = qs.iter().map(|q| engine.predict(q).unwrap()).collect();

        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        let migrated = resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap();
        assert!(migrated, "hot-pair skew must trigger a migration");
        assert_eq!(cell.version(), 1);
        assert_eq!(cell.snapshot().generation, 1);

        let record = &resharder.records()[0];
        assert_eq!(record.generation, 1);
        assert_eq!(record.trigger_misses, 1802);
        assert!(record.divergence > 0.0, "divergence {}", record.divergence);
        assert!(record.new_weighted_us < record.old_weighted_us);
        assert!(record.tables_moved > 0);
        assert!(record.build_us >= 0.0 && record.swap_us >= 0.0);

        // The engine adopts at its next batch boundary; results are
        // bit-identical across the swap.
        for (q, w) in qs.iter().zip(&want) {
            assert_eq!(engine.predict(q).unwrap().to_bits(), w.to_bits());
        }
        assert_eq!(engine.store_generation(), 1, "engine must serve the new generation");

        // The same cumulative counters again: the window is empty now, so
        // nothing further fires.
        assert!(!resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
    }

    #[test]
    fn reversed_skew_migrates_back_and_cooldown_gates_it() {
        let (builder, cell) = prepared();
        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        assert!(resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
        // Phase shift: the new hot pair is the two tables the migrated
        // layout co-locates on one channel (reversing the original skew
        // outright would be a genuine no-op — the split layout already
        // separates that pair). Counters stay cumulative.
        let shifted_h = [0u64; 4];
        let shifted_m = [1_800, 901, 901, 2];
        // A long cooldown holds the reversal back ...
        resharder.set_policy(ReshardingPolicy { cooldown_ms: 3_600_000, ..eager_policy() });
        assert!(!resharder.evaluate(&shifted_h, &shifted_m).unwrap());
        // ... force skips the gate, and a second force with no new skew
        // does nothing.
        assert!(resharder.force_migrate(&shifted_h, &shifted_m).unwrap());
        assert_eq!(cell.version(), 2);
        assert_eq!(resharder.records().len(), 2);
        assert!(!resharder.force_migrate(&shifted_h, &shifted_m).unwrap());
    }

    #[test]
    fn rotated_skew_migrates_again_without_force() {
        let (builder, cell) = prepared();
        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        assert!(resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
        // Rotate the skew onto whichever pair the migrated layout
        // co-locates: the cold-table tie-break moves with counter noise,
        // so the pair must be observed, not predicted.
        let channels = resharder.channels().to_vec();
        let partner = (1..4).find(|&t| channels[t] == channels[0]).expect("co-located partner");
        let mut misses = [900u64, 900, 1, 1];
        misses[0] += 900;
        misses[partner] += 900;
        assert!(
            resharder.evaluate(&[0; 4], &misses).unwrap(),
            "rotated skew must clear the divergence gate unforced"
        );
        assert_eq!(resharder.records().len(), 2);
        assert_eq!(cell.version(), 2);
        assert!(resharder.records()[1].tables_moved > 0);
    }

    #[test]
    fn panic_mid_build_leaves_the_old_generation_serving() {
        let (builder, cell) = prepared();
        let mut engine = builder.clone().build().unwrap();
        let qs = queries(16);
        let want: Vec<f32> = qs.iter().map(|q| engine.predict(q).unwrap()).collect();

        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        resharder.set_build_hook(|| panic!("injected rebuild fault"));
        let err = resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap_err();
        assert!(err.to_string().contains("old generation keeps serving"), "{err}");
        assert_eq!(cell.version(), 0, "a failed build must publish nothing");
        assert!(resharder.records().is_empty());

        // The serving path is untouched: same generation, same bits.
        for (q, w) in qs.iter().zip(&want) {
            assert_eq!(engine.predict(q).unwrap().to_bits(), w.to_bits());
        }
        assert_eq!(engine.store_generation(), 0);

        // Clearing the fault lets the retry succeed with the same window.
        resharder.build_hook = None;
        assert!(resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
        assert_eq!(engine.predict(&qs[0]).unwrap().to_bits(), want[0].to_bits());
        assert_eq!(engine.store_generation(), 1);
    }

    #[test]
    fn tiered_generation_migrates_and_stays_bit_identical() {
        // Same trigger through the tiered twin: resident arena relocates,
        // cold rows stay put, predictions keep their bits.
        let budget = 200_000 * 16 * 4; // hot-big resident, rest cold
        let mut builder = skewed_builder().tiered_storage(budget, RowFormat::F32);
        builder.prepare_shared_arena().unwrap();
        let backing = Arc::clone(builder.shared_tiered_handle().unwrap());
        let cell = GenerationCell::new(ArenaGeneration::from_backing(backing));
        let builder = builder.epoch_cell(Arc::clone(&cell));
        let mut engine = builder.clone().build().unwrap();
        let qs = queries(16);
        let want: Vec<f32> = qs.iter().map(|q| engine.predict(q).unwrap()).collect();

        let mut resharder =
            Resharder::from_builder(&builder, Arc::clone(&cell), eager_policy()).unwrap();
        assert!(resharder.evaluate(&[0; 4], &[900, 900, 1, 1]).unwrap());
        assert_eq!(cell.snapshot().generation, 1);
        for (q, w) in qs.iter().zip(&want) {
            assert_eq!(engine.predict(q).unwrap().to_bits(), w.to_bits());
        }
        assert_eq!(engine.store_generation(), 1);
    }
}


