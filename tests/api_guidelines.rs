//! API-guideline compliance checks that are assertable in code:
//! `Send`/`Sync` on public types (C-SEND-SYNC), `Error + Send + Sync +
//! 'static` on every error type (C-GOOD-ERR), and `Debug` everywhere
//! (C-DEBUG).

use std::error::Error;
use std::fmt::Debug;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: Error + Send + Sync + 'static>() {}
fn assert_debug<T: Debug>() {}

#[test]
fn public_types_are_send_sync() {
    assert_send_sync::<microrec_memsim::HybridMemory>();
    assert_send_sync::<microrec_memsim::MemoryConfig>();
    assert_send_sync::<microrec_memsim::EntryCache>();
    assert_send_sync::<microrec_embedding::EmbeddingTable>();
    assert_send_sync::<microrec_embedding::Catalog>();
    assert_send_sync::<microrec_embedding::ModelSpec>();
    assert_send_sync::<microrec_placement::Plan>();
    assert_send_sync::<microrec_dnn::Mlp>();
    assert_send_sync::<microrec_dnn::QuantizedMlp>();
    assert_send_sync::<microrec_accel::Pipeline>();
    assert_send_sync::<microrec_accel::FlowSim>();
    assert_send_sync::<microrec_cpu::CpuReferenceEngine>();
    assert_send_sync::<microrec_cpu::CpuTimingModel>();
    assert_send_sync::<microrec_workload::RequestTrace>();
    assert_send_sync::<microrec_core::MicroRec>();
    assert_send_sync::<microrec_core::EnginePool>();
    assert_send_sync::<microrec_core::MicroRecCluster>();
}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<microrec_memsim::MemsimError>();
    assert_error::<microrec_embedding::EmbeddingError>();
    assert_error::<microrec_placement::PlacementError>();
    assert_error::<microrec_dnn::DnnError>();
    assert_error::<microrec_accel::AccelError>();
    assert_error::<microrec_cpu::CpuError>();
    assert_error::<microrec_workload::WorkloadError>();
    assert_error::<microrec_core::MicroRecError>();
}

#[test]
fn key_types_implement_debug() {
    assert_debug::<microrec_memsim::SimTime>();
    assert_debug::<microrec_memsim::BankId>();
    assert_debug::<microrec_placement::PlanCost>();
    assert_debug::<microrec_accel::AccelConfig>();
    assert_debug::<microrec_core::MicroRecBuilder>();
    assert_debug::<microrec_workload::LatencyStats>();
}

#[test]
fn error_displays_are_lowercase_without_trailing_punctuation() {
    let samples: Vec<Box<dyn Error>> = vec![
        Box::new(microrec_embedding::EmbeddingError::DegenerateProduct),
        Box::new(microrec_dnn::DnnError::EmptyNetwork),
        Box::new(microrec_workload::WorkloadError::NoSamples),
        Box::new(microrec_memsim::MemsimError::UnknownBank(microrec_memsim::BankId::new(
            microrec_memsim::MemoryKind::Hbm,
            0,
        ))),
    ];
    for e in samples {
        let msg = e.to_string();
        assert!(msg.starts_with(char::is_lowercase), "error messages start lowercase: {msg}");
        assert!(!msg.ends_with('.'), "no trailing period: {msg}");
    }
}
