//! Streaming micro-batch serving runtime.
//!
//! Turns a live arrival stream into batched inference: producers
//! [`submit`](ServingRuntime::submit) single queries into a bounded
//! admission queue (backpressure or rejection when full), worker threads
//! pop micro-batches formed by the `max_batch`-or-`max_wait_us` close rule
//! and run them through [`MicroRec::predict_batch`] on a private engine
//! replica whose packed weights and scratch arena are pre-warmed at
//! startup, so the steady-state DNN loop never allocates. Every request
//! carries its enqueue timestamp; completions feed a shared
//! [`LatencyHistogram`] from which p50/p95/p99/p999 are read out online.
//!
//! ```text
//!  submit() ──▶ [bounded queue] ──▶ batch former ──▶ worker 0 (engine+arena)
//!  submit() ──▶      │ depth ≤ queue_depth  │   ──▶ worker 1 (engine+arena)
//!  submit() ──▶      ▼ full? block / reject ▼   ──▶ ...
//!                 close at max_batch or max_wait_us
//! ```

mod batcher;
mod histogram;
mod migrate;
mod queue;
mod replay;

pub use batcher::{plan_batches, BatchClose, BatchFormerConfig, PlannedBatch};
pub use histogram::{LatencyHistogram, LatencyPercentiles};
pub use migrate::{Resharder, ReshardingPolicy};
pub use replay::{replay_trace, ReplayOutcome};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{MicroRec, MicroRecBuilder};
use crate::epoch::{ArenaGeneration, GenerationCell};
use crate::error::MicroRecError;
use crate::report::MigrationRecord;
use crate::pipeline::{
    Calibration, ExecutionMode, PipelineConfig, PipelineExecutor, PipelinePlan, PipelineShared,
    StageSnapshot,
};
use crate::router::{PathCostModel, PathSet, RouterSnapshot};
use crate::sync::{lock_or_recover, recover};
use queue::{BoundedQueue, PushError};

/// Calibration queries per micro-benchmark when [`ExecutionMode::Auto`]
/// resolves at startup (a one-time cost before the first worker spawns).
const AUTO_CALIBRATION_ROUNDS: usize = 48;

/// How often the adaptive driver re-reads the shared lookup counters and
/// re-evaluates the [`ReshardingPolicy`] gates.
const RESHARD_POLL_MS: u64 = 10;

/// What to do with a new request when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Block the producer until space frees (backpressure).
    #[default]
    Block,
    /// Refuse immediately with [`RuntimeError::Rejected`] and count a drop.
    Reject,
}

/// Configuration of the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads, each owning one engine replica.
    pub workers: usize,
    /// A micro-batch closes as soon as it holds this many requests.
    pub max_batch: usize,
    /// A micro-batch closes once its oldest request waited this long (µs).
    pub max_wait_us: u64,
    /// Admission-queue capacity (requests waiting to be batched).
    pub queue_depth: usize,
    /// Full-queue behavior.
    pub admission: AdmissionPolicy,
    /// How each worker executes inference: the classic monolithic
    /// predict path, the staged dataflow pipeline (fixed or replicated
    /// topology), [`ExecutionMode::Auto`], which calibrates at startup
    /// and routes on the measured cost model, or
    /// [`ExecutionMode::Routed`], which re-routes every formed batch
    /// across the full path matrix.
    pub execution: ExecutionMode,
    /// End-to-end latency objective per request (µs), consulted by the
    /// routed mode's SLO guard; 0 disables the guard.
    pub slo_us: u64,
    /// Enables traffic-adaptive online re-sharding: a background driver
    /// distills the workers' per-table cache counters into a
    /// [`TrafficProfile`](microrec_placement::TrafficProfile), and when
    /// the [`ReshardingPolicy`] gates pass, rebuilds the shared embedding
    /// store under a traffic-aware channel layout and publishes it as a
    /// new generation (workers adopt at batch boundaries, bit-identical).
    /// Requires monolithic execution with a hot-row cache and a shared
    /// arena or tiered store.
    pub adaptive: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            max_batch: 32,
            max_wait_us: 2_000,
            queue_depth: 1024,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Monolithic,
            slo_us: 0,
            adaptive: false,
        }
    }
}

impl RuntimeConfig {
    /// The batch-former half of the configuration.
    #[must_use]
    pub fn batch_former(&self) -> BatchFormerConfig {
        BatchFormerConfig { max_batch: self.max_batch, max_wait_us: self.max_wait_us }
    }
}

/// Why a submitted request did not produce a prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The admission queue was full under [`AdmissionPolicy::Reject`].
    Rejected,
    /// The runtime is shutting down and admits no new requests.
    ShuttingDown,
    /// The query's arity does not match the served model.
    BadQuery {
        /// Indices the model expects per query.
        expected: usize,
        /// Indices the query actually carried.
        actual: usize,
    },
    /// The engine failed on this query (e.g. out-of-range row index).
    Failed(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Rejected => write!(f, "admission queue full, request rejected"),
            RuntimeError::ShuttingDown => write!(f, "runtime is shutting down"),
            RuntimeError::BadQuery { expected, actual } => {
                write!(f, "query arity mismatch: expected {expected} indices, got {actual}")
            }
            RuntimeError::Failed(msg) => write!(f, "inference failed: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// One-shot completion slot shared between a request and its
/// [`PendingPrediction`].
#[derive(Debug)]
struct Slot {
    result: Mutex<Option<Result<f32, RuntimeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn fulfill(&self, value: Result<f32, RuntimeError>) {
        let mut slot = lock_or_recover(&self.result);
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
    }
}

/// Handle to an admitted request's eventual prediction.
#[derive(Debug)]
pub struct PendingPrediction {
    slot: Arc<Slot>,
}

impl PendingPrediction {
    /// Blocks until the prediction completes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Failed`] if the engine rejected the query.
    pub fn wait(self) -> Result<f32, RuntimeError> {
        let mut slot = lock_or_recover(&self.slot.result);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = recover(self.slot.ready.wait(slot));
        }
    }

    /// Returns the prediction if it already completed, without blocking.
    #[must_use]
    pub fn try_take(&self) -> Option<Result<f32, RuntimeError>> {
        lock_or_recover(&self.slot.result).take()
    }
}

/// A queued request: the query, its admission instant, and where to
/// deliver the answer.
#[derive(Debug)]
struct Request {
    query: Vec<u64>,
    enqueued_at: Instant,
    slot: Arc<Slot>,
}

/// Shared runtime counters plus the completion-latency histogram.
#[derive(Debug, Default)]
struct SharedStats {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    size_closes: AtomicU64,
    deadline_closes: AtomicU64,
    drain_closes: AtomicU64,
    hist: Mutex<LatencyHistogram>,
    lookup_bytes_from_cache: AtomicU64,
    lookup_bytes_from_memory: AtomicU64,
    /// Per-table hot-row-cache hit/miss totals across all workers (empty
    /// when the engines run without a cache).
    lookup_tables: Mutex<LookupTableCounters>,
    /// Per-tier totals across all workers, populated when the engines
    /// serve through the tiered parameter store.
    tier_resident_hits: AtomicU64,
    tier_cold_reads: AtomicU64,
    tier_prefetch_hits: AtomicU64,
    tier_bytes_from_cold: AtomicU64,
    tier_cold_errors: AtomicU64,
}

/// Aggregated per-table cache counters (one entry per logical table).
#[derive(Debug, Default, Clone)]
struct LookupTableCounters {
    hits: Vec<u64>,
    misses: Vec<u64>,
}

/// Aggregated embedding-lookup statistics of a runtime whose workers run
/// a [`microrec_embedding::HotRowCache`] in front of their gathers.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeLookupStats {
    /// Row storage format of the engines' arena (`"f32"` for the legacy
    /// table path).
    pub format: &'static str,
    /// Hot-row-cache capacity in rows (per worker replica).
    pub cache_rows: usize,
    /// Total cache hits across workers and tables.
    pub hits: u64,
    /// Total cache misses across workers and tables.
    pub misses: u64,
    /// Bytes served from cached dequantized rows.
    pub bytes_from_cache: u64,
    /// Bytes moved from backing storage on misses.
    pub bytes_from_memory: u64,
    /// Cache hits per logical table.
    pub per_table_hits: Vec<u64>,
    /// Cache misses per logical table.
    pub per_table_misses: Vec<u64>,
    /// Whether the engines serve through the tiered parameter store (the
    /// per-tier counters below are meaningful only when set).
    pub tiered: bool,
    /// Rows served by the resident arena (L2) across all workers.
    pub resident_hits: u64,
    /// Rows read from the file-backed cold store (L3).
    pub cold_reads: u64,
    /// Cold reads whose async response was already complete when
    /// collected (fully overlapped with resident-tier work).
    pub prefetch_hits: u64,
    /// Bytes moved off the cold store.
    pub bytes_from_cold: u64,
    /// Cold reads that failed (truncated/unreadable store file).
    pub cold_errors: u64,
}

impl RuntimeLookupStats {
    /// Hit fraction over all lookups (0 when none ran).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Whether the cold tier has served every read it was asked for. A
    /// runtime keeps draining while this is `false` — only the affected
    /// lookups fail — but the tier needs operator attention.
    #[must_use]
    pub fn cold_tier_healthy(&self) -> bool {
        self.cold_errors == 0
    }
}

/// Point-in-time view of the runtime's counters and tail latency.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests dropped by the reject policy.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an engine error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Batches closed by reaching `max_batch`.
    pub size_closes: u64,
    /// Batches closed by the `max_wait_us` deadline.
    pub deadline_closes: u64,
    /// Batches closed by the shutdown drain.
    pub drain_closes: u64,
    /// Mean requests per executed batch (0 when no batches ran).
    pub mean_batch_size: f64,
    /// Mean enqueue→completion latency in microseconds.
    pub mean_latency_us: f64,
    /// Enqueue→completion latency percentiles.
    pub latency: LatencyPercentiles,
    /// Per-stage dataflow counters summed across workers, present under
    /// the staged modes (pipelined / replicated).
    pub stages: Option<Vec<StageSnapshot>>,
}

impl RuntimeSnapshot {
    /// Fraction of offered requests dropped (`rejected / (admitted +
    /// rejected)`, 0 when nothing was offered).
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            0.0
        } else {
            self.rejected as f64 / offered as f64
        }
    }
}

/// The streaming serving runtime: bounded admission queue, deadline batch
/// former, and a pool of engine-replica workers.
///
/// Dropping the runtime shuts it down cleanly: the queue closes, workers
/// drain every admitted request, and their threads are joined.
#[derive(Debug)]
pub struct ServingRuntime {
    queue: Arc<BoundedQueue<Request>>,
    stats: Arc<SharedStats>,
    config: RuntimeConfig,
    /// The mode actually running ([`ExecutionMode::Auto`] resolves to a
    /// concrete mode at startup).
    resolved: ExecutionMode,
    /// The staged topology in use (`None` under monolithic execution).
    plan: Option<PipelinePlan>,
    /// The startup cost model, when the runtime calibrated (`Auto` only).
    calibration: Option<Calibration>,
    expected_arity: usize,
    /// `(row format, cache rows per worker, tiered)` when the engines run
    /// a hot-row cache and/or the tiered parameter store.
    lookup_meta: Option<(&'static str, usize, bool)>,
    /// Per-worker pipeline counter blocks (empty under
    /// [`ExecutionMode::Monolithic`]).
    pipelines: Vec<Arc<PipelineShared>>,
    /// The shared per-batch cost model, under [`ExecutionMode::Routed`].
    router: Option<Arc<Mutex<PathCostModel>>>,
    /// The online re-sharding coordinator, when `config.adaptive` is set.
    resharder: Option<Arc<Mutex<Resharder>>>,
    /// Stop flag for the adaptive driver thread.
    reshard_stop: Option<Arc<AtomicBool>>,
    /// The adaptive driver thread, joined at shutdown before the queue
    /// closes (no migration may race the drain).
    reshard_driver: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServingRuntime {
    /// Builds one engine replica per worker from `builder`, pre-warms each
    /// replica's packed weights and scratch arena at `max_batch` (so the
    /// steady-state loop is allocation-free), and starts the workers.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if an engine fails to build or a worker
    /// thread cannot be spawned.
    pub fn start(
        mut builder: MicroRecBuilder,
        config: RuntimeConfig,
    ) -> Result<Self, MicroRecError> {
        let config = RuntimeConfig {
            workers: config.workers.max(1),
            max_batch: config.max_batch.max(1),
            queue_depth: config.queue_depth.max(1),
            ..config
        };
        if config.execution == ExecutionMode::Routed {
            return Self::start_routed(builder, config);
        }
        // When an embedding arena is configured, materialize it once and
        // share it read-only across all worker replicas (worker memory no
        // longer scales with the arena size).
        builder.prepare_shared_arena()?;
        // Epoch seam: publish the shared store as generation 0 and hand
        // every replica the cell, so an online migration reaches all of
        // them at their next batch boundary.
        let epoch = if let Some(backing) = builder.shared_tiered_handle() {
            Some(GenerationCell::new(ArenaGeneration::from_backing(Arc::clone(backing))))
        } else {
            builder
                .shared_arena_handle()
                .map(|arena| GenerationCell::new(ArenaGeneration::from_arena(Arc::clone(arena))))
        };
        if let Some(cell) = &epoch {
            builder = builder.epoch_cell(Arc::clone(cell));
        }
        // Pre-warm: one full-width dummy batch builds the packed weights
        // and sizes the arena, then the stats reset hides it.
        let warm_engine = |builder: &MicroRecBuilder| -> Result<MicroRec, MicroRecError> {
            let mut engine = builder.clone().build()?;
            let arity = engine.model().num_tables() * engine.model().lookups_per_table as usize;
            let warm = vec![vec![0u64; arity]; config.max_batch];
            engine.predict_batch(&warm)?;
            engine.reset_stats();
            Ok(engine)
        };
        // Resolve what actually runs. `Auto` calibrates one replica up
        // front and routes on the measured cost model; every already-built
        // replica is recycled into the worker pool.
        let mut engines: Vec<MicroRec> = Vec::new();
        let (resolved, plan, calibration) = match config.execution {
            ExecutionMode::Monolithic => (ExecutionMode::Monolithic, None, None),
            ExecutionMode::Pipelined => {
                let engine = warm_engine(&builder)?;
                let layers = engine.model().hidden.len() + 1;
                engines.push(engine);
                let plan = PipelinePlan::per_layer(layers, PipelineConfig::default().fifo_depth);
                (ExecutionMode::Pipelined, Some(plan), None)
            }
            ExecutionMode::Replicated => {
                let engine = warm_engine(&builder)?;
                let layers = engine.model().hidden.len() + 1;
                engines.push(engine);
                let plan =
                    PipelinePlan::replicated_default(layers, PipelineConfig::default().fifo_depth);
                (ExecutionMode::Replicated, Some(plan), None)
            }
            ExecutionMode::Auto => {
                let probe = warm_engine(&builder)?;
                let (mut engine, plan, calibration) = PipelinePlan::calibrate(
                    probe,
                    microrec_par::default_threads(),
                    AUTO_CALIBRATION_ROUNDS,
                )?;
                engine.reset_stats();
                engines.push(engine);
                // Auto is the router restricted to its two measured
                // paths: argmin over the unified cost model.
                let mode = PathCostModel::from_calibration(&calibration, &plan).choose_mode();
                let plan = if mode == ExecutionMode::Monolithic { None } else { Some(plan) };
                (mode, plan, Some(calibration))
            }
            ExecutionMode::Routed => {
                // Handled by the early return above; nothing resolves here.
                (ExecutionMode::Monolithic, None, None)
            }
        };
        let lanes_per_worker = plan.as_ref().map_or(1, |p| p.lookup_lanes.max(1));
        while engines.len() < config.workers * lanes_per_worker {
            engines.push(warm_engine(&builder)?);
        }
        let expected_arity =
            engines[0].model().num_tables() * engines[0].model().lookups_per_table as usize;
        let mut lookup_meta = None;
        let tiered = engines[0].is_tiered();
        if engines[0].hot_row_cache().is_some() || tiered {
            let format = match engines[0].tiered_store() {
                Some(t) => t.backing().format().as_str(),
                None => engines[0].arena().map_or("f32", |a| a.format().as_str()),
            };
            let cache_rows = engines[0].hot_row_cache().map_or(0, |c| c.capacity());
            lookup_meta = Some((format, cache_rows, tiered));
        }
        let resharder = if config.adaptive {
            let cell = epoch.as_ref().ok_or_else(|| {
                MicroRecError::Runtime(
                    "adaptive re-sharding needs a shared embedding store: enable the \
                     embedding arena or tiered storage on the builder"
                        .into(),
                )
            })?;
            if plan.is_some() {
                return Err(MicroRecError::Runtime(
                    "adaptive re-sharding requires monolithic execution (the staged modes \
                     publish lookup counters only at drain)"
                        .into(),
                ));
            }
            if !lookup_meta.is_some_and(|(_, cache_rows, _)| cache_rows > 0) {
                return Err(MicroRecError::Runtime(
                    "adaptive re-sharding needs the hot-row cache's per-table counters: \
                     enable hot_row_cache on the builder"
                        .into(),
                ));
            }
            let resharder =
                Resharder::from_builder(&builder, Arc::clone(cell), ReshardingPolicy::default())?;
            Some(Arc::new(Mutex::new(resharder)))
        } else {
            None
        };

        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let mut stats = SharedStats::default();
        if lookup_meta.is_some() {
            let tables = engines[0].catalog().logical_tables().len();
            let counters = stats.lookup_tables.get_mut().unwrap_or_else(|p| p.into_inner());
            counters.hits.resize(tables, 0);
            counters.misses.resize(tables, 0);
        }
        let stats = Arc::new(stats);
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers);
        let mut pipelines = Vec::new();
        let mut engine_pool = engines.into_iter();
        for id in 0..config.workers {
            let mut lane_engines: Vec<MicroRec> =
                engine_pool.by_ref().take(lanes_per_worker).collect();
            let spawned =
                std::thread::Builder::new().name(format!("microrec-worker-{id}")).spawn({
                    let queue = Arc::clone(&queue);
                    let stats = Arc::clone(&stats);
                    match &plan {
                        None => {
                            let Some(engine) = lane_engines.pop() else {
                                // Unreachable: the pool is sized above.
                                queue.close();
                                for worker in workers {
                                    let _ = worker.join();
                                }
                                return Err(MicroRecError::Runtime(
                                    "worker engine pool exhausted".into(),
                                ));
                            };
                            Box::new(move || {
                                worker_loop_monolithic(engine, &queue, &stats, config);
                            }) as Box<dyn FnOnce() + Send>
                        }
                        Some(plan) => {
                            // Decompose this worker's replicas into stage
                            // lanes before spawning, so spawn failures and
                            // build failures surface here.
                            let executor = match PipelineExecutor::with_plan(lane_engines, plan) {
                                Ok(executor) => executor,
                                Err(e) => {
                                    queue.close();
                                    for worker in workers {
                                        let _ = worker.join();
                                    }
                                    return Err(e);
                                }
                            };
                            pipelines.push(Arc::clone(executor.shared()));
                            Box::new(move || {
                                worker_loop_pipelined(executor, &queue, &stats, config);
                            })
                        }
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(MicroRecError::Runtime(format!(
                        "failed to spawn worker {id}: {e}"
                    )));
                }
            }
        }
        // The adaptive driver: periodically snapshot the shared counters
        // (lock dropped before the resharder lock — the two are never held
        // together in the other order) and let the resharder decide. A
        // failed rebuild leaves the old generation serving and the driver
        // keeps watching the next window.
        let mut reshard_stop = None;
        let mut reshard_driver = None;
        if let Some(resharder) = &resharder {
            let stop = Arc::new(AtomicBool::new(false));
            let spawned = std::thread::Builder::new().name("microrec-reshard".into()).spawn({
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let resharder = Arc::clone(resharder);
                move || {
                    while !stop.load(Relaxed) {
                        std::thread::sleep(Duration::from_millis(RESHARD_POLL_MS));
                        let counters = lock_or_recover(&stats.lookup_tables).clone();
                        let mut resharder = lock_or_recover(&resharder);
                        // lint: allow(blocking-under-lock) a migration build blocks only this driver; engines read the epoch cell lock-free
                        let _ = resharder.evaluate(&counters.hits, &counters.misses);
                    }
                }
            });
            match spawned {
                Ok(handle) => {
                    reshard_driver = Some(handle);
                    reshard_stop = Some(stop);
                }
                Err(e) => {
                    queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(MicroRecError::Runtime(format!(
                        "failed to spawn the re-shard driver: {e}"
                    )));
                }
            }
        }
        Ok(ServingRuntime {
            queue,
            stats,
            config,
            resolved,
            plan,
            calibration,
            expected_arity,
            lookup_meta,
            pipelines,
            router: None,
            resharder,
            reshard_stop,
            reshard_driver,
            workers,
        })
    }

    /// Starts the routed runtime: each worker owns a full [`PathSet`]
    /// (the path matrix built from `builder`'s configuration); the first
    /// worker's startup calibration seeds a [`PathCostModel`] every
    /// worker shares, and each formed batch is routed to its
    /// predicted-fastest path with EWMA feedback and the SLO guard.
    ///
    /// Cache-backed lookup counters live inside individual paths here
    /// (split across cache-on and cache-off engines), so
    /// [`ServingRuntime::lookup_stats`] reports `None` under routed
    /// execution; [`ServingRuntime::router_snapshot`] carries the
    /// per-path accounting instead.
    fn start_routed(
        mut builder: MicroRecBuilder,
        config: RuntimeConfig,
    ) -> Result<Self, MicroRecError> {
        if config.adaptive {
            return Err(MicroRecError::Runtime(
                "adaptive re-sharding is not available under routed execution: per-table \
                 lookup counters live inside individual paths"
                    .into(),
            ));
        }
        builder.prepare_shared_arena()?;
        let spec = builder.model_spec();
        let expected_arity = spec.num_tables() * spec.lookups_per_table as usize;

        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let stats = Arc::new(SharedStats::default());
        let mut sets: Vec<PathSet> = Vec::with_capacity(config.workers);
        let mut shared_model: Option<Arc<Mutex<PathCostModel>>> = None;
        let mut pipelines = Vec::new();
        for _ in 0..config.workers {
            let set = match &shared_model {
                None => PathSet::build(&builder, config.max_batch)?,
                Some(model) => {
                    PathSet::build_shared(&builder, config.max_batch, Arc::clone(model))?
                }
            };
            if shared_model.is_none() {
                shared_model = Some(set.model());
            }
            pipelines.extend(set.pipeline_shared().iter().map(Arc::clone));
            sets.push(set);
        }
        let router = match shared_model {
            Some(model) => model,
            None => Arc::new(Mutex::new(PathCostModel::new(Vec::new()))),
        };

        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers);
        for (id, set) in sets.into_iter().enumerate() {
            let spawned =
                std::thread::Builder::new().name(format!("microrec-worker-{id}")).spawn({
                    let queue = Arc::clone(&queue);
                    let stats = Arc::clone(&stats);
                    move || {
                        worker_loop_routed(set, &queue, &stats, config);
                    }
                });
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    queue.close();
                    for worker in workers {
                        let _ = worker.join();
                    }
                    return Err(MicroRecError::Runtime(format!(
                        "failed to spawn worker {id}: {e}"
                    )));
                }
            }
        }
        Ok(ServingRuntime {
            queue,
            stats,
            config,
            resolved: ExecutionMode::Routed,
            plan: None,
            calibration: None,
            expected_arity,
            lookup_meta: None,
            pipelines,
            router: Some(router),
            resharder: None,
            reshard_stop: None,
            reshard_driver: None,
            workers,
        })
    }

    /// The active configuration (after clamping zero knobs to 1).
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The execution mode actually running. Equal to
    /// `config().execution` except under [`ExecutionMode::Auto`], which
    /// resolves to the calibrated winner at startup.
    #[must_use]
    pub fn resolved_execution(&self) -> ExecutionMode {
        self.resolved
    }

    /// The staged lane topology the workers run, or `None` under
    /// monolithic execution.
    #[must_use]
    pub fn plan(&self) -> Option<&PipelinePlan> {
        self.plan.as_ref()
    }

    /// The startup cost model, when the runtime calibrated (only under
    /// [`ExecutionMode::Auto`]).
    #[must_use]
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Per-path routing statistics (dispatch counts, predicted vs
    /// observed latency, SLO fallbacks), only under
    /// [`ExecutionMode::Routed`]. Valid both live and after shutdown.
    #[must_use]
    pub fn router_snapshot(&self) -> Option<RouterSnapshot> {
        self.router.as_ref().map(|model| lock_or_recover(model).snapshot())
    }

    /// Current admission-queue depth.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Submits one query for prediction.
    ///
    /// Under [`AdmissionPolicy::Block`] this blocks while the queue is
    /// full; under [`AdmissionPolicy::Reject`] it fails fast and the drop
    /// is counted.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BadQuery`] for a wrong-arity query (checked before
    /// admission), [`RuntimeError::Rejected`] on a full queue under the
    /// reject policy, [`RuntimeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, query: Vec<u64>) -> Result<PendingPrediction, RuntimeError> {
        if query.len() != self.expected_arity {
            return Err(RuntimeError::BadQuery {
                expected: self.expected_arity,
                actual: query.len(),
            });
        }
        let slot = Slot::new();
        let request = Request { query, enqueued_at: Instant::now(), slot: Arc::clone(&slot) };
        match self.config.admission {
            AdmissionPolicy::Block => {
                if self.queue.push_blocking(request).is_err() {
                    return Err(RuntimeError::ShuttingDown);
                }
            }
            AdmissionPolicy::Reject => match self.queue.try_push(request) {
                Ok(()) => {}
                Err(PushError::Full(_)) => {
                    self.stats.rejected.fetch_add(1, Relaxed);
                    return Err(RuntimeError::Rejected);
                }
                Err(PushError::Closed(_)) => return Err(RuntimeError::ShuttingDown),
            },
        }
        self.stats.admitted.fetch_add(1, Relaxed);
        Ok(PendingPrediction { slot })
    }

    /// Reads the current counters and latency percentiles.
    #[must_use]
    pub fn snapshot(&self) -> RuntimeSnapshot {
        let hist = lock_or_recover(&self.stats.hist);
        let batches = self.stats.batches.load(Relaxed);
        let completed = self.stats.completed.load(Relaxed);
        let failed = self.stats.failed.load(Relaxed);
        RuntimeSnapshot {
            admitted: self.stats.admitted.load(Relaxed),
            rejected: self.stats.rejected.load(Relaxed),
            completed,
            failed,
            batches,
            size_closes: self.stats.size_closes.load(Relaxed),
            deadline_closes: self.stats.deadline_closes.load(Relaxed),
            drain_closes: self.stats.drain_closes.load(Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                (completed + failed) as f64 / batches as f64
            },
            mean_latency_us: hist.mean_us(),
            latency: hist.percentiles(),
            stages: self.merged_stage_stats(),
        }
    }

    /// Per-stage pipeline counters summed across workers (stage `i` of
    /// every worker contributes to entry `i`), or `None` under monolithic
    /// execution. `lanes` is a topology fact, identical across workers,
    /// so it is carried through rather than summed.
    fn merged_stage_stats(&self) -> Option<Vec<StageSnapshot>> {
        let first = self.pipelines.first()?;
        let mut merged = first.snapshots();
        for shared in &self.pipelines[1..] {
            for (total, stage) in merged.iter_mut().zip(shared.snapshots()) {
                total.items += stage.items;
                total.stalls += stage.stalls;
                total.backpressure += stage.backpressure;
                total.occupancy_sum += stage.occupancy_sum;
            }
        }
        Some(merged)
    }

    /// A copy of the completion-latency histogram (for reports that need
    /// more than the standard percentiles).
    #[must_use]
    pub fn histogram(&self) -> LatencyHistogram {
        lock_or_recover(&self.stats.hist).clone()
    }

    /// Aggregated embedding-lookup cache statistics across workers, or
    /// `None` when the engines run without a hot-row cache.
    #[must_use]
    pub fn lookup_stats(&self) -> Option<RuntimeLookupStats> {
        let (format, cache_rows, tiered) = self.lookup_meta?;
        let tables = lock_or_recover(&self.stats.lookup_tables).clone();
        Some(RuntimeLookupStats {
            format,
            cache_rows,
            hits: tables.hits.iter().sum(),
            misses: tables.misses.iter().sum(),
            bytes_from_cache: self.stats.lookup_bytes_from_cache.load(Relaxed),
            bytes_from_memory: self.stats.lookup_bytes_from_memory.load(Relaxed),
            per_table_hits: tables.hits,
            per_table_misses: tables.misses,
            tiered,
            resident_hits: self.stats.tier_resident_hits.load(Relaxed),
            cold_reads: self.stats.tier_cold_reads.load(Relaxed),
            prefetch_hits: self.stats.tier_prefetch_hits.load(Relaxed),
            bytes_from_cold: self.stats.tier_bytes_from_cold.load(Relaxed),
            cold_errors: self.stats.tier_cold_errors.load(Relaxed),
        })
    }

    /// Every migration the adaptive driver (or [`Self::migrate_now`])
    /// performed so far, oldest first. Empty when the runtime is not
    /// adaptive.
    #[must_use]
    pub fn migration_records(&self) -> Vec<MigrationRecord> {
        self.resharder.as_ref().map_or_else(Vec::new, |r| lock_or_recover(r).records().to_vec())
    }

    /// Memory channel of each logical table under the plan the adaptive
    /// driver currently serves, or `None` when adaptive re-sharding is
    /// disabled. The cold-table tie-breaks move with counter noise, so a
    /// workload that wants to stress the co-located pair must observe the
    /// assignment rather than predict it.
    #[must_use]
    pub fn resharding_channels(&self) -> Option<Vec<usize>> {
        self.resharder.as_ref().map(|r| lock_or_recover(r).channels().to_vec())
    }

    /// Replaces the adaptive driver's [`ReshardingPolicy`] (applies from
    /// its next evaluation). A no-op on a non-adaptive runtime.
    pub fn set_resharding_policy(&self, policy: ReshardingPolicy) {
        if let Some(resharder) = &self.resharder {
            lock_or_recover(resharder).set_policy(policy);
        }
    }

    /// Forces one re-shard evaluation from the current counters with the
    /// traffic, divergence, and cooldown gates skipped. Returns whether a
    /// migration was published (`Ok(false)` when the observed profile
    /// changes nothing).
    ///
    /// # Errors
    ///
    /// [`MicroRecError::Runtime`] when the runtime is not adaptive, or if
    /// the rebuild fails (the old generation keeps serving).
    pub fn migrate_now(&self) -> Result<bool, MicroRecError> {
        let resharder = self.resharder.as_ref().ok_or_else(|| {
            MicroRecError::Runtime("adaptive re-sharding is not enabled on this runtime".into())
        })?;
        let counters = lock_or_recover(&self.stats.lookup_tables).clone();
        // lint: allow(blocking-under-lock) a forced migration build blocks only the caller; engines read the epoch cell lock-free
        lock_or_recover(resharder).force_migrate(&counters.hits, &counters.misses)
    }

    /// Shuts down: stops and joins the adaptive driver, closes the queue
    /// (new submits fail, blocked producers wake), waits for workers to
    /// drain every admitted request, and joins them. Idempotent. Returns
    /// the final snapshot.
    pub fn shutdown(&mut self) -> RuntimeSnapshot {
        if let Some(stop) = &self.reshard_stop {
            stop.store(true, Relaxed);
        }
        if let Some(driver) = self.reshard_driver.take() {
            let _ = driver.join();
        }
        self.queue.close();
        for worker in self.workers.drain(..) {
            // A worker that panicked already abandoned its requests; the
            // runtime's own counters remain valid.
            let _ = worker.join();
        }
        self.snapshot()
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Steady-state loop of one worker: pop a micro-batch, run it through the
/// private engine replica, deliver results, record latencies.
fn worker_loop_monolithic(
    mut engine: MicroRec,
    queue: &BoundedQueue<Request>,
    stats: &SharedStats,
    config: RuntimeConfig,
) {
    let wait = Duration::from_micros(config.max_wait_us);
    let mut queries: Vec<Vec<u64>> = Vec::with_capacity(config.max_batch);
    // Previous cache-counter readings, so each batch publishes only its
    // delta to the shared stats (buffers sized here, before the loop, to
    // keep the steady state allocation-free).
    let tables = engine.hot_row_cache().map_or(0, |c| c.per_table_hits().len());
    let mut prev_hits: Vec<u64> = Vec::with_capacity(tables);
    let mut prev_misses: Vec<u64> = Vec::with_capacity(tables);
    prev_hits.resize(tables, 0);
    prev_misses.resize(tables, 0);
    let mut prev_bytes = (0u64, 0u64);
    let mut prev_tier = microrec_embedding::TierCounters::default();
    while let Some((mut batch, close)) = queue.pop_batch(config.max_batch, |r| r.enqueued_at + wait)
    {
        stats.batches.fetch_add(1, Relaxed);
        match close {
            BatchClose::Size => stats.size_closes.fetch_add(1, Relaxed),
            BatchClose::Deadline => stats.deadline_closes.fetch_add(1, Relaxed),
            BatchClose::Drain => stats.drain_closes.fetch_add(1, Relaxed),
        };
        queries.clear();
        // Move each query out of its request (the producer's allocation is
        // reused) so the steady-state loop stays allocation-free.
        queries.extend(batch.iter_mut().map(|r| std::mem::take(&mut r.query)));
        match engine.predict_batch(&queries) {
            Ok(ctrs) => {
                let now = Instant::now();
                let mut hist = lock_or_recover(&stats.hist);
                for request in &batch {
                    hist.record_duration(now.saturating_duration_since(request.enqueued_at));
                }
                drop(hist);
                stats.completed.fetch_add(batch.len() as u64, Relaxed);
                for (request, ctr) in batch.into_iter().zip(ctrs) {
                    request.slot.fulfill(Ok(ctr));
                }
            }
            Err(_) => {
                // One malformed query must not poison its batch-mates:
                // fall back to per-item prediction and fail only the
                // offending requests.
                for (request, query) in batch.into_iter().zip(&queries) {
                    match engine.predict(query) {
                        Ok(ctr) => {
                            let elapsed = request.enqueued_at.elapsed();
                            lock_or_recover(&stats.hist).record_duration(elapsed);
                            stats.completed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Ok(ctr));
                        }
                        Err(e) => {
                            stats.failed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Err(RuntimeError::Failed(e.to_string())));
                        }
                    }
                }
            }
        }
        // Publish this batch's cache-counter deltas to the shared stats.
        if let Some(cache) = engine.hot_row_cache() {
            let mut shared = lock_or_recover(&stats.lookup_tables);
            for ((&h, prev), slot) in
                cache.per_table_hits().iter().zip(&mut prev_hits).zip(&mut shared.hits)
            {
                *slot += h - *prev;
                *prev = h;
            }
            for ((&m, prev), slot) in
                cache.per_table_misses().iter().zip(&mut prev_misses).zip(&mut shared.misses)
            {
                *slot += m - *prev;
                *prev = m;
            }
            drop(shared);
            let (bc, bm) = (cache.bytes_from_cache(), cache.bytes_from_memory());
            stats.lookup_bytes_from_cache.fetch_add(bc - prev_bytes.0, Relaxed);
            stats.lookup_bytes_from_memory.fetch_add(bm - prev_bytes.1, Relaxed);
            prev_bytes = (bc, bm);
        }
        // Tiered engines additionally publish per-tier deltas. Without a
        // cache the tier counters are also the only source of the total
        // bytes-from-memory figure (with one, the cache block above
        // already counted every miss's source bytes).
        if engine.is_tiered() {
            let now = engine.tier_counters();
            let delta = now.delta_since(&prev_tier);
            stats.tier_resident_hits.fetch_add(delta.resident_hits, Relaxed);
            stats.tier_cold_reads.fetch_add(delta.cold_reads, Relaxed);
            stats.tier_prefetch_hits.fetch_add(delta.prefetch_hits, Relaxed);
            stats.tier_bytes_from_cold.fetch_add(delta.bytes_from_cold, Relaxed);
            stats.tier_cold_errors.fetch_add(delta.cold_errors, Relaxed);
            if engine.hot_row_cache().is_none() {
                stats
                    .lookup_bytes_from_memory
                    .fetch_add(delta.bytes_from_resident + delta.bytes_from_cold, Relaxed);
            }
            prev_tier = now;
        }
    }
}

/// Steady-state loop of one pipelined worker: pop a micro-batch, stream
/// it through the staged dataflow executor, deliver results, record
/// latencies.
///
/// Hot-row-cache counters live inside the lookup lanes' engines (they
/// moved onto the stage threads), so unlike the monolithic loop they
/// cannot be published per batch; each lane's totals land in the shared
/// stats exactly once, when the drain completes and
/// [`PipelineExecutor::shutdown_all`] hands every lane engine back.
fn worker_loop_pipelined(
    mut executor: PipelineExecutor,
    queue: &BoundedQueue<Request>,
    stats: &SharedStats,
    config: RuntimeConfig,
) {
    let wait = Duration::from_micros(config.max_wait_us);
    let mut queries: Vec<Vec<u64>> = Vec::with_capacity(config.max_batch);
    while let Some((mut batch, close)) = queue.pop_batch(config.max_batch, |r| r.enqueued_at + wait)
    {
        stats.batches.fetch_add(1, Relaxed);
        match close {
            BatchClose::Size => stats.size_closes.fetch_add(1, Relaxed),
            BatchClose::Deadline => stats.deadline_closes.fetch_add(1, Relaxed),
            BatchClose::Drain => stats.drain_closes.fetch_add(1, Relaxed),
        };
        queries.clear();
        queries.extend(batch.iter_mut().map(|r| std::mem::take(&mut r.query)));
        match executor.predict_batch(&queries) {
            Ok(ctrs) => {
                let now = Instant::now();
                let mut hist = lock_or_recover(&stats.hist);
                for request in &batch {
                    hist.record_duration(now.saturating_duration_since(request.enqueued_at));
                }
                drop(hist);
                stats.completed.fetch_add(batch.len() as u64, Relaxed);
                for (request, ctr) in batch.into_iter().zip(ctrs) {
                    request.slot.fulfill(Ok(ctr));
                }
            }
            Err(_) => {
                // Same contract as the monolithic loop: one malformed
                // query fails alone, its batch-mates still complete.
                for (request, query) in batch.into_iter().zip(&queries) {
                    match executor.predict(query) {
                        Ok(ctr) => {
                            let elapsed = request.enqueued_at.elapsed();
                            lock_or_recover(&stats.hist).record_duration(elapsed);
                            stats.completed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Ok(ctr));
                        }
                        Err(e) => {
                            stats.failed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Err(RuntimeError::Failed(e.to_string())));
                        }
                    }
                }
            }
        }
    }
    // Queue drained: stop the stages and publish the cache totals each
    // lookup lane's engine accumulated. Every lane publishes exactly once
    // here — its own totals, never another lane's — so the shared counts
    // are a plain sum with no double-counting. A lane that panicked is
    // absent from the list and its counters died with it.
    for engine in executor.shutdown_all() {
        if let Some(cache) = engine.hot_row_cache() {
            let mut shared = lock_or_recover(&stats.lookup_tables);
            for (&h, slot) in cache.per_table_hits().iter().zip(&mut shared.hits) {
                *slot += h;
            }
            for (&m, slot) in cache.per_table_misses().iter().zip(&mut shared.misses) {
                *slot += m;
            }
            drop(shared);
            stats.lookup_bytes_from_cache.fetch_add(cache.bytes_from_cache(), Relaxed);
            stats.lookup_bytes_from_memory.fetch_add(cache.bytes_from_memory(), Relaxed);
        }
        if engine.is_tiered() {
            let tier = engine.tier_counters();
            stats.tier_resident_hits.fetch_add(tier.resident_hits, Relaxed);
            stats.tier_cold_reads.fetch_add(tier.cold_reads, Relaxed);
            stats.tier_prefetch_hits.fetch_add(tier.prefetch_hits, Relaxed);
            stats.tier_bytes_from_cold.fetch_add(tier.bytes_from_cold, Relaxed);
            stats.tier_cold_errors.fetch_add(tier.cold_errors, Relaxed);
            if engine.hot_row_cache().is_none() {
                stats
                    .lookup_bytes_from_memory
                    .fetch_add(tier.bytes_from_resident + tier.bytes_from_cold, Relaxed);
            }
        }
    }
}

/// Steady-state loop of one routed worker: pop a micro-batch, ask the
/// shared cost model for the predicted-fastest path, run the batch
/// there, and feed the observed latency back.
///
/// The SLO guard activates when `config.slo_us > 0`: each batch's
/// remaining budget is the objective minus the oldest request's queue
/// age, and a batch whose predicted cost overruns it takes the measured
/// lowest-latency path instead. Overload (admission queue ≥ 3/4 full)
/// suppresses probe dispatches and tightens the cold-cache degrade.
fn worker_loop_routed(
    mut set: PathSet,
    queue: &BoundedQueue<Request>,
    stats: &SharedStats,
    config: RuntimeConfig,
) {
    let wait = Duration::from_micros(config.max_wait_us);
    let overload_depth = config.queue_depth - config.queue_depth / 4;
    let mut queries: Vec<Vec<u64>> = Vec::with_capacity(config.max_batch);
    while let Some((mut batch, close)) = queue.pop_batch(config.max_batch, |r| r.enqueued_at + wait)
    {
        stats.batches.fetch_add(1, Relaxed);
        match close {
            BatchClose::Size => stats.size_closes.fetch_add(1, Relaxed),
            BatchClose::Deadline => stats.deadline_closes.fetch_add(1, Relaxed),
            BatchClose::Drain => stats.drain_closes.fetch_add(1, Relaxed),
        };
        queries.clear();
        queries.extend(batch.iter_mut().map(|r| std::mem::take(&mut r.query)));
        // Remaining SLO budget, from the oldest request in the batch
        // (pop_batch preserves arrival order).
        let remaining_us = if config.slo_us > 0 {
            let age_us = batch.first().map_or(0.0, |r| r.enqueued_at.elapsed().as_secs_f64() * 1e6);
            Some(config.slo_us as f64 - age_us)
        } else {
            None
        };
        let overload = queue.len() >= overload_depth;
        let decision = set.route(&queries, remaining_us, overload);
        let started = Instant::now();
        match set.predict_batch_on(decision.path, &queries) {
            Ok(ctrs) => {
                set.observe(&decision, queries.len(), started.elapsed().as_secs_f64() * 1e6);
                let now = Instant::now();
                let mut hist = lock_or_recover(&stats.hist);
                for request in &batch {
                    hist.record_duration(now.saturating_duration_since(request.enqueued_at));
                }
                drop(hist);
                stats.completed.fetch_add(batch.len() as u64, Relaxed);
                for (request, ctr) in batch.into_iter().zip(ctrs) {
                    request.slot.fulfill(Ok(ctr));
                }
            }
            Err(_) => {
                // Same contract as the other loops: one malformed query
                // fails alone. The per-item fallback runs on path 0 (the
                // monolithic engine, always registered first); no
                // feedback is recorded for the failed batch.
                for (request, query) in batch.into_iter().zip(&queries) {
                    match set.predict_on(0, query) {
                        Ok(ctr) => {
                            let elapsed = request.enqueued_at.elapsed();
                            lock_or_recover(&stats.hist).record_duration(elapsed);
                            stats.completed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Ok(ctr));
                        }
                        Err(e) => {
                            stats.failed.fetch_add(1, Relaxed);
                            request.slot.fulfill(Err(RuntimeError::Failed(e.to_string())));
                        }
                    }
                }
            }
        }
    }
    // Queue drained: join the staged paths' stage threads.
    set.shutdown();
}

#[cfg(test)]
mod poison_tests {
    use super::*;

    #[test]
    fn fulfilled_slot_survives_a_poisoned_result_lock() {
        // A waiter-side panic with the result lock held poisons the slot;
        // the worker's `fulfill` and a later `wait` must both recover it.
        let slot = Slot::new();
        let holder = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _guard = holder.result.lock().unwrap();
            panic!("waiter dies holding the slot lock");
        })
        .join();
        assert!(slot.result.is_poisoned());
        slot.fulfill(Ok(0.25));
        let pending = PendingPrediction { slot };
        assert_eq!(pending.wait(), Ok(0.25));
    }

    #[test]
    fn snapshot_and_histogram_survive_a_poisoned_histogram_lock() {
        let stats = SharedStats::default();
        lock_or_recover(&stats.hist).record_us(100.0);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = stats.hist.lock().unwrap();
                    panic!("recorder dies holding the histogram lock");
                })
                .join()
        });
        assert!(stats.hist.is_poisoned());
        // The recorded sample is still readable through the poisoned lock.
        assert!(lock_or_recover(&stats.hist).mean_us() > 0.0);
    }
}
