//! Quickstart: build the MicroRec engine for the small Alibaba production
//! model, run one inference, and print what the paper's headline numbers
//! look like in the simulator.
//!
//! Run with: `cargo run --example quickstart`

use microrec_core::MicroRec;
use microrec_cpu::CpuTimingModel;
use microrec_embedding::{ModelSpec, Precision};
use microrec_workload::{QueryGenConfig, QueryGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The model: 47 embedding tables, 352-dim feature, (1024,512,256)
    //    top MLP — the paper's "smaller recommendation model".
    let model = ModelSpec::small_production();
    println!(
        "model: {} ({} tables, {} features, {:.1} GB)",
        model.name,
        model.num_tables(),
        model.feature_len(),
        model.total_bytes(Precision::F32) as f64 / 1e9
    );

    // 2. Build the engine: runs Algorithm 1 (Cartesian merging + hybrid
    //    memory placement) and assembles the pipelined accelerator.
    let mut engine = MicroRec::builder(model.clone()).precision(Precision::Fixed16).build()?;
    let cost = engine.placement_cost();
    println!(
        "placement: {} physical tables, {} in DRAM, {} on chip, {} DRAM round(s), lookup {}",
        engine.plan().num_tables(),
        cost.tables_in_dram,
        cost.tables_on_chip,
        cost.dram_rounds,
        cost.lookup_latency,
    );

    // 3. One real inference through the simulated datapath.
    let mut queries = QueryGenerator::new(&model, QueryGenConfig::default())?;
    let query = queries.next_query();
    let ctr = engine.predict(&query)?;
    println!("predicted CTR: {ctr:.4}");

    // 4. The headline comparison.
    let cpu = CpuTimingModel::aws_16vcpu();
    let cpu_latency = cpu.total_time(&model, 2048);
    println!(
        "latency:   MicroRec {} per item vs CPU {:.1} ms per 2048-batch",
        engine.latency(),
        cpu_latency.as_ms()
    );
    println!(
        "throughput: MicroRec {:.0} items/s vs CPU {:.0} items/s ({:.1}x)",
        engine.throughput_items_per_sec(),
        cpu.throughput_items_per_sec(&model, 2048),
        cpu_latency.as_ns() / engine.batch_latency(2048).as_ns(),
    );
    Ok(())
}
