//! Seeded violation: panicking calls on the serving path.

pub fn serve(values: &[f32]) -> f32 {
    let first = values.first().unwrap();
    if first.is_nan() {
        panic!("NaN reached the serving path");
    }
    *first
}
