//! Online-serving simulation: offered load → response-time distribution.
//!
//! §4.1's argument is about *serving*, not raw throughput: a batching CPU
//! engine must hold queries until a batch fills, while the deep pipeline
//! admits each query the moment a slot frees. These helpers drive both
//! disciplines with the same arrival trace — the MicroRec side through the
//! event-driven [`FlowSim`] over its actual pipeline stages — and report
//! SLA-oriented statistics.

use microrec_accel::FlowSim;
use microrec_cpu::CpuTimingModel;
use microrec_embedding::ModelSpec;
use microrec_memsim::SimTime;
use microrec_workload::{simulate_batched_serving, LatencyStats, WorkloadError};

use crate::engine::MicroRec;
use crate::runtime::{LatencyHistogram, LatencyPercentiles};

/// Response-time summary of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingReport {
    /// Latency percentiles.
    pub latency: LatencyStats,
    /// Tail percentiles (p50/p95/p99/p999) from the fixed-bucket
    /// histogram the live runtime also uses, in microseconds.
    pub tail: LatencyPercentiles,
    /// Fraction of queries answered within the SLA.
    pub sla_hit_rate: f64,
    /// Served queries per second over the simulated span.
    pub throughput: f64,
}

/// Folds simulated latencies into the runtime's histogram representation.
pub(crate) fn tail_percentiles(latencies: &[SimTime]) -> LatencyPercentiles {
    let mut hist = LatencyHistogram::new();
    for l in latencies {
        hist.record_us(l.as_us());
    }
    hist.percentiles()
}

fn report(
    latencies: &[SimTime],
    span: SimTime,
    sla: SimTime,
) -> Result<ServingReport, WorkloadError> {
    Ok(ServingReport {
        latency: LatencyStats::from_samples(latencies)?,
        tail: tail_percentiles(latencies),
        sla_hit_rate: LatencyStats::sla_hit_rate(latencies, sla),
        throughput: if span.is_zero() {
            f64::INFINITY
        } else {
            latencies.len() as f64 / span.as_secs()
        },
    })
}

/// Serves `arrivals` through `engine`'s pipeline (item-by-item, FIFO depth
/// 2) and summarizes against `sla`.
///
/// # Errors
///
/// Returns [`WorkloadError::NoSamples`] for an empty trace.
pub fn simulate_microrec_serving(
    engine: &MicroRec,
    arrivals: &[SimTime],
    sla: SimTime,
) -> Result<ServingReport, WorkloadError> {
    let sim = FlowSim::new(engine.pipeline(), 2);
    let flow = sim.run(arrivals);
    report(&flow.latencies, flow.makespan(), sla)
}

/// Serves `arrivals` through the CPU baseline with batch aggregation
/// (`batch_size` queries or `max_wait`, whichever first) and summarizes
/// against `sla`.
///
/// # Errors
///
/// Returns [`WorkloadError::NoSamples`] for an empty trace.
pub fn simulate_cpu_serving(
    model: &ModelSpec,
    cpu: &CpuTimingModel,
    batch_size: usize,
    max_wait: SimTime,
    arrivals: &[SimTime],
    sla: SimTime,
) -> Result<ServingReport, WorkloadError> {
    let service = cpu.total_time(model, batch_size as u64);
    let latencies = simulate_batched_serving(arrivals, batch_size, max_wait, service);
    let span = arrivals.last().copied().unwrap_or(SimTime::ZERO)
        + latencies.iter().copied().max().unwrap_or(SimTime::ZERO);
    report(&latencies, span, sla)
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::Precision;
    use microrec_workload::PoissonArrivals;

    #[test]
    fn microrec_meets_sla_that_cpu_misses() {
        let model = ModelSpec::small_production();
        let engine =
            MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().unwrap();
        let cpu = CpuTimingModel::aws_16vcpu();
        let mut arrivals = PoissonArrivals::new(50_000.0, 3).unwrap();
        let trace = arrivals.take(10_000);
        let sla = SimTime::from_ms(20.0);

        let fpga = simulate_microrec_serving(&engine, &trace, sla).unwrap();
        let cpu_report =
            simulate_cpu_serving(&model, &cpu, 2048, SimTime::from_ms(15.0), &trace, sla).unwrap();
        assert!(fpga.sla_hit_rate > 0.999, "fpga hit {}", fpga.sla_hit_rate);
        assert!(fpga.latency.p99 < cpu_report.latency.p50);
        assert!(fpga.latency.p99.as_us() < 100.0);
    }

    #[test]
    fn overload_shows_up_as_latency_growth() {
        let model = ModelSpec::small_production();
        let engine =
            MicroRec::builder(model.clone()).precision(Precision::Fixed16).build().unwrap();
        // Offer 2x the pipeline's capacity.
        let capacity = engine.throughput_items_per_sec();
        let mut arrivals = PoissonArrivals::new(capacity * 2.0, 5).unwrap();
        let trace = arrivals.take(5_000);
        let sla = SimTime::from_ms(20.0);
        let loaded = simulate_microrec_serving(&engine, &trace, sla).unwrap();
        let mut light = PoissonArrivals::new(capacity * 0.5, 5).unwrap();
        let light_trace = light.take(5_000);
        let light_report = simulate_microrec_serving(&engine, &light_trace, sla).unwrap();
        assert!(loaded.latency.p99 > light_report.latency.p99 * 4);
        // Under overload the pipeline still drains at its capacity.
        assert!((loaded.throughput - capacity).abs() / capacity < 0.1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        let model = ModelSpec::dlrm_rmc2(4, 4);
        let engine = MicroRec::builder(model).build().unwrap();
        assert!(matches!(
            simulate_microrec_serving(&engine, &[], SimTime::from_ms(1.0)),
            Err(WorkloadError::NoSamples)
        ));
    }
}
