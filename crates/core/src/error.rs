//! Error type for the MicroRec engine.

use std::error::Error;
use std::fmt;

use microrec_accel::AccelError;
use microrec_dnn::DnnError;
use microrec_embedding::EmbeddingError;
use microrec_memsim::MemsimError;
use microrec_placement::PlacementError;

/// Errors returned by the MicroRec engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum MicroRecError {
    /// Embedding-layer error.
    Embedding(EmbeddingError),
    /// Placement search/allocation error.
    Placement(PlacementError),
    /// Memory simulator error.
    Memory(MemsimError),
    /// DNN substrate error.
    Dnn(DnnError),
    /// Accelerator model error.
    Accel(AccelError),
    /// Serving-runtime error (e.g. a worker thread could not be spawned).
    Runtime(String),
}

impl fmt::Display for MicroRecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroRecError::Embedding(e) => write!(f, "embedding error: {e}"),
            MicroRecError::Placement(e) => write!(f, "placement error: {e}"),
            MicroRecError::Memory(e) => write!(f, "memory error: {e}"),
            MicroRecError::Dnn(e) => write!(f, "dnn error: {e}"),
            MicroRecError::Accel(e) => write!(f, "accelerator error: {e}"),
            MicroRecError::Runtime(msg) => write!(f, "runtime error: {msg}"),
        }
    }
}

impl Error for MicroRecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MicroRecError::Embedding(e) => Some(e),
            MicroRecError::Placement(e) => Some(e),
            MicroRecError::Memory(e) => Some(e),
            MicroRecError::Dnn(e) => Some(e),
            MicroRecError::Accel(e) => Some(e),
            MicroRecError::Runtime(_) => None,
        }
    }
}

impl From<EmbeddingError> for MicroRecError {
    fn from(e: EmbeddingError) -> Self {
        MicroRecError::Embedding(e)
    }
}
impl From<PlacementError> for MicroRecError {
    fn from(e: PlacementError) -> Self {
        MicroRecError::Placement(e)
    }
}
impl From<MemsimError> for MicroRecError {
    fn from(e: MemsimError) -> Self {
        MicroRecError::Memory(e)
    }
}
impl From<DnnError> for MicroRecError {
    fn from(e: DnnError) -> Self {
        MicroRecError::Dnn(e)
    }
}
impl From<AccelError> for MicroRecError {
    fn from(e: AccelError) -> Self {
        MicroRecError::Accel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: MicroRecError = EmbeddingError::DegenerateProduct.into();
        assert!(e.source().is_some());
        let e: MicroRecError = DnnError::EmptyNetwork.into();
        assert!(e.to_string().contains("dnn"));
        let e: MicroRecError = PlacementError::Infeasible("x".into()).into();
        assert!(e.to_string().contains("placement"));
    }
}
