//! JSON round-trip tests: specs, plans, and reports survive JSON
//! serialization unchanged (the CLI's `--json` output and any downstream
//! tooling depend on this).

use microrec_embedding::{MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{BankId, MemoryConfig, MemoryKind, SimTime};
use microrec_placement::{allocate, Plan};

#[test]
fn model_specs_round_trip() {
    for model in [
        ModelSpec::small_production(),
        ModelSpec::large_production(),
        ModelSpec::dlrm_rmc2(8, 16),
        ModelSpec::dlrm_with_bottom(8, 16),
    ] {
        let json = microrec_json::to_string(&model);
        let back: ModelSpec = microrec_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}

#[test]
fn old_specs_without_bottom_field_still_parse() {
    // `bottom_hidden` is a defaulted field: JSON written
    // before the field existed must still load.
    let json = r#"{
        "name": "legacy",
        "tables": [{"name": "t0", "rows": 100, "dim": 4}],
        "dense_dim": 0,
        "hidden": [16],
        "lookups_per_table": 1
    }"#;
    let model: ModelSpec = microrec_json::from_str(json).unwrap();
    assert!(!model.has_bottom_mlp());
    model.validate().unwrap();
}

#[test]
fn plans_round_trip_and_stay_valid() {
    let model = ModelSpec::new(
        "rt",
        (0..6).map(|i| TableSpec::new(format!("t{i}"), 500 + i as u64, 8)).collect(),
        vec![16],
        1,
    );
    let config = MemoryConfig::u280();
    let plan = allocate(&model, &MergePlan::pairs(&[(0, 1)]), &config, Precision::F32).unwrap();
    let json = microrec_json::to_string_pretty(&plan);
    let back: Plan = microrec_json::from_str(&json).unwrap();
    assert_eq!(plan, back);
    back.validate(&model, &config).unwrap();
    // Costs agree after the round trip.
    assert_eq!(plan.cost(&config, 1), back.cost(&config, 1));
}

#[test]
fn memory_config_round_trips() {
    for config in
        [MemoryConfig::u280(), MemoryConfig::cpu_server(), MemoryConfig::fpga_without_hbm(2)]
    {
        let json = microrec_json::to_string(&config);
        let back: MemoryConfig = microrec_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}

#[test]
fn simtime_serializes_as_integer_picoseconds() {
    let t = SimTime::from_ns(123.456);
    let json = microrec_json::to_string(&t);
    assert_eq!(json, "123456");
    let back: SimTime = microrec_json::from_str(&json).unwrap();
    assert_eq!(t, back);
}

#[test]
fn bank_ids_are_stable_identifiers() {
    let id = BankId::new(MemoryKind::Hbm, 31);
    let json = microrec_json::to_string(&id);
    let back: BankId = microrec_json::from_str(&json).unwrap();
    assert_eq!(id, back);
    assert!(json.contains("Hbm"), "{json}");
}
