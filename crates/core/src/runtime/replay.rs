//! Real-time trace replay against a live [`ServingRuntime`].
//!
//! A [`RequestTrace`](microrec_workload::RequestTrace) carries virtual
//! arrival instants (seeded Poisson or explicit). Replaying paces each
//! submission to its arrival offset on the wall clock — sleep for the bulk
//! of the gap, spin for the final stretch so pacing error stays in the
//! tens of microseconds — which makes offered load a real, measurable
//! thing: the runtime's queue grows and drains exactly as it would under
//! live traffic at that rate.

use std::time::{Duration, Instant};

use microrec_workload::RequestTrace;

use super::{PendingPrediction, RuntimeError, RuntimeSnapshot, ServingRuntime};

/// Result of replaying one trace through a runtime.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Requests in the trace.
    pub offered: usize,
    /// Offered load implied by the trace span (queries per second).
    pub offered_qps: f64,
    /// Requests that produced a prediction.
    pub completed: usize,
    /// Requests refused at admission (reject policy or shutdown).
    pub rejected: usize,
    /// Wall-clock span from first submission to last completion (seconds).
    pub wall_secs: f64,
    /// Sustained completion rate (`completed / wall_secs`).
    pub qps: f64,
    /// Per-request predictions in trace order; `None` for requests that
    /// were rejected or failed.
    pub results: Vec<Option<f32>>,
    /// The runtime's counters and percentiles after the replay.
    pub snapshot: RuntimeSnapshot,
}

/// Sleeps (coarse) then spins (fine) until `target`.
fn pace_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remaining = target - now;
        if remaining > Duration::from_micros(300) {
            // Leave a margin for sleep overshoot; the spin absorbs it.
            std::thread::sleep(remaining - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Replays `trace` through `runtime` in real time: each query is submitted
/// at its arrival offset from the replay start, then all admitted requests
/// are awaited.
///
/// The producer runs on the calling thread. Under
/// [`AdmissionPolicy::Block`](super::AdmissionPolicy::Block) a full queue
/// delays subsequent submissions (backpressure skews pacing, as it would a
/// real client); under [`AdmissionPolicy::Reject`](super::AdmissionPolicy::Reject)
/// pacing is preserved and overflow shows up in
/// [`ReplayOutcome::rejected`].
#[must_use]
pub fn replay_trace(runtime: &ServingRuntime, trace: &RequestTrace) -> ReplayOutcome {
    let start = Instant::now();
    let mut pending: Vec<(usize, PendingPrediction)> = Vec::with_capacity(trace.len());
    let mut results: Vec<Option<f32>> = vec![None; trace.len()];
    let mut rejected = 0usize;
    for (i, (arrival, query)) in trace.iter().enumerate() {
        pace_until(start + Duration::from_secs_f64(arrival.as_secs()));
        match runtime.submit(query.to_vec()) {
            Ok(p) => pending.push((i, p)),
            Err(RuntimeError::Rejected | RuntimeError::ShuttingDown) => rejected += 1,
            Err(RuntimeError::BadQuery { .. } | RuntimeError::Failed(_)) => {}
        }
    }
    for (i, p) in pending {
        if let Ok(ctr) = p.wait() {
            results[i] = Some(ctr);
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();
    let completed = results.iter().flatten().count();
    ReplayOutcome {
        offered: trace.len(),
        offered_qps: trace.offered_rate(),
        completed,
        rejected,
        wall_secs,
        qps: if wall_secs > 0.0 { completed as f64 / wall_secs } else { 0.0 },
        results,
        snapshot: runtime.snapshot(),
    }
}
