//! Extension study: what would a smarter memory controller buy?
//!
//! The paper's HLS/Vitis AXI controller services one outstanding read per
//! channel (its own Table 5 scales perfectly linearly in accesses per
//! channel). Real DRAM channels have 16 internal banks whose activations
//! can overlap under an FR-FCFS-style scheduler. This bench replays the
//! production models' per-channel request streams under both disciplines.

use microrec_bench::print_table;
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::{
    schedule_channel, BankRequest, DetailedTiming, MemoryConfig, SchedulerPolicy,
};
use microrec_placement::{heuristic_search, HeuristicOptions};

fn main() {
    let timing = DetailedTiming::hbm2();
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for merge in [false, true] {
            let out = heuristic_search(
                &model,
                &MemoryConfig::u280(),
                Precision::F32,
                &HeuristicOptions { allow_merge: merge, ..Default::default() },
            )
            .expect("placement");
            // Build each DRAM channel's request stream (one read per table
            // on that channel, spread over internal banks by table index).
            let mut per_channel: std::collections::BTreeMap<_, Vec<BankRequest>> =
                Default::default();
            for (i, table) in out.plan.placed.iter().enumerate() {
                let bank = table.banks[0];
                if !bank.kind.is_dram() {
                    continue;
                }
                per_channel.entry(bank).or_default().push(BankRequest {
                    bank: i % 16,
                    row: i as u64,
                    bytes: table.row_bytes(Precision::F32),
                });
            }
            let lookup = |policy| {
                per_channel
                    .values()
                    .map(|reqs| schedule_channel(&timing, policy, reqs).makespan)
                    .max()
                    .expect("channels")
            };
            let serial = lookup(SchedulerPolicy::SerialAxi);
            let parallel = lookup(SchedulerPolicy::BankParallel);
            rows.push(vec![
                format!("{} {}", model.name, if merge { "cartesian" } else { "no-merge" }),
                format!("{:.0} ns", serial.as_ns()),
                format!("{:.0} ns", parallel.as_ns()),
                format!("{:.2}x", serial.as_ns() / parallel.as_ns()),
            ]);
        }
    }
    print_table(
        "Lookup latency under the measured (serial AXI) vs a bank-parallel controller",
        &["Configuration", "Serial AXI", "Bank-parallel", "Controller win"],
        &rows,
    );
    println!("\nReading: a bank-parallel controller would flatten the multi-round");
    println!("penalty the Cartesian products exist to remove — the data-structure");
    println!("trick and the controller improvement attack the same serialization.");
    println!("On the paper's actual (serial) controller, Cartesian merging is the");
    println!("only lever; with a better controller both configurations converge.");
}
