//! Regenerates Figure 3: the embedding layer dominates CPU inference
//! latency at small batch sizes.

use microrec_bench::print_table;
use microrec_cpu::CpuTimingModel;
use microrec_embedding::ModelSpec;

fn main() {
    let cpu = CpuTimingModel::aws_16vcpu();
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for batch in [1u64, 64] {
            let emb = cpu.embedding_time(&model, batch);
            let total = cpu.total_time(&model, batch);
            rows.push(vec![
                model.name.clone(),
                batch.to_string(),
                format!("{:.2} ms", emb.as_ms()),
                format!("{:.2} ms", total.as_ms()),
                format!("{:.0}%", emb.as_ns() / total.as_ns() * 100.0),
            ]);
        }
    }
    print_table(
        "Figure 3: Embedding layer share of CPU inference latency",
        &["Model", "Batch", "Embedding", "Total", "Embedding share"],
        &rows,
    );
    println!("\nPaper reading: the embedding layer is 'expensive during inference',");
    println!("dominating small-batch latency (B=1: 2.59/3.34 ms = 78% small model,");
    println!("6.25/7.48 ms = 84% large model).");
}
