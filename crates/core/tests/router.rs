//! Multi-path router integration tests: bit-identity across the full
//! path matrix, deterministic shape routing, the SLO guard end to end,
//! and the routed serving runtime.

use microrec_core::{
    ExecutionMode, MicroRec, PathCostModel, PathSet, RuntimeConfig, ServingRuntime,
    SHAPE_DEFAULT_HOP_US,
};
use microrec_embedding::{ModelSpec, Precision, TableSpec};
use microrec_workload::{QueryGenConfig, RequestTrace};

fn model() -> ModelSpec {
    ModelSpec::dlrm_rmc2(4, 4)
}

fn queries(model: &ModelSpec, n: usize) -> Vec<Vec<u64>> {
    RequestTrace::generate(model, 10_000.0, n, QueryGenConfig::default())
        .expect("trace")
        .queries()
        .to_vec()
}

/// Every path a batch can be routed to must produce bit-identical CTRs
/// to the plain sequential engine, across the precision × cache matrix.
/// Routing must only ever change latency, never the answer.
#[test]
fn every_routable_path_is_bit_identical_to_sequential() {
    let model = model();
    let batch = queries(&model, 24);
    for precision in [Precision::F32, Precision::Fixed16, Precision::Fixed32] {
        for cache_rows in [0usize, 2_048] {
            let builder = MicroRec::builder(model.clone())
                .precision(precision)
                .seed(7)
                .hot_row_cache(cache_rows);
            let mut sequential = builder.clone().build().expect("sequential engine");
            let expected: Vec<f32> =
                batch.iter().map(|q| sequential.predict(q).expect("predict")).collect();

            let mut set = PathSet::build(&builder, 8).expect("path set");
            assert!(set.num_paths() >= 3, "expected the full path matrix");
            for path in 0..set.num_paths() {
                let name = set.descriptor(path).expect("descriptor").name;
                let got = set.predict_batch_on(path, &batch).expect("routed batch");
                assert_eq!(
                    got, expected,
                    "path `{name}` diverged at precision {precision:?}, cache {cache_rows}"
                );
                // Single-item entry point (the runtime's fallback path).
                let one = set.predict_on(path, &batch[0]).expect("routed single");
                assert_eq!(one.to_bits(), expected[0].to_bits(), "path `{name}` single");
            }
            set.shutdown();
        }
    }
}

/// The analytic shape model is deterministic: a tiny MLP (stage hop
/// overhead dominates) routes monolithic, the default deep model routes
/// to the staged pipeline.
#[test]
fn shape_routing_is_deterministic_across_model_scales() {
    let tiny = ModelSpec::new(
        "tiny-mlp",
        (0..4).map(|i| TableSpec::new(format!("t{i}"), 1_000, 4)).collect(),
        vec![16],
        2,
    );
    let picked = PathCostModel::from_shape(&tiny, SHAPE_DEFAULT_HOP_US).choose_mode();
    assert_eq!(picked, ExecutionMode::Monolithic, "tiny MLP must stay monolithic");

    let deep = ModelSpec::dlrm_rmc2(8, 16);
    let picked = PathCostModel::from_shape(&deep, SHAPE_DEFAULT_HOP_US).choose_mode();
    assert_eq!(picked, ExecutionMode::Pipelined, "deep MLP must pipeline");
}

/// A routed `PathSet` under a generous SLO never engages the guard; the
/// same set under an impossible budget falls back every batch, and the
/// fallback still answers bit-identically.
#[test]
fn slo_guard_regression_on_a_real_path_set() {
    let model = model();
    let batch = queries(&model, 16);
    let builder = MicroRec::builder(model.clone()).seed(7);
    let mut sequential = builder.clone().build().expect("sequential engine");
    let expected: Vec<f32> =
        batch.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    let mut set = PathSet::build(&builder, 8).expect("path set");
    let relaxed = set.route(&batch, Some(10_000_000.0), false);
    assert!(!relaxed.slo_fallback, "a 10 s budget must not trip the guard");

    // Zero remaining budget: the guard must engage and take the
    // measured lowest-latency path.
    let tight = set.route(&batch, Some(0.0), false);
    assert!(tight.slo_fallback, "an exhausted budget must trip the guard");
    let got = set.predict_batch_on(tight.path, &batch).expect("fallback batch");
    assert_eq!(got, expected, "SLO fallback path diverged");
    assert_eq!(set.snapshot().slo_fallbacks, 1);
    set.shutdown();
}

/// The routed serving runtime completes every admitted request with
/// sequential-identical answers and exposes its dispatch accounting.
#[test]
fn routed_runtime_is_lossless_and_reports_dispatches() {
    let model = model();
    let queries = queries(&model, 200);
    let mut sequential = MicroRec::builder(model.clone()).seed(7).build().expect("engine");
    let expected: Vec<f32> =
        queries.iter().map(|q| sequential.predict(q).expect("predict")).collect();

    let mut runtime = ServingRuntime::start(
        MicroRec::builder(model.clone()).seed(7),
        RuntimeConfig {
            workers: 2,
            max_batch: 8,
            max_wait_us: 1_000,
            execution: ExecutionMode::Routed,
            ..Default::default()
        },
    )
    .expect("runtime");
    assert_eq!(runtime.resolved_execution(), ExecutionMode::Routed);
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for (p, e) in pending.into_iter().zip(&expected) {
        let got = p.wait().expect("prediction");
        assert_eq!(got.to_bits(), e.to_bits(), "routed result diverged from sequential");
    }
    let router = runtime.router_snapshot().expect("routed mode must expose a snapshot");
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.completed, 200);
    assert_eq!(snapshot.failed, 0);
    assert!(router.paths.len() >= 3, "full path matrix expected");
    let dispatched: u64 = router.paths.iter().map(|p| p.dispatches).sum();
    let routed_items: u64 = router.paths.iter().map(|p| p.items).sum();
    assert!(dispatched > 0, "no batches were routed");
    assert_eq!(routed_items, 200, "every admitted item must be routed exactly once");
}

/// With an impossible per-request objective every batch overruns its
/// budget, so the runtime's SLO guard must engage — and still answer.
#[test]
fn routed_runtime_with_impossible_slo_counts_fallbacks() {
    let model = model();
    let queries = queries(&model, 120);
    let mut runtime = ServingRuntime::start(
        MicroRec::builder(model.clone()).seed(7),
        RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 500,
            execution: ExecutionMode::Routed,
            slo_us: 1,
            ..Default::default()
        },
    )
    .expect("runtime");
    let pending: Vec<_> =
        queries.iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    for p in pending {
        p.wait().expect("prediction under SLO pressure");
    }
    let router = runtime.router_snapshot().expect("snapshot");
    let snapshot = runtime.shutdown();
    assert_eq!(snapshot.completed, 120);
    assert!(
        router.slo_fallbacks > 0,
        "a 1 us objective must trip the SLO guard; snapshot: {router:?}"
    );
}
