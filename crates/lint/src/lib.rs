#![forbid(unsafe_code)]
//! `microrec-lint` — repo-specific static analysis for the MicroRec
//! workspace.
//!
//! The reproduction's performance and reproducibility guarantees are
//! *invariants*, not conventions: the batched GEMM path must not allocate,
//! the serving runtime must not panic, placement/simulation must be
//! bit-identical across runs, every `unsafe` needs a written safety
//! argument, and condvar waits must sit in predicate loops. This crate
//! token-scans the workspace and enforces those rules in CI, with a
//! per-site `// lint: allow(<id>) <reason>` escape hatch.
//!
//! Lints (configured per crate/module in the checked-in `lint.toml`):
//!
//! | id | rule |
//! |----|------|
//! | `hot-path-alloc` | no `Vec::new`/`vec!`/`.to_vec()`/`.clone()`/`format!`/`Box::new`/`.collect()`/`String::from` in designated hot functions |
//! | `no-panic-serving` | no `.unwrap()`/`.expect(`/`panic!`/`todo!` in the serving runtime outside tests |
//! | `unsafe-audit` | every `unsafe` site carries an adjacent `// SAFETY:` comment (or `# Safety` doc section) |
//! | `determinism` | no `HashMap`/`HashSet`/`Instant`/`SystemTime`/`thread_rng` in bit-identity crates |
//! | `condvar-loop` | `Condvar::wait`/`wait_timeout` only inside `while`/`loop` predicate re-checks |
//!
//! On top of the per-file checks, a workspace-wide flow pass indexes
//! every function, builds a call graph, and propagates per-function
//! summaries to a fixpoint ([`crate::summaries`]), powering the
//! interprocedural lints: `transitive-hot-path-alloc` /
//! `transitive-panic` (violations buried in callees, reported with the
//! witness chain), `lock-order` (cycles in the lock-acquisition graph),
//! `blocking-under-lock`, `ring-protocol` (close-then-drain discipline
//! on the SPSC rings), and `unused-allow` (stale escape hatches).
//!
//! A further id, `malformed-allow`, fires on broken escape-hatch
//! comments so a typo can never silently disable enforcement. Run
//! `microrec-lint --explain <id>` for any lint's invariant and
//! rationale.

mod callgraph;
mod config;
mod docs;
mod index;
mod lints;
mod source;
mod summaries;

pub use config::{glob_match, Config, ConfigError, Severity, LINT_IDS, MALFORMED_ALLOW};
pub use docs::{explain, render_markdown_table, LintDoc, LINT_DOCS};
pub use lints::{count_by_lint, lint_source, Diagnostic, FileReport};

use index::FileModel;
use lints::lint_workspace;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregate result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, sorted by (file, line, lint).
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
    /// Findings silenced by well-formed `lint: allow` comments.
    pub suppressed: usize,
}

impl Report {
    /// True when nothing was reported.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics that fail the run: all of them under `deny_all`,
    /// otherwise only those from `severity = "deny"` lints.
    #[must_use]
    pub fn failing(&self, deny_all: bool) -> usize {
        self.diagnostics.iter().filter(|d| deny_all || d.severity == Severity::Deny).count()
    }
}

/// Loads the manifest from `path`.
///
/// # Errors
///
/// Returns an [`io::Error`] when the file is unreadable or malformed
/// (parse errors are wrapped with [`io::ErrorKind::InvalidData`]).
pub fn load_config(path: &Path) -> io::Result<Config> {
    let text = fs::read_to_string(path)?;
    Config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Lints every `.rs` file under `root` (excluding the manifest's
/// `exclude` globs plus `target/` and VCS metadata).
///
/// # Errors
///
/// Returns an [`io::Error`] if the tree cannot be walked or a source
/// file cannot be read.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, root, config, &mut files)?;
    files.sort();
    let mut models = Vec::with_capacity(files.len());
    for rel in files {
        let text = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        models.push(FileModel::build(&rel_str, &text));
    }
    Ok(lint_workspace(models, config))
}

/// Renders a report in the stable machine-readable schema
/// (`microrec-lint-v2`): every diagnostic carries `file`, `line`,
/// `lint`, `severity`, `message`, and the interprocedural witness
/// `chain` (possibly empty). Consumed by CI artifacts and the
/// workspace-clean integration test — field removals or renames are
/// breaking.
#[must_use]
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\"schema\":\"microrec-lint-v2\",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let chain: Vec<String> =
            d.chain.iter().map(|hop| format!("\"{}\"", json_escape(hop))).collect();
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"chain\":[{}]}}",
            json_escape(&d.file),
            d.line,
            json_escape(&d.lint),
            d.severity,
            json_escape(&d.message),
            chain.join(","),
        ));
    }
    out.push_str(&format!(
        "],\"files_scanned\":{},\"suppressed\":{}}}",
        report.files_scanned, report.suppressed
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn walk(root: &Path, dir: &Path, config: &Config, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if excluded(&rel_str, &name, config) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            walk(root, &path, config, out)?;
        } else if ty.is_file() && rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

fn excluded(rel: &str, name: &str, config: &Config) -> bool {
    if name == "target" || name.starts_with('.') {
        return true;
    }
    config.exclude.iter().any(|pattern| {
        glob_match(pattern, rel)
            || rel == pattern.as_str()
            || rel.starts_with(&format!("{pattern}/"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_by_prefix_and_glob() {
        let config =
            Config::parse("exclude = [\"crates/lint/tests/fixtures\", \"**/gen\"]\n").unwrap();
        assert!(excluded("crates/lint/tests/fixtures", "fixtures", &config));
        assert!(excluded("crates/lint/tests/fixtures/x.rs", "x.rs", &config));
        assert!(excluded("a/b/gen", "gen", &config));
        assert!(excluded("target", "target", &config));
        assert!(!excluded("crates/core/src/lib.rs", "lib.rs", &config));
    }
}
