//! Cartesian trade-off sweep: how lookup latency and storage overhead move
//! as more table pairs are merged (the §3.3 trade-off behind Table 3).
//!
//! Run with: `cargo run --example cartesian_tradeoff`

use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, HeuristicOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelSpec::small_production();
    let config = MemoryConfig::u280();
    let base_bytes = model.total_bytes(Precision::F32) as f64;

    println!("{}: lookup latency vs merged pairs\n", model.name);
    println!("{:>6} {:>10} {:>8} {:>10} {:>9}", "pairs", "latency", "rounds", "storage", "tables");
    let mut best: Option<(usize, f64)> = None;
    for max_candidates in (0..=20).step_by(2) {
        let out = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions {
                max_candidates: Some(max_candidates),
                allow_merge: max_candidates > 0,
                ..Default::default()
            },
        )?;
        let pairs = out.plan.merge.groups.len();
        let storage_pct = out.cost.storage_bytes as f64 / base_bytes * 100.0;
        println!(
            "{:>6} {:>10} {:>8} {:>9.1}% {:>9}",
            pairs,
            out.cost.lookup_latency.to_string(),
            out.cost.dram_rounds,
            storage_pct,
            out.plan.num_tables()
        );
        let lat = out.cost.lookup_latency.as_ns();
        if best.is_none_or(|(_, b)| lat < b) {
            best = Some((pairs, lat));
        }
    }
    if let Some((pairs, lat)) = best {
        println!("\nknee: {pairs} merged pairs reach {lat:.0} ns — more merging only adds");
        println!("storage, fewer leaves a second DRAM round (the paper's 5-pair optimum).");
    }
    Ok(())
}
