//! Seeded violation: unsafe without a written safety argument.

pub fn first(values: &[u32]) -> u32 {
    unsafe { *values.as_ptr() }
}
