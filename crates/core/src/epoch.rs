//! Epoch-based generation handles for online arena re-sharding.
//!
//! The read-only-`Arc` sharing model (one arena/tiered backing built up
//! front, cloned into every engine replica) assumed the layout never
//! changes while serving. Traffic-adaptive placement breaks that: a
//! migration builds a *new-layout* arena off-thread and must hand it to
//! every worker without dropping, duplicating, or tearing a request.
//!
//! The protocol here is a single publication point ([`GenerationCell`])
//! plus batch-boundary pickup:
//!
//! 1. The migrator builds the new generation completely off to the side
//!    (shielded in its own thread — a panic mid-build cannot reach the
//!    cell, so the old generation keeps serving).
//! 2. [`GenerationCell::publish`] installs the payload under a mutex and
//!    *then* bumps the version counter (release ordering), so any worker
//!    that observes the new version also observes the full payload.
//! 3. Workers poll the version (one relaxed-cost atomic load) at the top
//!    of each gather — i.e. at batch boundaries, never inside one — and
//!    clone the `Arc` handles on change. A batch therefore runs entirely
//!    on one generation; the swap is invisible mid-batch by construction.
//! 4. The old arena is dropped when the last engine holding its `Arc`
//!    picks up the new generation — exactly "when the last in-flight
//!    batch retires", with the refcount as the retirement ledger.
//!
//! Bit identity makes the pickup safe at *any* batch boundary: a rebuilt
//! generation relocates encoded bytes verbatim
//! ([`EmbeddingArena::rebuild_with_channels`]), so a query answered by
//! generation *n* and one answered by *n+1* return identical bits, and
//! the hot-row cache (keyed by logical table/row) never needs flushing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use microrec_embedding::{EmbeddingArena, TieredBacking};

use crate::error::MicroRecError;

/// One published arena layout generation: the handles every engine needs
/// to serve it. Exactly one of `arena`/`backing` is populated, matching
/// how the engines were built (all-resident vs tiered).
#[derive(Debug, Clone, Default)]
pub struct ArenaGeneration {
    /// Monotonic layout generation (0 = the as-built layout).
    pub generation: u64,
    /// All-resident arena for this generation, when engines serve one.
    pub arena: Option<Arc<EmbeddingArena>>,
    /// Tiered backing for this generation, when engines serve tiered.
    pub backing: Option<Arc<TieredBacking>>,
}

impl ArenaGeneration {
    /// Wraps an all-resident arena as a generation payload.
    #[must_use]
    pub fn from_arena(arena: Arc<EmbeddingArena>) -> Self {
        ArenaGeneration { generation: arena.generation(), arena: Some(arena), backing: None }
    }

    /// Wraps a tiered backing as a generation payload.
    #[must_use]
    pub fn from_backing(backing: Arc<TieredBacking>) -> Self {
        ArenaGeneration { generation: backing.generation(), arena: None, backing: Some(backing) }
    }
}

/// The shared publication point between the migration coordinator (single
/// writer) and every serving engine (many readers).
///
/// Readers pay one atomic load per gather when nothing changed; only an
/// actual version change takes the mutex to clone the payload's `Arc`s.
#[derive(Debug)]
pub struct GenerationCell {
    /// Bumped once per publish, *after* the payload is installed.
    version: AtomicU64,
    slot: Mutex<ArenaGeneration>,
}

impl GenerationCell {
    /// Creates a cell serving `initial` as version 0.
    #[must_use]
    pub fn new(initial: ArenaGeneration) -> Arc<Self> {
        Arc::new(GenerationCell { version: AtomicU64::new(0), slot: Mutex::new(initial) })
    }

    /// The current publish version (0 = as built; +1 per publish).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the currently published generation's handles.
    #[must_use]
    pub fn snapshot(&self) -> ArenaGeneration {
        // A poisoned mutex means a publisher panicked between installing
        // the payload and releasing the lock; the payload itself is a
        // plain assignment and is intact either way — keep serving.
        self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Publishes `generation`: installs the payload, then bumps the
    /// version so readers that see the new version see the full payload.
    pub fn publish(&self, generation: ArenaGeneration) {
        {
            let mut slot = self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            *slot = generation;
        }
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// Runs `build` on a dedicated thread and joins it, converting a panic
/// into an error instead of unwinding into the caller — the shield that
/// guarantees a crash mid-rebuild leaves the old generation serving
/// (nothing is published unless `build` returns `Ok`).
///
/// # Errors
///
/// Returns the builder's own error, or [`MicroRecError::Runtime`] if the
/// build thread panicked or could not be spawned.
pub fn build_generation_shielded<F>(build: F) -> Result<ArenaGeneration, MicroRecError>
where
    F: FnOnce() -> Result<ArenaGeneration, MicroRecError> + Send + 'static,
{
    let spawned = std::thread::Builder::new().name("microrec-migrate-build".into()).spawn(build);
    match spawned {
        Ok(handle) => match handle.join() {
            Ok(result) => result,
            Err(_) => Err(MicroRecError::Runtime(
                "arena rebuild panicked; the old generation keeps serving".into(),
            )),
        },
        Err(e) => Err(MicroRecError::Runtime(format!("could not spawn rebuild thread: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_embedding::{EmbeddingTable, RowFormat, TableSpec};

    fn arena(generation: u64) -> Arc<EmbeddingArena> {
        let tables = vec![EmbeddingTable::procedural(TableSpec::new("t", 10, 4), 1)];
        let base = EmbeddingArena::build(&tables, RowFormat::F32, &[0], u64::MAX).unwrap();
        if generation == 0 {
            Arc::new(base)
        } else {
            Arc::new(base.rebuild_with_channels(&[0], generation).unwrap())
        }
    }

    #[test]
    fn publish_bumps_version_and_swaps_payload() {
        let cell = GenerationCell::new(ArenaGeneration::from_arena(arena(0)));
        assert_eq!(cell.version(), 0);
        assert_eq!(cell.snapshot().generation, 0);
        cell.publish(ArenaGeneration::from_arena(arena(7)));
        assert_eq!(cell.version(), 1);
        assert_eq!(cell.snapshot().generation, 7);
    }

    #[test]
    fn shielded_build_converts_panic_into_error() {
        let err = build_generation_shielded(|| panic!("injected")).unwrap_err();
        assert!(err.to_string().contains("old generation keeps serving"), "{err}");
        let ok = build_generation_shielded(|| Ok(ArenaGeneration::from_arena(arena(3)))).unwrap();
        assert_eq!(ok.generation, 3);
    }

    #[test]
    fn old_arena_drops_when_last_holder_adopts() {
        let old = arena(0);
        let cell = GenerationCell::new(ArenaGeneration::from_arena(Arc::clone(&old)));
        // Two "workers" hold the old generation.
        let w1 = cell.snapshot();
        let w2 = cell.snapshot();
        cell.publish(ArenaGeneration::from_arena(arena(1)));
        // Cell no longer references the old arena; only the workers do.
        assert_eq!(Arc::strong_count(&old), 3);
        drop(w1);
        assert_eq!(Arc::strong_count(&old), 2);
        drop(w2);
        assert_eq!(Arc::strong_count(&old), 1, "last in-flight handle retires the old arena");
    }
}
