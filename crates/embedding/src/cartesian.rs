//! Cartesian products of embedding tables (§3.3, Figure 5).
//!
//! The product of tables A (n₁ rows, d₁ elements) and B (n₂ rows, d₂
//! elements) is a table with n₁·n₂ rows of d₁+d₂ elements where row
//! `i·n₂ + j` is the concatenation `A[i] ‖ B[j]`. One memory access then
//! retrieves both embedding vectors, halving the number of random DRAM
//! accesses at a storage cost of `n₁·n₂·(d₁+d₂)` versus `n₁·d₁ + n₂·d₂`.
//!
//! This module provides the index arithmetic (for any number of member
//! tables — the paper's heuristic only ever merges pairs, but the math is
//! general), spec-level product construction, storage-overhead accounting,
//! and physical materialization used to validate the identity bit-for-bit.

use crate::error::EmbeddingError;
use crate::precision::Precision;
use crate::spec::TableSpec;
use crate::table::EmbeddingTable;

/// Row index into the product table for one index per member table
/// (row-major: the first member varies slowest).
///
/// # Errors
///
/// Returns [`EmbeddingError::ArityMismatch`] if `indices.len() !=
/// sizes.len()` and [`EmbeddingError::IndexOutOfRange`] if any index
/// exceeds its member's row count.
///
/// # Examples
///
/// ```
/// use microrec_embedding::cartesian::merged_row_index;
///
/// // Figure 5: two 2-row tables; (A=1, B=0) lands on product row 2.
/// assert_eq!(merged_row_index(&[2, 2], &[1, 0])?, 2);
/// # Ok::<(), microrec_embedding::EmbeddingError>(())
/// ```
pub fn merged_row_index(sizes: &[u64], indices: &[u64]) -> Result<u64, EmbeddingError> {
    if sizes.len() != indices.len() {
        return Err(EmbeddingError::ArityMismatch { expected: sizes.len(), actual: indices.len() });
    }
    let mut merged: u64 = 0;
    for (k, (&n, &i)) in sizes.iter().zip(indices).enumerate() {
        if i >= n {
            return Err(EmbeddingError::IndexOutOfRange {
                table: format!("product member {k}"),
                index: i,
                rows: n,
            });
        }
        merged = merged
            .checked_mul(n)
            .and_then(|m| m.checked_add(i))
            .ok_or(EmbeddingError::InvalidMergePlan("product row count overflows u64".into()))?;
    }
    Ok(merged)
}

/// Inverse of [`merged_row_index`]: recovers the per-member indices.
///
/// # Errors
///
/// Returns [`EmbeddingError::IndexOutOfRange`] if `merged` is outside the
/// product.
pub fn unmerged_row_indices(sizes: &[u64], merged: u64) -> Result<Vec<u64>, EmbeddingError> {
    let total = product_rows(sizes)?;
    if merged >= total {
        return Err(EmbeddingError::IndexOutOfRange {
            table: "cartesian product".into(),
            index: merged,
            rows: total,
        });
    }
    let mut rem = merged;
    let mut out = vec![0u64; sizes.len()];
    for (slot, &n) in out.iter_mut().zip(sizes).rev() {
        *slot = rem % n;
        rem /= n;
    }
    Ok(out)
}

/// Number of rows in the product of tables with the given row counts.
///
/// # Errors
///
/// Returns [`EmbeddingError::DegenerateProduct`] for fewer than one size and
/// an overflow error if the product exceeds `u64`.
pub fn product_rows(sizes: &[u64]) -> Result<u64, EmbeddingError> {
    if sizes.is_empty() {
        return Err(EmbeddingError::DegenerateProduct);
    }
    sizes.iter().try_fold(1u64, |acc, &n| {
        acc.checked_mul(n)
            .ok_or(EmbeddingError::InvalidMergePlan("product row count overflows u64".into()))
    })
}

/// Spec of the Cartesian product of `members` (≥ 2 tables).
///
/// # Errors
///
/// Returns [`EmbeddingError::DegenerateProduct`] for fewer than two members.
pub fn product_spec(members: &[&TableSpec]) -> Result<TableSpec, EmbeddingError> {
    if members.len() < 2 {
        return Err(EmbeddingError::DegenerateProduct);
    }
    let sizes: Vec<u64> = members.iter().map(|t| t.rows).collect();
    let rows = product_rows(&sizes)?;
    let dim = members.iter().map(|t| t.dim).sum();
    let name = members.iter().map(|t| t.name.as_str()).collect::<Vec<_>>().join("x");
    Ok(TableSpec { name, rows, dim })
}

/// Extra bytes the product costs over keeping the members separate
/// (`0` can occur only in degenerate single-row cases).
///
/// # Errors
///
/// Propagates errors from [`product_spec`].
pub fn storage_overhead(
    members: &[&TableSpec],
    precision: Precision,
) -> Result<i64, EmbeddingError> {
    let product = product_spec(members)?.bytes(precision) as i64;
    let separate: i64 = members.iter().map(|t| t.bytes(precision) as i64).sum();
    Ok(product - separate)
}

/// Physically builds the product table from member contents.
///
/// Row `merged_row_index(sizes, [i₁..i_k])` of the result is the
/// concatenation of member rows `i₁..i_k` — the invariant the paper's data
/// structure rests on, validated bit-for-bit by the tests.
///
/// # Errors
///
/// Returns [`EmbeddingError::DegenerateProduct`] for fewer than two members
/// and [`EmbeddingError::TooLargeToMaterialize`] if the product exceeds
/// `limit_bytes`.
pub fn materialize_product(
    members: &[&EmbeddingTable],
    limit_bytes: u64,
) -> Result<EmbeddingTable, EmbeddingError> {
    let specs: Vec<&TableSpec> = members.iter().map(|t| t.spec()).collect();
    let spec = product_spec(&specs)?;
    let bytes = spec.bytes(Precision::F32);
    if bytes > limit_bytes {
        return Err(EmbeddingError::TooLargeToMaterialize {
            table: spec.name,
            bytes,
            limit: limit_bytes,
        });
    }
    let sizes: Vec<u64> = specs.iter().map(|t| t.rows).collect();
    let dim = spec.dim as usize;
    let mut values = vec![0.0f32; spec.rows as usize * dim];
    for merged in 0..spec.rows {
        let indices = unmerged_row_indices(&sizes, merged)?;
        let mut offset = merged as usize * dim;
        for (member, &idx) in members.iter().zip(&indices) {
            let d = member.dim() as usize;
            member.read_row(idx, &mut values[offset..offset + d])?;
            offset += d;
        }
    }
    EmbeddingTable::materialized(spec, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(name: &str, rows: u64, dim: u32, seed: u64) -> EmbeddingTable {
        EmbeddingTable::procedural(TableSpec::new(name, rows, dim), seed)
    }

    #[test]
    fn figure5_example() {
        // Two 2-entry tables -> 4-entry product, row (i, j) = i*2 + j.
        assert_eq!(merged_row_index(&[2, 2], &[0, 0]).unwrap(), 0);
        assert_eq!(merged_row_index(&[2, 2], &[0, 1]).unwrap(), 1);
        assert_eq!(merged_row_index(&[2, 2], &[1, 0]).unwrap(), 2);
        assert_eq!(merged_row_index(&[2, 2], &[1, 1]).unwrap(), 3);
    }

    #[test]
    fn merged_and_unmerged_are_inverse() {
        let sizes = [3u64, 5, 7];
        for merged in 0..105 {
            let idx = unmerged_row_indices(&sizes, merged).unwrap();
            assert_eq!(merged_row_index(&sizes, &idx).unwrap(), merged);
        }
    }

    #[test]
    fn bad_indices_rejected() {
        assert!(merged_row_index(&[2, 2], &[2, 0]).is_err());
        assert!(merged_row_index(&[2, 2], &[0]).is_err());
        assert!(unmerged_row_indices(&[2, 2], 4).is_err());
        assert!(product_rows(&[]).is_err());
    }

    #[test]
    fn product_spec_shapes() {
        let a = TableSpec::new("a", 4, 3);
        let b = TableSpec::new("b", 5, 2);
        let p = product_spec(&[&a, &b]).unwrap();
        assert_eq!(p.rows, 20);
        assert_eq!(p.dim, 5);
        assert_eq!(p.name, "axb");
        assert!(product_spec(&[&a]).is_err());
    }

    #[test]
    fn materialized_product_rows_are_member_concatenations() {
        let a = table("a", 7, 3, 11);
        let b = table("b", 5, 4, 22);
        let p = materialize_product(&[&a, &b], u64::MAX).unwrap();
        assert_eq!(p.rows(), 35);
        assert_eq!(p.dim(), 7);
        for i in 0..7u64 {
            for j in 0..5u64 {
                let merged = merged_row_index(&[7, 5], &[i, j]).unwrap();
                let row = p.row(merged).unwrap();
                let mut expect = a.row(i).unwrap();
                expect.extend(b.row(j).unwrap());
                assert_eq!(row, expect, "product row ({i},{j}) mismatch");
            }
        }
    }

    #[test]
    fn three_way_product_also_concatenates() {
        let a = table("a", 2, 2, 1);
        let b = table("b", 3, 1, 2);
        let c = table("c", 2, 3, 3);
        let p = materialize_product(&[&a, &b, &c], u64::MAX).unwrap();
        assert_eq!(p.rows(), 12);
        assert_eq!(p.dim(), 6);
        let merged = merged_row_index(&[2, 3, 2], &[1, 2, 0]).unwrap();
        let mut expect = a.row(1).unwrap();
        expect.extend(b.row(2).unwrap());
        expect.extend(c.row(0).unwrap());
        assert_eq!(p.row(merged).unwrap(), expect);
    }

    #[test]
    fn overhead_matches_figure5_intuition() {
        // 100-row dim-4 tables: product = 10_000 x 8 vs 2 x 400 elements.
        let a = TableSpec::new("a", 100, 4);
        let b = TableSpec::new("b", 100, 4);
        let oh = storage_overhead(&[&a, &b], Precision::F32).unwrap();
        assert_eq!(oh, (10_000 * 8 - 800) * 4);
        // "tens of kilobytes ... almost negligible": ~317 KB at fp32.
        assert!(oh < 512 * 1024);
    }

    #[test]
    fn materialize_respects_limit() {
        let a = table("a", 10_000, 4, 1);
        let b = table("b", 10_000, 4, 2);
        assert!(matches!(
            materialize_product(&[&a, &b], 1024),
            Err(EmbeddingError::TooLargeToMaterialize { .. })
        ));
    }

    #[test]
    fn overflow_is_detected_not_wrapped() {
        let sizes = [u64::MAX, 3];
        assert!(product_rows(&sizes).is_err());
        assert!(merged_row_index(&sizes, &[u64::MAX - 1, 2]).is_err());
    }
}
