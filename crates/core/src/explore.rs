//! Design-space exploration over PE-array shapes.
//!
//! The paper picks one PE configuration per model (128/128/32 PEs) by
//! hand. With the resource and pipeline models in place, the choice can be
//! *searched*: enumerate PE allocations, estimate resources, derate the
//! clock under congestion, keep what fits, and rank by throughput. This is
//! the paper's implicit design loop made explicit — and an ablation of
//! its §4 configuration.

use microrec_accel::{estimate_usage, AccelConfig, Pipeline, ResourceUsage, U280_CAPACITY};
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::SimTime;

use crate::error::MicroRecError;

/// One evaluated accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The configuration (PE counts + derated clock).
    pub config: AccelConfig,
    /// Estimated resource usage.
    pub usage: ResourceUsage,
    /// Whether the design fits the U280.
    pub fits: bool,
    /// Steady-state throughput (items per second); 0 if it does not fit.
    pub throughput: f64,
    /// Single-item latency; zero if it does not fit.
    pub latency: SimTime,
}

/// Congestion model: derate the base clock as the hottest resource passes
/// 80 % utilization (cross-die routing must absorb the pressure — the
/// paper's own designs run at 120–140 MHz *because* of their >78 % BRAM
/// use).
#[must_use]
pub fn derated_clock(base_hz: u64, usage: &ResourceUsage) -> u64 {
    let max_util = usage.utilization(&U280_CAPACITY).max();
    let derate = if max_util > 0.8 { 1.0 - 0.5 * (max_util - 0.8) } else { 1.0 };
    (base_hz as f64 * derate.max(0.5)) as u64
}

/// Enumerates PE allocations for a 3-hidden-layer model and evaluates each.
///
/// The sweep covers power-of-two PE counts per layer from `min_pes` to
/// `max_pes`, keeping layer-proportional shapes (the bottleneck analysis of
/// §4.3 — the middle 1024×512 layer needs the most MACs).
///
/// # Errors
///
/// Returns [`MicroRecError`] if the model does not have three hidden
/// layers.
pub fn explore_design_space(
    model: &ModelSpec,
    precision: Precision,
    lookup_time: SimTime,
    min_pes: u32,
    max_pes: u32,
) -> Result<Vec<DesignPoint>, MicroRecError> {
    if model.hidden.len() != 3 {
        return Err(MicroRecError::Accel(microrec_accel::AccelError::ConfigMismatch {
            expected: model.hidden.len(),
            actual: 3,
        }));
    }
    let base_hz = match precision {
        Precision::Fixed16 => 140_000_000u64,
        _ => 160_000_000,
    };
    let base = AccelConfig {
        clock_hz: base_hz,
        precision,
        pes_per_layer: vec![128, 128, 32],
        macs_per_pe_cycle: match precision {
            Precision::Fixed16 => 10,
            _ => 6,
        },
    };
    let mut points = Vec::new();
    let mut pe1 = min_pes;
    while pe1 <= max_pes {
        let mut pe2 = min_pes;
        while pe2 <= max_pes {
            let mut pe3 = min_pes / 2;
            while pe3 <= max_pes / 2 {
                let mut config = base.clone();
                config.pes_per_layer = vec![pe1, pe2, pe3.max(1)];
                let usage = estimate_usage(model, &config);
                config.clock_hz = derated_clock(base_hz, &usage);
                let fits = usage.fits(&U280_CAPACITY);
                let (throughput, latency) = if fits {
                    let pipe = Pipeline::build(model, &config, lookup_time)?;
                    (pipe.throughput_items_per_sec(), pipe.latency())
                } else {
                    (0.0, SimTime::ZERO)
                };
                points.push(DesignPoint { config, usage, fits, throughput, latency });
                pe3 = (pe3 * 2).max(1);
            }
            pe2 *= 2;
        }
        pe1 *= 2;
    }
    Ok(points)
}

/// The highest-throughput design that fits, if any.
#[must_use]
pub fn best_fitting(points: &[DesignPoint]) -> Option<&DesignPoint> {
    points.iter().filter(|p| p.fits).max_by(|a, b| a.throughput.total_cmp(&b.throughput))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explore() -> Vec<DesignPoint> {
        explore_design_space(
            &ModelSpec::small_production(),
            Precision::Fixed16,
            SimTime::from_ns(485.0),
            32,
            512,
        )
        .unwrap()
    }

    #[test]
    fn sweep_contains_fitting_and_overflowing_points() {
        let points = explore();
        assert!(points.len() > 20);
        assert!(points.iter().any(|p| p.fits));
        assert!(points.iter().any(|p| !p.fits), "512-PE designs must overflow");
        for p in &points {
            if !p.fits {
                assert_eq!(p.throughput, 0.0);
            }
        }
    }

    #[test]
    fn best_design_is_at_least_as_fast_as_the_papers() {
        let points = explore();
        let best = best_fitting(&points).expect("some design fits");
        // The paper's configuration (~292k items/s in our model) is in the
        // search space, so the optimum cannot be slower.
        assert!(
            best.throughput >= 2.9e5,
            "best design {:?} at {:.0} items/s",
            best.config.pes_per_layer,
            best.throughput
        );
    }

    #[test]
    fn derating_kicks_in_above_80_percent() {
        let model = ModelSpec::small_production();
        let cfg = AccelConfig::for_model(&model, Precision::Fixed16);
        let usage = estimate_usage(&model, &cfg);
        // The paper's design sits at ~78 % BRAM: little or no derate.
        let hz = derated_clock(140_000_000, &usage);
        assert!(hz >= 133_000_000, "mild derate expected, got {hz}");
        // An inflated design derates harder.
        let mut big = cfg.clone();
        big.pes_per_layer = vec![256, 256, 64];
        let usage = estimate_usage(&model, &big);
        let hz_big = derated_clock(140_000_000, &usage);
        assert!(hz_big < hz);
        assert!(hz_big >= 70_000_000, "derate is floored at 50%");
    }

    #[test]
    fn wrong_layer_count_is_rejected() {
        let mut model = ModelSpec::small_production();
        model.hidden.pop();
        assert!(explore_design_space(&model, Precision::Fixed16, SimTime::ZERO, 32, 64).is_err());
    }
}
