//! Lints the real workspace as part of `cargo test`: the invariants in
//! `lint.toml` are tier-1, not advisory. A new allocation on the hot
//! path, an unwrap in the serving runtime, an undocumented `unsafe`, or
//! a clock in a determinism crate fails this test (and the CI lint step)
//! until it is fixed or justified with `// lint: allow(<id>) <reason>`.

use std::path::Path;

use microrec_lint::{load_config, run};

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = load_config(&root.join("lint.toml")).unwrap();
    let report = run(&root, &config).unwrap();
    assert!(
        report.is_clean(),
        "microrec-lint found {} violation(s):\n{}",
        report.diagnostics.len(),
        report.diagnostics.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    // Guard against a silently wrong root: the workspace is >100 files.
    assert!(report.files_scanned > 100, "only {} files scanned", report.files_scanned);
}
