//! Workspace-wide symbol index.
//!
//! The single-file pass ([`crate::source`]) sees one file at a time; the
//! interprocedural lints need to resolve a call in `runtime/mod.rs` to a
//! function defined in `crates/par/src/spsc.rs`. This module holds every
//! file's lexical model plus a flat index of all function definitions,
//! addressable by bare name (`push_blocking`) and by qualified
//! `Type::method` path (`SpscRing::push_blocking`), so the call-graph
//! pass can resolve call sites across crate boundaries.

use std::collections::BTreeMap;

use crate::source::{strip, tokenize, FnDef, ScanResult, Stripped, Token};

/// Lexical model of one file, kept around for every interprocedural pass.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    pub stripped: Stripped,
    pub tokens: Vec<Token>,
    pub scan: ScanResult,
    /// Whole file is test/bench/example context by location.
    pub is_test_file: bool,
}

impl FileModel {
    /// Strips, tokenizes, and structurally scans one file.
    #[must_use]
    pub fn build(rel_path: &str, text: &str) -> FileModel {
        let stripped = strip(text);
        let tokens = tokenize(&stripped.code_lines);
        let is_test_file = crate::lints::is_test_file(rel_path);
        let scan = crate::source::scan(&tokens, is_test_file);
        FileModel { rel_path: rel_path.to_string(), stripped, tokens, scan, is_test_file }
    }
}

/// Identifies one function in the workspace: index into
/// [`WorkspaceIndex::fns`].
pub type FnId = usize;

/// Where a function lives: file index and position within that file's
/// [`ScanResult::functions`].
#[derive(Debug, Clone, Copy)]
pub struct FnRef {
    pub file: usize,
    pub def: usize,
}

/// All files plus a flat, name-addressable function index.
#[derive(Debug)]
pub struct WorkspaceIndex {
    pub files: Vec<FileModel>,
    fns: Vec<FnRef>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_qual: BTreeMap<String, Vec<FnId>>,
}

impl WorkspaceIndex {
    /// Builds the index over all files.
    #[must_use]
    pub fn build(files: Vec<FileModel>) -> WorkspaceIndex {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (file_idx, file) in files.iter().enumerate() {
            for (def_idx, def) in file.scan.functions.iter().enumerate() {
                let id = fns.len();
                fns.push(FnRef { file: file_idx, def: def_idx });
                by_name.entry(def.name.clone()).or_default().push(id);
                if let Some(qual) = &def.qual {
                    by_qual.entry(qual.clone()).or_default().push(id);
                }
            }
        }
        WorkspaceIndex { files, fns, by_name, by_qual }
    }

    /// Number of indexed functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// The file and definition behind a function id.
    #[must_use]
    pub fn lookup(&self, id: FnId) -> (&FileModel, &FnDef) {
        let fr = self.fns[id];
        (&self.files[fr.file], &self.files[fr.file].scan.functions[fr.def])
    }

    /// File index a function is defined in.
    #[must_use]
    pub fn file_of(&self, id: FnId) -> usize {
        self.fns[id].file
    }

    /// Ids of every function with this bare name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Ids of every function with this `Type::method` path.
    #[must_use]
    pub fn by_qual(&self, qual: &str) -> &[FnId] {
        self.by_qual.get(qual).map_or(&[], Vec::as_slice)
    }

    /// Iterates all function ids.
    pub fn ids(&self) -> impl Iterator<Item = FnId> {
        0..self.fns.len()
    }

    /// `file:line fn-name` witness string for reports.
    #[must_use]
    pub fn describe(&self, id: FnId) -> String {
        let (file, def) = self.lookup(id);
        format!("{}:{} `{}`", file.rel_path, def.line, def.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_by_name_and_qual() {
        let a = FileModel::build(
            "src/a.rs",
            "impl Cache { pub fn insert(&mut self) {} }\nfn helper() {}\n",
        );
        let b = FileModel::build("src/b.rs", "impl Buffer { pub fn insert(&mut self) {} }\n");
        let index = WorkspaceIndex::build(vec![a, b]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.by_name("insert").len(), 2);
        assert_eq!(index.by_qual("Cache::insert").len(), 1);
        assert_eq!(index.by_qual("Buffer::insert").len(), 1);
        assert_eq!(index.by_name("helper").len(), 1);
        let (file, def) = index.lookup(index.by_qual("Buffer::insert")[0]);
        assert_eq!(file.rel_path, "src/b.rs");
        assert_eq!(def.display_name(), "Buffer::insert");
    }
}
