//! Regenerates the appendix cost estimation: AWS rental cost per million
//! inferences, CPU server vs FPGA server.

use microrec_bench::print_table;
use microrec_core::{end_to_end_report, AwsPrices, CostReport};
use microrec_embedding::{ModelSpec, Precision};

fn main() {
    let prices = AwsPrices::default();
    let mut rows = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let report = end_to_end_report(&model, precision, &[2048]).expect("report");
            let cost =
                CostReport::build(report.cpu[0].items_per_sec, report.fpga.items_per_sec, prices);
            rows.push(vec![
                format!("{} {precision}", model.name),
                format!("${:.4}", cost.cpu_usd_per_million),
                format!("${:.4}", cost.fpga_usd_per_million),
                format!("{:.1}x", cost.advantage()),
            ]);
        }
    }
    print_table(
        &format!(
            "Appendix: cost per 1M inferences (CPU ${}/h vs FPGA ${}/h)",
            prices.cpu_per_hour, prices.fpga_per_hour
        ),
        &["Config", "CPU", "FPGA", "FPGA advantage"],
        &rows,
    );
    println!("\nPaper: 'Considering the 4~5x speedup using 32-bit fixed-points,");
    println!("deploying FPGAs will be beneficial in the long-term.'");
}
