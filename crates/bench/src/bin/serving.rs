//! Serving-frontier benchmark: drives the live micro-batching runtime
//! ([`ServingRuntime`]) with paced Poisson arrivals and sweeps offered
//! load × batch window × worker count, emitting one JSON record per point
//! (committed as `BENCH_serving.json`).
//!
//! Each point replays a seeded trace in real time, so offered load is a
//! wall-clock fact, not a simulation input. Before the sweep the bin
//! measures the sequential single-`predict` capacity of one engine
//! (matching `BENCH_throughput.json`'s `seq_qps`) and checks that a
//! runtime-served batch is bit-identical to sequential prediction.
//!
//! Run with `cargo run --release -p microrec-bench --bin serving`
//! (`-- --smoke` for the time-bounded CI variant).

use std::time::{Duration, Instant};

use microrec_core::{
    AdmissionPolicy, MicroRec, MicroRecBuilder, MigrationRecord, PathKind, PathSet, ReplayOutcome,
    ReshardingPolicy, RuntimeConfig, RuntimeLookupStats, ServingFrontierRecord, ServingRuntime,
};
use microrec_embedding::{ModelSpec, RowFormat, TableSpec};
use microrec_json::{Json, ToJson};
use microrec_memsim::MemoryConfig;
use microrec_placement::HeuristicOptions;
use microrec_workload::{PoissonArrivals, QueryGenConfig, QueryGenerator, RequestTrace};

/// Full-sweep requests per load point.
const FULL_POINT_REQUESTS: usize = 2_000;
/// Smoke-mode requests per load point (a few thousand total).
const SMOKE_POINT_REQUESTS: usize = 800;
/// Queries for the bit-identity check.
const IDENTITY_QUERIES: usize = 96;
/// Hot-row cache capacity in rows, shared config across every engine in
/// this bin. At dim 16 this is a 4 MiB hot tier over the model's 4 M rows;
/// Zipf(1.05) traffic concentrates most lookups on it.
const CACHE_ROWS: usize = 65_536;

/// The one engine configuration every path in this bin uses — sequential
/// baseline and runtime workers alike run f16 arena rows behind the
/// hot-row cache, so the bit-identity check compares like with like.
fn builder(model: &ModelSpec) -> MicroRecBuilder {
    MicroRec::builder(model.clone())
        .seed(42)
        .embedding_arena(RowFormat::F16)
        .hot_row_cache(CACHE_ROWS)
}

fn build(model: &ModelSpec) -> MicroRec {
    builder(model).build().expect("engine")
}

/// Sequential single-predict capacity, measured fresh on this machine so
/// the offered-load multipliers track the hardware the sweep runs on.
fn measure_seq_qps(model: &ModelSpec) -> f64 {
    let mut engine = build(model);
    let trace = RequestTrace::generate(model, 1_000.0, 256, QueryGenConfig::default())
        .expect("seq-capacity trace");
    for q in trace.queries().iter().take(32) {
        engine.predict(q).expect("warmup predict");
    }
    let start = Instant::now();
    for q in trace.queries() {
        engine.predict(q).expect("predict");
    }
    trace.queries().len() as f64 / start.elapsed().as_secs_f64()
}

/// Runtime-served results must be bit-identical to sequential `predict`.
fn check_bit_identity(model: &ModelSpec, config: RuntimeConfig) -> bool {
    let trace =
        RequestTrace::generate(model, 50_000.0, IDENTITY_QUERIES, QueryGenConfig::default())
            .expect("identity trace");
    let mut sequential = build(model);
    let expected: Vec<f32> =
        trace.queries().iter().map(|q| sequential.predict(q).expect("predict")).collect();
    let runtime = ServingRuntime::start(builder(model), config).expect("runtime");
    let pending: Vec<_> =
        trace.queries().iter().map(|q| runtime.submit(q.clone()).expect("submit")).collect();
    pending
        .into_iter()
        .zip(&expected)
        .all(|(p, e)| p.wait().map(|got| got.to_bits() == e.to_bits()).unwrap_or(false))
}

/// One sweep point: fresh runtime, fresh paced replay. Also returns the
/// embedding-lookup counters the workers accumulated over the point.
fn run_point(
    model: &ModelSpec,
    rate: f64,
    n: usize,
    config: RuntimeConfig,
) -> (ReplayOutcome, Option<RuntimeLookupStats>) {
    let trace =
        RequestTrace::generate(model, rate, n, QueryGenConfig::default()).expect("point trace");
    let mut runtime = ServingRuntime::start(builder(model), config).expect("runtime");
    let mut outcome = replay(&runtime, &trace);
    outcome.snapshot = runtime.shutdown();
    let lookup = runtime.lookup_stats();
    (outcome, lookup)
}

fn replay(runtime: &ServingRuntime, trace: &RequestTrace) -> ReplayOutcome {
    microrec_core::replay_trace(runtime, trace)
}

fn config(workers: usize, max_batch: usize, max_wait_us: u64) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        max_batch,
        max_wait_us,
        queue_depth: 512,
        admission: AdmissionPolicy::Reject,
        ..RuntimeConfig::default()
    }
}

// ---------------------------------------------------------------------
// Router section: a mixed trace across the path matrix.
// ---------------------------------------------------------------------

/// Items per routed micro-batch.
const ROUTER_BATCH_ITEMS: usize = 16;
/// Items per batch in the tiny-MLP phases. The tiny model answers a
/// 16-item batch in ~30 µs, where the router's fixed per-dispatch cost
/// (two mutex hops, sketch update) is a structural ~10% — the gate
/// would measure bookkeeping, not routing. A tiny model serves at high
/// throughput, so its realistic batches are larger; 64 items amortizes
/// the dispatch cost to ~2%.
const ROUTER_TINY_BATCH_ITEMS: usize = 64;
/// Timed batches per phase (full sweep / smoke).
const ROUTER_PHASE_BATCHES: usize = 96;
const ROUTER_SMOKE_PHASE_BATCHES: usize = 48;
/// Untimed routed batches before each phase's timed section, enough for
/// the traffic sketch (1024-lookup windows), the EWMA, and the incumbent
/// to migrate after a phase change — the timed section measures the
/// router's steady state on homogeneous traffic.
const ROUTER_WARMUP_BATCHES: usize = 48;

/// A tiny-MLP model: stage-hop overhead dominates its [16] hidden layer,
/// so routing it anywhere but monolithic is a predictable mistake.
fn tiny_model() -> ModelSpec {
    ModelSpec::new(
        "tiny-mlp",
        (0..4).map(|i| TableSpec::new(format!("t{i}"), 1_000, 4)).collect(),
        vec![16],
        2,
    )
}

/// One homogeneous phase of the mixed trace.
struct RouterPhase {
    name: &'static str,
    /// Index into the per-model `PathSet` list (0 = default, 1 = tiny).
    set: usize,
    zipf: f64,
    seed: u64,
    /// Items per batch (model-dependent, see [`ROUTER_TINY_BATCH_ITEMS`]).
    items: usize,
}

/// Measured outcome of one phase. Totals are reported; the CI gates
/// compare per-batch medians, which are robust to scheduler-drift
/// outliers that a sum would absorb wholesale.
struct RouterPhaseResult {
    name: &'static str,
    routed_us: f64,
    routed_median_us: f64,
    /// (path name, total µs, per-batch median µs) per static path.
    statics_us: Vec<(&'static str, f64, f64)>,
    /// Timed-section dispatch count per path index.
    dispatches: Vec<u64>,
}

impl RouterPhaseResult {
    fn best_static_median_us(&self) -> f64 {
        self.statics_us.iter().map(|&(_, _, med)| med).fold(f64::INFINITY, f64::min)
    }

    fn worst_static_median_us(&self) -> f64 {
        self.statics_us.iter().map(|&(_, _, med)| med).fold(0.0, f64::max)
    }
}

fn median_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn phase_batches(
    spec: &ModelSpec,
    zipf: f64,
    seed: u64,
    batches: usize,
    items: usize,
) -> Vec<Vec<Vec<u64>>> {
    let mut gen = QueryGenerator::new(spec, QueryGenConfig { zipf_exponent: zipf, seed })
        .expect("phase generator");
    (0..batches).map(|_| (0..items).map(|_| gen.next_query()).collect()).collect()
}

/// Batches per interleaved measurement round (per arm).
const ROUTER_ROUND: usize = 8;

/// Replays one phase with the static and routed arms interleaved in
/// rounds over the same wall-clock window, so thermal and scheduler
/// drift hit every arm equally instead of whichever ran last.
fn run_router_phase(
    phase: &RouterPhase,
    set: &mut PathSet,
    spec: &ModelSpec,
    batches: usize,
) -> RouterPhaseResult {
    let trace = phase_batches(spec, phase.zipf, phase.seed, batches, phase.items);

    // Warm every path's caches, then let the router see the phase's
    // traffic: the sketch windows fill, the EWMA unlearns the previous
    // phase, and the incumbent migrates. The timed rounds measure the
    // router's steady state on homogeneous traffic.
    for path in 0..set.num_paths() {
        for batch in trace.iter().take(4) {
            set.predict_batch_on(path, batch).expect("static warmup");
        }
    }
    for batch in trace.iter().cycle().take(ROUTER_WARMUP_BATCHES) {
        set.run_batch(batch, None, false).expect("routed warmup");
    }

    let mut static_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(batches); set.num_paths()];
    let mut routed_samples = Vec::with_capacity(batches);
    let mut static_totals = vec![0.0f64; set.num_paths()];
    let mut routed_us = 0.0f64;
    let mut dispatches = vec![0u64; set.num_paths()];
    for round in trace.chunks(ROUTER_ROUND) {
        for (path, samples) in static_samples.iter_mut().enumerate() {
            let start = Instant::now();
            for batch in round {
                let t = Instant::now();
                set.predict_batch_on(path, batch).expect("static replay");
                samples.push(t.elapsed().as_secs_f64() * 1e6);
            }
            static_totals[path] += start.elapsed().as_secs_f64() * 1e6;
        }
        let start = Instant::now();
        for batch in round {
            let t = Instant::now();
            let (decision, _) = set.run_batch(batch, None, false).expect("routed replay");
            routed_samples.push(t.elapsed().as_secs_f64() * 1e6);
            dispatches[decision.path] += 1;
        }
        routed_us += start.elapsed().as_secs_f64() * 1e6;
    }

    let statics_us = static_samples
        .iter_mut()
        .enumerate()
        .map(|(path, samples)| {
            let name = set.descriptor(path).expect("descriptor").name;
            (name, static_totals[path], median_us(samples))
        })
        .collect();

    RouterPhaseResult {
        name: phase.name,
        routed_us,
        routed_median_us: median_us(&mut routed_samples),
        statics_us,
        dispatches,
    }
}

/// Fraction of a phase's dispatches that satisfy `pred` on the path
/// descriptor.
fn dispatch_fraction(
    set: &PathSet,
    result: &RouterPhaseResult,
    pred: impl Fn(microrec_core::PathDescriptor) -> bool,
) -> f64 {
    let total: u64 = result.dispatches.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let matching: u64 = result
        .dispatches
        .iter()
        .enumerate()
        .filter(|&(i, _)| set.descriptor(i).is_some_and(&pred))
        .map(|(_, &n)| n)
        .sum();
    matching as f64 / total as f64
}

/// Runs the mixed-trace router section. Returns one JSON object per
/// phase; in smoke mode also CI-gates the routed-vs-static bounds and
/// the counter-case avoidance.
fn run_router_section(smoke: bool) -> Json {
    let batches = if smoke { ROUTER_SMOKE_PHASE_BATCHES } else { ROUTER_PHASE_BATCHES };
    let default_spec = ModelSpec::dlrm_rmc2(8, 16);
    let tiny_spec = tiny_model();
    let specs = [&default_spec, &tiny_spec];
    let mut sets = vec![
        PathSet::build(&builder(&default_spec), ROUTER_BATCH_ITEMS).expect("default path set"),
        // Uncached on purpose: a 1k-row cache over this 4k-row model
        // prices the cached and uncached monolithic paths within ~10%
        // of each other — a near-tie that no router can win reliably
        // and that turns the CI gate into a coin flip. The cache-vs-
        // cold routing dimension belongs to the default set's phases;
        // the tiny set exercises the model-shape dimension.
        PathSet::build(&MicroRec::builder(tiny_spec.clone()).seed(42), ROUTER_TINY_BATCH_ITEMS)
            .expect("tiny path set"),
    ];

    // Alternating model shapes and traffic skews: the router must track
    // each transition instead of settling on one global winner.
    let phases = [
        RouterPhase {
            name: "default-zipf",
            set: 0,
            zipf: 1.05,
            seed: 11,
            items: ROUTER_BATCH_ITEMS,
        },
        RouterPhase {
            name: "tiny-zipf",
            set: 1,
            zipf: 1.05,
            seed: 12,
            items: ROUTER_TINY_BATCH_ITEMS,
        },
        RouterPhase {
            name: "default-uniform",
            set: 0,
            zipf: 0.0,
            seed: 13,
            items: ROUTER_BATCH_ITEMS,
        },
        RouterPhase {
            name: "tiny-uniform",
            set: 1,
            zipf: 0.0,
            seed: 14,
            items: ROUTER_TINY_BATCH_ITEMS,
        },
    ];

    fn run_and_print(
        phase: &RouterPhase,
        sets: &mut [PathSet],
        specs: &[&ModelSpec],
        batches: usize,
    ) -> RouterPhaseResult {
        // Tiny-model batches run in tens of microseconds, so give those
        // phases 4x the batches to keep timer noise inside the CI band.
        let phase_batches = if phase.set == 1 { batches * 4 } else { batches };
        let result = run_router_phase(phase, &mut sets[phase.set], specs[phase.set], phase_batches);
        let mix: Vec<String> = result
            .dispatches
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                format!("{} x{n}", sets[phase.set].descriptor(i).map_or("?", |d| d.name))
            })
            .collect();
        let statics: Vec<String> =
            result.statics_us.iter().map(|&(name, _, med)| format!("{name} {med:.0}")).collect();
        eprintln!(
            "router {:>16}: routed med {:>8.0} us/batch | statics [{}] | {}",
            result.name,
            result.routed_median_us,
            statics.join(", "),
            mix.join(", "),
        );
        result
    }

    let mut results: Vec<(usize, RouterPhaseResult)> = phases
        .iter()
        .map(|phase| (phase.set, run_and_print(phase, &mut sets, &specs, batches)))
        .collect();

    if smoke {
        // This host is shared: a multi-ms preemption burst overlapping a
        // phase's routed rounds inflates its median past any gate a
        // working router can meet. One retry re-measures the phase in a
        // fresh window; the gate holds the retry to the full standard,
        // so only a genuine router defect fails twice.
        for (i, phase) in phases.iter().enumerate() {
            let over = results[i].1.routed_median_us > results[i].1.best_static_median_us() * 1.10;
            if over {
                eprintln!(
                    "router {:>16}: over the 10% budget, retrying once (noise guard)",
                    phase.name
                );
                results[i] = (phase.set, run_and_print(phase, &mut sets, &specs, batches));
            }
        }
        let routed_total: f64 = results.iter().map(|(_, r)| r.routed_median_us).sum();
        let worst_total: f64 = results.iter().map(|(_, r)| r.worst_static_median_us()).sum();
        assert!(
            routed_total < worst_total,
            "routed ({routed_total:.0} us/batch summed) must strictly beat the worst \
             static ({worst_total:.0} us/batch summed) over the mixed trace"
        );
        for (set, result) in &results {
            assert!(
                result.routed_median_us <= result.best_static_median_us() * 1.10,
                "phase {}: routed median {:.0} us exceeds best static median {:.0} us \
                 by more than 10%",
                result.name,
                result.routed_median_us,
                result.best_static_median_us(),
            );
            if result.name.starts_with("tiny") {
                let mono =
                    dispatch_fraction(&sets[*set], result, |d| d.kind == PathKind::Monolithic);
                assert!(
                    mono > 0.5,
                    "phase {}: tiny MLP must mostly route monolithic, got {:.0}%",
                    result.name,
                    mono * 100.0,
                );
            }
            if result.name == "default-uniform" {
                let uncached = dispatch_fraction(&sets[*set], result, |d| !d.cached);
                assert!(
                    uncached > 0.5,
                    "phase {}: uniform traffic must mostly avoid the cold-cache paths, \
                     got {:.0}% uncached",
                    result.name,
                    uncached * 100.0,
                );
            }
        }
        eprintln!("router smoke gates: ok");
    }

    let json = results
        .iter()
        .map(|(set, r)| {
            let statics: Vec<Json> = r
                .statics_us
                .iter()
                .map(|&(name, us, median)| {
                    Json::Obj(vec![
                        ("path".to_string(), name.to_json()),
                        ("us".to_string(), us.to_json()),
                        ("median_batch_us".to_string(), median.to_json()),
                    ])
                })
                .collect();
            let dispatches: Vec<Json> = r
                .dispatches
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    let name = sets[*set].descriptor(i).map_or("?", |d| d.name);
                    Json::Obj(vec![
                        ("path".to_string(), name.to_json()),
                        ("batches".to_string(), n.to_json()),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("phase".to_string(), r.name.to_json()),
                ("routed_us".to_string(), r.routed_us.to_json()),
                ("routed_median_batch_us".to_string(), r.routed_median_us.to_json()),
                ("best_static_median_batch_us".to_string(), r.best_static_median_us().to_json()),
                ("worst_static_median_batch_us".to_string(), r.worst_static_median_us().to_json()),
                ("statics".to_string(), Json::Arr(statics)),
                ("dispatches".to_string(), Json::Arr(dispatches)),
            ])
        })
        .collect();

    for set in sets {
        set.shutdown();
    }
    Json::Arr(json)
}

// ---------------------------------------------------------------------
// Adaptive section: phase-shifted skew with online re-sharding.
// ---------------------------------------------------------------------

/// Requests per adaptive phase (full sweep / smoke).
const ADAPTIVE_PHASE_REQUESTS: usize = 1_024;
const ADAPTIVE_SMOKE_PHASE_REQUESTS: usize = 512;
/// Offered load for the adaptive phases: comfortably inside capacity, so
/// phase qps measures serving health around a migration rather than the
/// saturation frontier.
const ADAPTIVE_RATE_QPS: f64 = 10_000.0;
/// Hot-row cache capacity for the adaptive engines: tiny against the hot
/// tables' row space. Every query touches every table exactly once, so
/// per-table access counts carry no signal; the skew shows up as
/// per-table cache-MISS rate divergence.
const ADAPTIVE_CACHE_ROWS: usize = 64;
/// Row counts of [`adaptive_model`], indexed by logical table.
const ADAPTIVE_ROWS: [u64; 4] = [200_000, 100_000, 200_000, 100_000];

/// Two hot and two cold tables on a two-channel DDR platform: the
/// uniform-traffic placement co-locates pairs, so a skewed phase always
/// leaves the re-sharder a strictly better layout to find.
fn adaptive_model() -> ModelSpec {
    ModelSpec::new(
        "adaptive-skew",
        vec![
            TableSpec::new("t0-big", ADAPTIVE_ROWS[0], 16),
            TableSpec::new("t1-small", ADAPTIVE_ROWS[1], 8),
            TableSpec::new("t2-big", ADAPTIVE_ROWS[2], 16),
            TableSpec::new("t3-small", ADAPTIVE_ROWS[3], 8),
        ],
        vec![32, 16],
        1,
    )
}

fn adaptive_builder() -> MicroRecBuilder {
    MicroRec::builder(adaptive_model())
        .memory(MemoryConfig::fpga_without_hbm(2))
        .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
        .embedding_arena(RowFormat::F32)
        .hot_row_cache(ADAPTIVE_CACHE_ROWS)
        .seed(13)
}

fn adaptive_runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        workers: 2,
        max_batch: 16,
        max_wait_us: 1_000,
        queue_depth: 512,
        admission: AdmissionPolicy::Block,
        adaptive: true,
        ..RuntimeConfig::default()
    }
}

/// A paced phase whose `hot` pair walks its full row space (every lookup
/// misses the cache) while the other tables repeat row 7 and hit after
/// the first probe.
fn adaptive_phase_trace(hot: [usize; 2], n: usize, offset: u64, seed: u64) -> RequestTrace {
    let queries = (0..n as u64)
        .map(|i| {
            let i = i + offset;
            let mut q = vec![7u64; 4];
            q[hot[0]] = (i * 7_919) % ADAPTIVE_ROWS[hot[0]];
            q[hot[1]] = (i * 104_729) % ADAPTIVE_ROWS[hot[1]];
            q
        })
        .collect();
    let arrivals =
        PoissonArrivals::new(ADAPTIVE_RATE_QPS, seed).expect("adaptive arrivals").take(n);
    RequestTrace::from_parts(arrivals, queries).expect("adaptive trace")
}

/// Polls until the runtime has published at least `count` migrations or
/// the deadline passes. The background driver re-evaluates every few
/// milliseconds, so on settled counters this is a bounded wait for a
/// deterministic decision.
fn wait_for_migrations(runtime: &ServingRuntime, count: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    loop {
        let n = runtime.migration_records().len();
        if n >= count || Instant::now() >= deadline {
            return n;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Measured outcome of one pass over the three-phase shifted trace.
struct AdaptiveAttempt {
    records: Vec<MigrationRecord>,
    identical: bool,
    qps_skewed: f64,
    qps_rotated_pre: f64,
    qps_rotated_post: f64,
    record: ServingFrontierRecord,
}

impl AdaptiveAttempt {
    /// Post-migration steady state must hold the pre-migration rate on
    /// the rotated hot set (0.95 tolerance for scheduler drift on a
    /// shared host; both phases are paced identical work).
    fn qps_held(&self) -> bool {
        self.qps_rotated_post >= self.qps_rotated_pre * 0.95
    }

    fn gates_ok(&self) -> bool {
        self.records.len() >= 2
            && self.identical
            && self.records.iter().all(|m| m.tables_moved > 0)
            && self.qps_held()
    }
}

fn run_adaptive_attempt(n: usize) -> AdaptiveAttempt {
    // Static reference: the same engine configuration served
    // sequentially, with no runtime and no migrations.
    let mut sequential = adaptive_builder().build().expect("static engine");
    let mut expect = |trace: &RequestTrace| -> Vec<f32> {
        trace.queries().iter().map(|q| sequential.predict(q).expect("predict")).collect()
    };

    let mut runtime =
        ServingRuntime::start(adaptive_builder(), adaptive_runtime_config()).expect("runtime");
    // Eager gates: the phase skew, not wall-clock luck, decides.
    runtime.set_resharding_policy(ReshardingPolicy {
        divergence_threshold: 0.01,
        min_traffic: n as u64 / 4,
        cooldown_ms: 0,
    });

    // Phase 1 skews onto {t0, t1}, co-located by the as-built layout.
    let phase1 = adaptive_phase_trace([0, 1], n, 0, 31);
    let want1 = expect(&phase1);
    let skewed = replay(&runtime, &phase1);
    wait_for_migrations(&runtime, 1, Duration::from_secs(2));

    // Phases 2 and 3 rotate the hot set onto whichever table the
    // migrated layout co-locates with t0 (the cold-table tie-break moves
    // with counter noise, so the pair is observed, not predicted),
    // forcing the driver to adapt a second time.
    let channels = runtime.resharding_channels().expect("adaptive runtime exposes channels");
    let partner = (1..4).find(|&t| channels[t] == channels[0]).expect("co-located partner");
    let rotated = [0, partner];
    // qps on the rotated hot set while the second migration triggers and
    // swaps underneath.
    let phase2 = adaptive_phase_trace(rotated, n, 1_000_000, 32);
    let want2 = expect(&phase2);
    let pre = replay(&runtime, &phase2);
    wait_for_migrations(&runtime, 2, Duration::from_secs(2));
    // Steady state on the re-adapted layout.
    let phase3 = adaptive_phase_trace(rotated, n, 2_000_000, 33);
    let want3 = expect(&phase3);
    let mut post = replay(&runtime, &phase3);
    post.snapshot = runtime.shutdown();
    let lookup = runtime.lookup_stats();
    let records = runtime.migration_records();

    let identical = [(&skewed, &want1), (&pre, &want2), (&post, &want3)].iter().all(
        |(outcome, exp)| {
            outcome.results.len() == exp.len()
                && outcome
                    .results
                    .iter()
                    .zip(exp.iter())
                    .all(|(got, e)| got.is_some_and(|g| g.to_bits() == e.to_bits()))
        },
    );

    let mut record =
        ServingFrontierRecord::from_run(&adaptive_runtime_config(), &post).with_migrations(&records);
    if let Some(stats) = &lookup {
        record = record.with_lookup(stats);
    }

    AdaptiveAttempt {
        records,
        identical,
        qps_skewed: skewed.qps,
        qps_rotated_pre: pre.qps,
        qps_rotated_post: post.qps,
        record,
    }
}

/// Runs the phase-shifted adaptive section. In smoke mode, CI-gates that
/// serving stayed bit-identical across at least one online migration and
/// that the post-migration steady state held the pre-migration rate.
fn run_adaptive_section(smoke: bool) -> Json {
    let n = if smoke { ADAPTIVE_SMOKE_PHASE_REQUESTS } else { ADAPTIVE_PHASE_REQUESTS };
    let mut attempt = run_adaptive_attempt(n);
    if smoke && !attempt.gates_ok() {
        // One retry re-measures in a fresh window (shared-host noise
        // guard, same policy as the router gates); the retry is held to
        // the full standard, so only a genuine defect fails twice.
        eprintln!("adaptive: smoke gates missed, retrying once (noise guard)");
        attempt = run_adaptive_attempt(n);
    }

    for m in &attempt.records {
        eprintln!(
            "adaptive gen {:>2}: {} table(s) moved | divergence {:>5.1}% | weighted lookup \
             {:.2} -> {:.2} us | build {:>6} us, swap {:>3} us",
            m.generation,
            m.tables_moved,
            m.divergence * 100.0,
            m.old_weighted_us,
            m.new_weighted_us,
            m.build_us,
            m.swap_us,
        );
    }
    eprintln!(
        "adaptive: {} migration(s) | qps skewed {:.0}, rotated pre {:.0} -> post {:.0} | \
         bit-identity {}",
        attempt.records.len(),
        attempt.qps_skewed,
        attempt.qps_rotated_pre,
        attempt.qps_rotated_post,
        if attempt.identical { "ok" } else { "FAILED" },
    );

    if smoke {
        assert!(
            attempt.records.len() >= 2,
            "both skew phases must publish an online migration, got {}",
            attempt.records.len()
        );
        assert!(attempt.identical, "adaptive runtime diverged from the static engine");
        for m in &attempt.records {
            assert!(m.tables_moved > 0, "gen {}: a migration must move tables", m.generation);
            assert!(
                m.new_weighted_us < m.old_weighted_us,
                "gen {}: migration must improve the traffic-weighted lookup cost \
                 ({} -> {} us)",
                m.generation,
                m.old_weighted_us,
                m.new_weighted_us,
            );
        }
        assert!(
            attempt.qps_held(),
            "post-migration steady state ({:.0} qps) fell below the pre-migration rate \
             ({:.0} qps) on the rotated hot set",
            attempt.qps_rotated_post,
            attempt.qps_rotated_pre,
        );
        eprintln!("adaptive smoke gates: ok");
    }

    Json::Obj(vec![
        ("model".to_string(), "adaptive-skew".to_json()),
        ("requests_per_phase".to_string(), n.to_json()),
        ("bit_identical".to_string(), attempt.identical.to_json()),
        ("migrations_published".to_string(), attempt.records.len().to_json()),
        ("qps_skewed".to_string(), attempt.qps_skewed.to_json()),
        ("qps_rotated_pre".to_string(), attempt.qps_rotated_pre.to_json()),
        ("qps_rotated_post".to_string(), attempt.qps_rotated_post.to_json()),
        ("post_migration_point".to_string(), attempt.record.to_json()),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let model = ModelSpec::dlrm_rmc2(8, 16);

    let seq_qps = measure_seq_qps(&model);
    eprintln!("sequential capacity: {seq_qps:.1} qps");

    let identity_ok = check_bit_identity(&model, config(2, 32, 2_000));
    assert!(identity_ok, "runtime-served results diverged from sequential predict");
    eprintln!("bit-identity vs sequential predict: ok ({IDENTITY_QUERIES} queries)");

    // (offered multiplier over seq capacity, batch window us, workers)
    let points: Vec<(f64, u64, usize)> = if smoke {
        vec![(2.0, 2_000, 1), (4.0, 2_000, 2)]
    } else {
        let mut p = Vec::new();
        for &mult in &[2.0, 4.0, 6.0] {
            for &wait_us in &[2_000u64, 10_000] {
                for &workers in &[1usize, 2] {
                    p.push((mult, wait_us, workers));
                }
            }
        }
        p
    };
    let n = if smoke { SMOKE_POINT_REQUESTS } else { FULL_POINT_REQUESTS };

    let mut records = Vec::with_capacity(points.len());
    for &(mult, wait_us, workers) in &points {
        let rate = seq_qps * mult;
        let cfg = config(workers, 64, wait_us);
        let (outcome, lookup) = run_point(&model, rate, n, cfg);
        let mut record = ServingFrontierRecord::from_run(&cfg, &outcome);
        if let Some(stats) = &lookup {
            record = record.with_lookup(stats);
        }
        let hit_rate = lookup.as_ref().map_or(0.0, |s| s.hit_rate());
        eprintln!(
            "offered {:>7.0} qps ({mult:.0}x seq, wait {wait_us:>5} us, {workers} worker): \
             sustained {:>7.0} qps, mean batch {:>5.2}, p99 {:>8.0} us, drops {:.2}%, \
             cache hit {:>5.1}%",
            rate,
            record.qps,
            record.mean_batch_size,
            record.p99_us,
            record.drop_rate * 100.0,
            hit_rate * 100.0,
        );
        if smoke {
            // CI gate: at ≥2x sequential offered load the runtime must
            // beat sequential capacity with real batching and finite tail.
            assert!(record.qps > seq_qps, "runtime slower than sequential at {mult}x load");
            assert!(record.mean_batch_size > 1.0, "no batching happened at {mult}x load");
            assert!(record.p99_us.is_finite() && record.p99_us > 0.0, "bad p99");
            let stats = record.lookup.as_ref().expect("cache-enabled runtime lost its counters");
            assert!(stats.hits + stats.misses > 0, "no lookups were counted");
        }
        records.push(record);
    }

    let router = run_router_section(smoke);
    let adaptive = run_adaptive_section(smoke);

    let obj = vec![
        ("seq_qps".to_string(), seq_qps.to_json()),
        ("bit_identical".to_string(), identity_ok.to_json()),
        ("requests_per_point".to_string(), n.to_json()),
        ("points".to_string(), records.to_json()),
        ("router".to_string(), router),
        ("adaptive".to_string(), adaptive),
    ];
    println!("{}", microrec_json::to_string_pretty(&microrec_json::Json::Obj(obj)));
}
