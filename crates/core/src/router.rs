//! Multi-path execution: a dispatch seam over every engine variant and a
//! per-batch cost-model router on top.
//!
//! The repo has accumulated a matrix of execution paths — the monolithic
//! [`MicroRec`] engine, the sharded [`EnginePool`], and the staged
//! [`PipelineExecutor`] — each further parameterized by arena row format
//! and hot-row cache configuration. Every static choice is wrong for some
//! regime: the pipelined path loses ~9× on a tiny MLP (hop overhead
//! dominates), and the hot-row cache loses on uniform traffic (the probe
//! is pure overhead at a ~1.6% hit rate). This module makes the choice
//! per batch instead:
//!
//! 1. [`ExecutionPath`] is the one dispatch trait all variants implement.
//! 2. [`PathCost`] is a fitted linear cost `fixed + n·per_item` per path,
//!    measured at startup (generalizing PR 6's `Calibration`).
//! 3. [`PathCostModel`] scores every registered path per batch from the
//!    calibrated costs, EWMA-corrected observed latency, and a live
//!    traffic-cacheability sketch, and applies the SLO guard.
//! 4. [`PathSet`] owns the built engines plus a shared model and routes
//!    each batch to the predicted-fastest path.
//!
//! On this crate's single-core reference hardware the router's wins come
//! from picking the leaner datapath for the regime (see DESIGN.md), not
//! from overlap — the cost model measures whatever the host provides.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use microrec_embedding::{ModelSpec, RowFormat};

use crate::engine::{MicroRec, MicroRecBuilder};
use crate::error::MicroRecError;
use crate::pipeline::plan::{calibration_queries, Calibration};
use crate::pipeline::{ExecutionMode, PipelineExecutor, PipelinePlan, PipelineShared};
use crate::pool::EnginePool;
use crate::sync::lock_or_recover;

/// EWMA smoothing factor for observed per-item latency. Single-batch
/// timings at the tens-of-microseconds scale jitter by ±20%, so the
/// estimate must average over ~1/alpha batches for a real 5–10% gap
/// between paths to dominate the noise.
const EWMA_ALPHA: f64 = 0.1;
/// Below this live hit-rate estimate, cache-fronted paths are scored as
/// cold (penalized), so uniform traffic routes around the cache.
const COLD_HIT_FLOOR: f64 = 0.10;
/// Under overload the router is stricter about what counts as warm.
const OVERLOAD_HIT_FLOOR: f64 = 0.30;
/// Score multiplier applied to cache-fronted paths under cold traffic.
const COLD_PENALTY: f64 = 3.0;
/// A non-winning path is only re-probed when its score is within this
/// factor of the winner (never re-probe a hopeless path).
const PROBE_BAND: f64 = 1.5;
/// Dispatches a path must sit idle before it becomes probe-eligible.
/// Kept short: when a preemption burst poisons the best path's estimate
/// and the router flees to a slower one, the detour lasts until the
/// next probe pair re-measures the fallen path warm — this constant
/// bounds that recovery latency.
const REPROBE_IDLE: u64 = 16;
/// Minimum dispatches between any two probe pairs (bounds probe
/// overhead to at most `2 (PROBE_BAND - 1) / PROBE_SPACING` of the
/// winner's cost). Probes come in back-to-back pairs: the first batch
/// on a long-idle path pays its cold-start transient (evicted caches,
/// parked threads) and is discarded; only the second, warm batch is
/// recorded. A single cold probe would systematically overestimate
/// every challenger and lock in a wrong incumbent.
const PROBE_SPACING: u64 = 32;
/// A challenger must score below `incumbent × HYSTERESIS_MARGIN` to
/// displace it. Near-tied paths otherwise ping-pong on EWMA noise, and
/// every flip to the slightly-worse path costs real latency. The band
/// must stay narrower than the smallest path gap worth capturing
/// (~10%), or the router can sit on a path it should leave.
const HYSTERESIS_MARGIN: f64 = 0.95;
/// EWMA weight for an observation on a path that sat idle for
/// [`REPROBE_IDLE`]+ dispatches: its stale estimate should yield to
/// fresh evidence much faster than the steady-state [`EWMA_ALPHA`].
const REFRESH_ALPHA: f64 = 0.5;
/// Tag slots in the traffic-cacheability sketch (power of two).
const SKETCH_SLOTS: usize = 4096;
/// Lookups per sketch measurement window.
const SKETCH_WINDOW: u64 = 1024;
/// Single-item timing iterations during startup calibration.
const CALIBRATION_SINGLES: usize = 8;
/// Analytic shape model: µs per MAC-pair FLOP on the scalar datapath.
const SHAPE_US_PER_FLOP: f64 = 5e-4;
/// Analytic shape model: µs per gathered embedding byte.
const SHAPE_US_PER_BYTE: f64 = 2.5e-4;
/// Analytic shape model: monolithic forward overhead vs the packed
/// stage kernels (re-quantization, unpacked weights).
const SHAPE_MONO_FACTOR: f64 = 1.6;
/// Analytic shape model: default per-hop handoff cost, µs.
pub const SHAPE_DEFAULT_HOP_US: f64 = 6.0;

/// Which engine variant a path runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// One [`MicroRec`] engine, batched fast path.
    Monolithic,
    /// [`PipelineExecutor`] over a non-replicated staged plan.
    Pipelined,
    /// [`PipelineExecutor`] over a lane-replicated staged plan.
    Replicated,
    /// [`EnginePool`] sharding batches across replicas.
    Pool,
}

impl PathKind {
    /// Stable lowercase label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PathKind::Monolithic => "monolithic",
            PathKind::Pipelined => "pipelined",
            PathKind::Replicated => "replicated",
            PathKind::Pool => "pool",
        }
    }
}

/// Identity of one routable path: variant, arena format, cache config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathDescriptor {
    /// Human-readable unique name, e.g. `"monolithic-nocache"`.
    pub name: &'static str,
    /// Engine variant.
    pub kind: PathKind,
    /// Arena row format label (`"legacy"` when no arena is configured).
    pub format: &'static str,
    /// Whether a hot-row cache fronts this path's gathers.
    pub cached: bool,
}

/// Fitted linear cost of one path: `batch_us(n) = fixed_us + n · per_item_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Per-batch fixed overhead (dispatch, pipeline fill, lock handoff).
    pub fixed_us: f64,
    /// Marginal per-item cost at calibration batch size.
    pub per_item_us: f64,
    /// Measured single-item latency — the SLO guard's metric.
    pub single_us: f64,
}

impl PathCost {
    /// Predicted total latency of a batch of `n` items.
    #[must_use]
    pub fn batch_us(&self, n: usize) -> f64 {
        self.fixed_us + n as f64 * self.per_item_us
    }

    /// Fits the two-parameter model from a single-item measurement and a
    /// whole-batch measurement of `batch` items.
    #[must_use]
    pub fn fit(single_us: f64, batch_total_us: f64, batch: usize) -> PathCost {
        let n = batch.max(2) as f64;
        let marginal = (batch_total_us - single_us) / (n - 1.0);
        // A negative slope means batching amortizes nearly everything;
        // keep a fraction of the mean as the honest marginal floor.
        let per_item_us = marginal.max(batch_total_us / n * 0.1).max(1e-3);
        PathCost {
            fixed_us: (single_us - per_item_us).max(0.0),
            per_item_us,
            single_us: single_us.max(1e-3),
        }
    }
}

/// The router's verdict for one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteDecision {
    /// Index of the chosen path (into the [`PathSet`] / model order).
    pub path: usize,
    /// Predicted total batch latency of the chosen path, µs.
    pub predicted_us: f64,
    /// The SLO guard engaged (remaining deadline below the throughput
    /// winner's predicted cost) and the measured lowest-latency path was
    /// taken instead.
    pub slo_fallback: bool,
    /// This dispatch is a staleness re-probe of a near-winner path, not
    /// the argmin choice.
    pub probe: bool,
}

/// Live cacheability estimate of the query stream, independent of any
/// real cache: a direct-mapped tag table over `(lookup slot, id)` keys
/// whose hit rate tracks how much short-term reuse the traffic offers.
/// Zipf traffic scores high, uniform traffic over large tables scores
/// near zero — exactly the signal that decides cache-on vs cache-off
/// paths without waiting for a cold cache to prove itself.
#[derive(Debug, Clone)]
struct TrafficSketch {
    tags: Vec<u64>,
    window_hits: u64,
    window_lookups: u64,
    rate: f64,
    warm: bool,
}

impl TrafficSketch {
    fn new() -> Self {
        TrafficSketch {
            tags: vec![0u64; SKETCH_SLOTS],
            window_hits: 0,
            window_lookups: 0,
            rate: 0.0,
            warm: false,
        }
    }

    fn note(&mut self, queries: &[Vec<u64>]) {
        for query in queries {
            for (slot, &id) in query.iter().enumerate() {
                let key = mix64(id ^ (slot as u64).wrapping_mul(0xA24B_AED4_963E_E407)) | 1;
                let idx = (key >> 1) as usize & (SKETCH_SLOTS - 1);
                if self.tags[idx] == key {
                    self.window_hits += 1;
                } else {
                    self.tags[idx] = key;
                }
                self.window_lookups += 1;
            }
        }
        if self.window_lookups >= SKETCH_WINDOW {
            let fresh = self.window_hits as f64 / self.window_lookups as f64;
            self.rate = if self.warm { 0.5 * self.rate + 0.5 * fresh } else { fresh };
            self.warm = true;
            self.window_hits = 0;
            self.window_lookups = 0;
        }
    }

    fn hit_rate(&self) -> Option<f64> {
        self.warm.then_some(self.rate)
    }
}

/// SplitMix64 finalizer — deterministic, well-mixed tags.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Debug, Clone)]
struct PathState {
    descriptor: PathDescriptor,
    cost: PathCost,
    calibrated: bool,
    /// Observed per-item latency, EWMA-smoothed; 0 until first feedback.
    ewma_us: f64,
    /// Scratch: score computed for the current routing decision.
    score_us: f64,
    /// Dispatches since this path last ran.
    idle: u64,
    /// The path just became the incumbent: its next observation carries
    /// the engine's cold-start transient (evicted caches, parked
    /// threads), which measures switching cost, not steady-state cost —
    /// skip it so one flip can't poison the estimate and cause churn.
    transient: bool,
    /// The path sat idle ≥ [`REPROBE_IDLE`] before this dispatch: blend
    /// its next observation at [`REFRESH_ALPHA`].
    refresh: bool,
    /// Last ≤ 3 per-item observations. The EWMA is fed the median of
    /// this window, so an isolated scheduler-preemption outlier (which
    /// can be several × the true cost) never enters the estimate — a
    /// single bad sample must not make the router flee its best path.
    recent: [f64; 3],
    recent_len: usize,
    recent_pos: usize,
    dispatches: u64,
    items: u64,
    predicted_us_sum: f64,
    observed_batches: u64,
    observed_us_sum: f64,
}

impl PathState {
    fn new(descriptor: PathDescriptor) -> Self {
        PathState {
            descriptor,
            cost: PathCost { fixed_us: 0.0, per_item_us: 0.0, single_us: 0.0 },
            calibrated: false,
            ewma_us: 0.0,
            score_us: 0.0,
            idle: 0,
            transient: false,
            refresh: false,
            recent: [0.0; 3],
            recent_len: 0,
            recent_pos: 0,
            dispatches: 0,
            items: 0,
            predicted_us_sum: 0.0,
            observed_batches: 0,
            observed_us_sum: 0.0,
        }
    }

    /// Pushes a per-item observation and returns the window's robust
    /// estimate: the median once three samples exist, otherwise the
    /// minimum (latency noise is one-sided — preemption inflates a
    /// sample, nothing deflates one).
    fn note_recent(&mut self, per_item: f64) -> f64 {
        self.recent[self.recent_pos] = per_item;
        self.recent_pos = (self.recent_pos + 1) % self.recent.len();
        self.recent_len = (self.recent_len + 1).min(self.recent.len());
        if self.recent_len == self.recent.len() {
            let [a, b, c] = self.recent;
            // Median of three: smallest of the pairwise maxima.
            a.max(b).min(a.max(c)).min(b.max(c))
        } else {
            self.recent[..self.recent_len].iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Forgets the observation window (stale history must not vote).
    fn clear_recent(&mut self) {
        self.recent_len = 0;
        self.recent_pos = 0;
    }
}

/// Per-path routing statistics, exported by [`PathCostModel::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouterPathStats {
    /// Which path this row describes.
    pub descriptor: PathDescriptor,
    /// Calibrated linear cost.
    pub cost: PathCost,
    /// EWMA-smoothed observed per-item latency, if any feedback arrived.
    pub ewma_us: Option<f64>,
    /// Batches routed to this path.
    pub dispatches: u64,
    /// Items routed to this path.
    pub items: u64,
    /// Mean predicted batch latency at dispatch time, µs.
    pub mean_predicted_us: f64,
    /// Mean observed batch latency, µs.
    pub mean_observed_us: f64,
}

/// Aggregate router statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSnapshot {
    /// One row per registered path, in registration order.
    pub paths: Vec<RouterPathStats>,
    /// Times the SLO guard engaged and took the lowest-latency path.
    pub slo_fallbacks: u64,
    /// Staleness re-probe dispatches.
    pub probes: u64,
    /// Live traffic-cacheability estimate (None until the sketch warms).
    pub traffic_hit_rate: Option<f64>,
}

/// The per-batch cost model: calibrated linear costs per path, EWMA
/// feedback from observed latency, a traffic-cacheability sketch, and
/// the SLO guard. Shared across workers behind a mutex; all hot methods
/// are allocation-free.
#[derive(Debug)]
pub struct PathCostModel {
    paths: Vec<PathState>,
    sketch: TrafficSketch,
    slo_fallbacks: u64,
    probes: u64,
    since_probe: u64,
    /// Incumbent path of the last regular (non-probe, non-fallback)
    /// dispatch, protected by [`HYSTERESIS_MARGIN`].
    last_choice: Option<usize>,
    /// A probe fired last batch: the next batch re-dispatches the same
    /// path warm, and that observation is the one recorded.
    pending_probe: Option<usize>,
    /// Cold/warm regime of the previous routing decision, to detect
    /// traffic-regime flips.
    was_cold: bool,
}

impl PathCostModel {
    /// A model over `descriptors`, costs unseeded (see
    /// [`PathCostModel::seed_cost`]).
    #[must_use]
    pub fn new(descriptors: Vec<PathDescriptor>) -> Self {
        PathCostModel {
            paths: descriptors.into_iter().map(PathState::new).collect(),
            sketch: TrafficSketch::new(),
            slo_fallbacks: 0,
            probes: 0,
            since_probe: PROBE_SPACING,
            last_choice: None,
            pending_probe: None,
            was_cold: false,
        }
    }

    /// The thin two-path model PR 6's `ExecutionMode::Auto` reduces to:
    /// the measured monolithic path vs the calibrated staged plan.
    #[must_use]
    pub fn from_calibration(calibration: &Calibration, plan: &PipelinePlan) -> Self {
        let staged = if plan.is_replicated() { PathKind::Replicated } else { PathKind::Pipelined };
        let mut model = PathCostModel::new(vec![
            PathDescriptor {
                name: "monolithic",
                kind: PathKind::Monolithic,
                format: "any",
                cached: false,
            },
            PathDescriptor { name: staged.as_str(), kind: staged, format: "any", cached: false },
        ]);
        model.seed_cost(
            0,
            PathCost {
                fixed_us: 0.0,
                per_item_us: calibration.monolithic_us,
                single_us: calibration.monolithic_us,
            },
        );
        model.seed_cost(
            1,
            PathCost {
                fixed_us: 0.0,
                per_item_us: calibration.pipelined_us,
                single_us: calibration.pipelined_us,
            },
        );
        model
    }

    /// A purely analytic monolithic-vs-pipelined model from the model
    /// shape alone — per-layer MACs (bottleneck stage bounds the
    /// pipeline), gathered bytes, and `hop_us` per stage handoff. Fully
    /// deterministic; used to sanity-check routing decisions against
    /// shape intuition (tiny MLP → monolithic, deep MLP → pipelined).
    #[must_use]
    pub fn from_shape(spec: &ModelSpec, hop_us: f64) -> Self {
        let dims = spec.mlp_layer_dims();
        let bottleneck_flops = dims.windows(2).map(|w| 2 * w[0] * w[1]).max().unwrap_or(0) as f64;
        let total_flops = spec.flops_per_item() as f64;
        let lookup_us = spec.gathered_bytes_per_item(microrec_embedding::Precision::F32) as f64
            * SHAPE_US_PER_BYTE;
        let mono_us = total_flops * SHAPE_US_PER_FLOP * SHAPE_MONO_FACTOR + lookup_us;
        let bottleneck_us = (bottleneck_flops * SHAPE_US_PER_FLOP).max(lookup_us) + hop_us.max(0.0);
        let mut model = PathCostModel::new(vec![
            PathDescriptor {
                name: "monolithic",
                kind: PathKind::Monolithic,
                format: "any",
                cached: false,
            },
            PathDescriptor {
                name: "pipelined",
                kind: PathKind::Pipelined,
                format: "any",
                cached: false,
            },
        ]);
        model.seed_cost(0, PathCost { fixed_us: 0.0, per_item_us: mono_us, single_us: mono_us });
        model.seed_cost(
            1,
            PathCost {
                fixed_us: 0.0,
                per_item_us: bottleneck_us,
                single_us: mono_us + hop_us.max(0.0) * spec.hidden.len().max(1) as f64,
            },
        );
        model
    }

    /// Number of registered paths.
    #[must_use]
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// Descriptor of path `i`, if registered.
    #[must_use]
    pub fn descriptor(&self, i: usize) -> Option<PathDescriptor> {
        self.paths.get(i).map(|p| p.descriptor)
    }

    /// Installs the startup-calibrated cost of path `i`.
    pub fn seed_cost(&mut self, i: usize, cost: PathCost) {
        if let Some(p) = self.paths.get_mut(i) {
            p.cost = cost;
            p.calibrated = true;
        }
    }

    /// Re-seeds the model after an online arena re-shard: every path's
    /// observed history (EWMA, median window, probe bookkeeping) belongs
    /// to the *old* layout generation and must not vote on the new one.
    /// Calibrated cost lines are kept — the datapath shape is unchanged,
    /// only the embedding channel layout moved — so the first post-swap
    /// batches route on calibration until fresh feedback accumulates,
    /// exactly like startup.
    pub fn reseed_after_swap(&mut self) {
        for p in &mut self.paths {
            p.ewma_us = 0.0;
            p.clear_recent();
            p.transient = false;
            p.refresh = false;
            // Startup state, not probe-eligible: an immediate probe would
            // send the first post-swap batch to a non-winner. Paths earn
            // probe eligibility again after REPROBE_IDLE dispatches.
            p.idle = 0;
        }
        self.last_choice = None;
        self.pending_probe = None;
        self.since_probe = PROBE_SPACING;
    }

    /// True once every registered path has a calibrated cost.
    #[must_use]
    pub fn is_seeded(&self) -> bool {
        !self.paths.is_empty() && self.paths.iter().all(|p| p.calibrated)
    }

    /// Folds a formed batch's queries into the traffic sketch.
    pub fn note_traffic(&mut self, queries: &[Vec<u64>]) {
        self.sketch.note(queries);
    }

    /// Live traffic-cacheability estimate, once the sketch warms.
    #[must_use]
    pub fn traffic_hit_rate(&self) -> Option<f64> {
        self.sketch.hit_rate()
    }

    /// Scores every path for a batch of `items` and picks one.
    ///
    /// `remaining_us` is the batch's remaining SLO budget (None = no
    /// deadline): when the throughput winner's predicted cost exceeds
    /// it, the guard falls back to the measured lowest-latency path.
    /// Under `overload` the router degrades conservatively: no probe
    /// dispatches, and a stricter warmth floor routes around cache
    /// paths that would miss.
    pub fn route(
        &mut self,
        items: usize,
        remaining_us: Option<f64>,
        overload: bool,
    ) -> RouteDecision {
        let n = items.max(1) as f64;
        let hit = self.sketch.hit_rate();
        let floor = if overload { OVERLOAD_HIT_FLOOR } else { COLD_HIT_FLOOR };
        let cold = hit.is_some_and(|rate| rate < floor);
        if cold != self.was_cold {
            // Traffic regime flipped (warm↔cold): every cache-fronted
            // path's observed history belongs to the old regime. Drop it
            // so scoring falls back to the calibrated line (plus the
            // cold penalty) instead of chasing a stale EWMA.
            self.was_cold = cold;
            for p in &mut self.paths {
                if p.descriptor.cached {
                    p.ewma_us = 0.0;
                    p.clear_recent();
                }
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, p) in self.paths.iter_mut().enumerate() {
            // Once feedback arrives the EWMA per-item rate (which
            // amortizes the fixed cost at live batch sizes) replaces
            // the calibrated line.
            let mut score = if p.ewma_us > 0.0 {
                n * p.ewma_us
            } else {
                p.cost.fixed_us + n * p.cost.per_item_us
            };
            if p.descriptor.cached && cold {
                score *= COLD_PENALTY;
            }
            p.score_us = score;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        // Switching hysteresis: the incumbent keeps the batch unless the
        // challenger is decisively cheaper.
        if let Some(prev) = self.last_choice {
            if prev != best
                && self
                    .paths
                    .get(prev)
                    .is_some_and(|p| best_score >= p.score_us * HYSTERESIS_MARGIN)
            {
                best = prev;
                best_score = self.paths.get(prev).map_or(best_score, |p| p.score_us);
            }
        }
        let mut choice = best;
        let mut probe = false;
        let mut probe_follow = false;
        // Probe follow-up: the previous batch ran this path cold (and
        // the observation was discarded); run it once more warm so the
        // recorded measurement is its steady-state cost.
        if let Some(i) = self.pending_probe.take() {
            if !overload && i < self.paths.len() {
                choice = i;
                probe = true;
                probe_follow = true;
                self.probes += 1;
            }
        }
        // Staleness re-probe: give a near-winner path a real batch now
        // and then, so EWMA feedback can correct calibration drift.
        if !probe && !overload && self.since_probe >= PROBE_SPACING {
            let mut stalest: Option<usize> = None;
            for (i, p) in self.paths.iter().enumerate() {
                // A path with no live feedback is scored off its startup
                // calibration — cold, small-batch, untrusted. It cannot
                // be banned by its own untrusted score: probe it once,
                // and let the measured EWMA decide from then on.
                let unseeded = p.ewma_us <= 0.0;
                if i == best
                    || p.idle < REPROBE_IDLE
                    || (!unseeded && p.score_us > best_score * PROBE_BAND)
                {
                    continue;
                }
                let stale_now = self.paths.get(i).map_or(0, |s| s.idle);
                if stalest.is_none_or(|j| self.paths.get(j).map_or(0, |s| s.idle) < stale_now) {
                    stalest = Some(i);
                }
            }
            if let Some(i) = stalest {
                choice = i;
                probe = true;
                self.probes += 1;
                self.since_probe = 0;
                self.pending_probe = Some(i);
            }
        }
        let mut slo_fallback = false;
        if let Some(remaining) = remaining_us {
            let chosen_score = self.paths.get(choice).map_or(0.0, |p| p.score_us);
            if chosen_score > remaining {
                // Deadline at risk: take the measured lowest-latency
                // path (calibrated single-item latency, cold-adjusted),
                // not the highest-throughput one.
                let mut low = choice;
                let mut low_lat = f64::INFINITY;
                for (i, p) in self.paths.iter().enumerate() {
                    let mut lat = p.cost.single_us;
                    if p.descriptor.cached && cold {
                        lat *= COLD_PENALTY;
                    }
                    if lat < low_lat {
                        low_lat = lat;
                        low = i;
                    }
                }
                choice = low;
                probe = false;
                probe_follow = false;
                self.pending_probe = None;
                slo_fallback = true;
                self.slo_fallbacks += 1;
            }
        }
        if !probe {
            self.since_probe = self.since_probe.saturating_add(1);
        }
        let switched = !probe && !slo_fallback && self.last_choice != Some(choice);
        if !probe && !slo_fallback {
            self.last_choice = Some(choice);
        }
        let mut predicted = 0.0;
        for (i, p) in self.paths.iter_mut().enumerate() {
            if i == choice {
                if switched || (probe && !probe_follow) {
                    // A switch or the cold half of a probe pair: discard
                    // the next observation, it measures the transition.
                    p.transient = true;
                }
                if p.idle >= REPROBE_IDLE {
                    p.refresh = true;
                }
                p.idle = 0;
                p.dispatches += 1;
                p.items += items as u64;
                p.predicted_us_sum += p.score_us;
                predicted = p.score_us;
            } else {
                p.idle = p.idle.saturating_add(1);
            }
        }
        RouteDecision { path: choice, predicted_us: predicted, slo_fallback, probe }
    }

    /// Feeds an observed batch latency back into the chosen path's EWMA.
    pub fn observe(&mut self, decision: &RouteDecision, items: usize, observed_us: f64) {
        if let Some(p) = self.paths.get_mut(decision.path) {
            p.observed_batches += 1;
            p.observed_us_sum += observed_us;
            if p.transient {
                // First batch after a switch: cold-start cost, not path
                // cost. Keep `refresh` armed for the next observation.
                p.transient = false;
                return;
            }
            let per_item = observed_us / items.max(1) as f64;
            let alpha = if p.refresh {
                // Fresh evidence after idleness: the old window is
                // stale history and must not outvote the new sample.
                p.clear_recent();
                REFRESH_ALPHA
            } else {
                EWMA_ALPHA
            };
            p.refresh = false;
            let value = p.note_recent(per_item);
            p.ewma_us =
                if p.ewma_us > 0.0 { alpha * value + (1.0 - alpha) * p.ewma_us } else { value };
        }
    }

    /// The [`ExecutionMode`] of the current lowest-cost path — PR 6's
    /// `Calibration::choose`, restated over the unified cost model. Ties
    /// resolve to the earliest-registered path (monolithic first).
    #[must_use]
    pub fn choose_mode(&self) -> ExecutionMode {
        let mut best = PathKind::Monolithic;
        let mut best_us = f64::INFINITY;
        for p in &self.paths {
            if p.cost.per_item_us < best_us {
                best_us = p.cost.per_item_us;
                best = p.descriptor.kind;
            }
        }
        match best {
            PathKind::Monolithic | PathKind::Pool => ExecutionMode::Monolithic,
            PathKind::Pipelined => ExecutionMode::Pipelined,
            PathKind::Replicated => ExecutionMode::Replicated,
        }
    }

    /// Point-in-time statistics for reporting.
    #[must_use]
    pub fn snapshot(&self) -> RouterSnapshot {
        RouterSnapshot {
            paths: self
                .paths
                .iter()
                .map(|p| RouterPathStats {
                    descriptor: p.descriptor,
                    cost: p.cost,
                    ewma_us: (p.ewma_us > 0.0).then_some(p.ewma_us),
                    dispatches: p.dispatches,
                    items: p.items,
                    mean_predicted_us: if p.dispatches > 0 {
                        p.predicted_us_sum / p.dispatches as f64
                    } else {
                        0.0
                    },
                    mean_observed_us: if p.observed_batches > 0 {
                        p.observed_us_sum / p.observed_batches as f64
                    } else {
                        0.0
                    },
                })
                .collect(),
            slo_fallbacks: self.slo_fallbacks,
            probes: self.probes,
            traffic_hit_rate: self.sketch.hit_rate(),
        }
    }
}

/// The single dispatch seam over every engine variant: anything that can
/// answer a query (and a batch of queries) can be a routable path.
pub trait ExecutionPath: Send {
    /// Predicts the CTR for one query.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if the query is malformed or the
    /// underlying engine fails.
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError>;

    /// Predicts CTRs for a batch of queries, order-preserving.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if any query is malformed or the
    /// underlying engine fails.
    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError>;
}

impl ExecutionPath for MicroRec {
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        MicroRec::predict(self, query)
    }

    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        MicroRec::predict_batch(self, queries)
    }
}

impl ExecutionPath for EnginePool {
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        EnginePool::predict(self, query)
    }

    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        // lint: allow(transitive-hot-path-alloc) replica fan-out owns one result vec per worker thread per batch
        EnginePool::predict_batch(self, queries)
    }
}

impl ExecutionPath for PipelineExecutor {
    fn predict(&mut self, query: &[u64]) -> Result<f32, MicroRecError> {
        PipelineExecutor::predict(self, query)
    }

    fn predict_batch(&mut self, queries: &[Vec<u64>]) -> Result<Vec<f32>, MicroRecError> {
        PipelineExecutor::predict_batch(self, queries)
    }
}

/// Owned engine behind one path. The enum (rather than a boxed trait
/// object) keeps shutdown explicit: the staged executor must join its
/// stage threads by value.
enum PathEngine {
    Mono(Box<MicroRec>),
    Pool(EnginePool),
    Staged(PipelineExecutor),
}

impl PathEngine {
    fn as_path(&mut self) -> &mut dyn ExecutionPath {
        match self {
            PathEngine::Mono(e) => &mut **e,
            PathEngine::Pool(e) => e,
            PathEngine::Staged(e) => e,
        }
    }
}

/// A built path matrix plus its (shareable) cost model: the unit one
/// serving worker routes over.
pub struct PathSet {
    engines: Vec<PathEngine>,
    model: Arc<Mutex<PathCostModel>>,
    pipeline_shared: Vec<Arc<PipelineShared>>,
}

impl std::fmt::Debug for PathSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PathSet").field("paths", &self.engines.len()).finish_non_exhaustive()
    }
}

impl PathSet {
    /// Builds the standard path matrix for `builder`'s configuration and
    /// calibrates a fresh cost model (see [`PathSet::build_shared`] to
    /// reuse a seeded model across workers).
    ///
    /// The matrix: the monolithic engine as configured; a cache-off
    /// monolithic twin when a hot-row cache is configured (the uniform-
    /// traffic escape path); a per-layer staged pipeline; and a two-
    /// replica cache-off [`EnginePool`]. Replicated staged plans remain
    /// routable through the [`ExecutionPath`] seam but are not part of
    /// the default matrix on single-core hosts. A tiered builder
    /// registers its monolithic paths as `"tiered"`/`"tiered-nocache"`
    /// (every path shares one tiered backing), so the cost model learns
    /// the tiered store's real cost rather than an all-resident estimate.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if any engine fails to build or the
    /// calibration probes fail.
    pub fn build(builder: &MicroRecBuilder, max_batch: usize) -> Result<Self, MicroRecError> {
        Self::assemble(builder, max_batch, None)
    }

    /// Builds the same path matrix but shares `model` (from an earlier
    /// [`PathSet::build`] on an identically-configured builder), skipping
    /// re-calibration when the model is already seeded.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError`] if engine construction fails or `model`
    /// was built over a different path matrix.
    pub fn build_shared(
        builder: &MicroRecBuilder,
        max_batch: usize,
        model: Arc<Mutex<PathCostModel>>,
    ) -> Result<Self, MicroRecError> {
        Self::assemble(builder, max_batch, Some(model))
    }

    fn assemble(
        builder: &MicroRecBuilder,
        max_batch: usize,
        shared: Option<Arc<Mutex<PathCostModel>>>,
    ) -> Result<Self, MicroRecError> {
        let mut base = builder.clone();
        base.prepare_shared_arena()?;
        let spec = base.model_spec().clone();
        let arity = spec.lookups_per_item() as usize;
        let cached = base.cache_rows() > 0;
        let tiered = base.is_tiered();
        let format = base.arena_row_format().map_or("legacy", RowFormat::as_str);

        let warm = |b: MicroRecBuilder| -> Result<MicroRec, MicroRecError> {
            let mut engine = b.build()?;
            engine.predict(&vec![0u64; arity])?;
            engine.reset_stats();
            Ok(engine)
        };

        let mut descriptors = Vec::new();
        let mut engines = Vec::new();
        let mut pipeline_shared = Vec::new();

        // Tiered builders register their engines under tiered path names:
        // the cost model then learns the tiered store's real cost (cold
        // reads included) instead of inheriting an all-resident estimate.
        // Every path in the matrix shares the same tiered backing (it was
        // prepared above), so the names track the whole matrix's storage.
        descriptors.push(PathDescriptor {
            name: match (tiered, cached) {
                (true, true) => "tiered",
                (true, false) => "tiered-nocache",
                (false, true) => "monolithic",
                (false, false) => "monolithic-nocache",
            },
            kind: PathKind::Monolithic,
            format,
            cached,
        });
        engines.push(PathEngine::Mono(Box::new(warm(base.clone())?)));

        if cached {
            descriptors.push(PathDescriptor {
                name: if tiered { "tiered-nocache" } else { "monolithic-nocache" },
                kind: PathKind::Monolithic,
                format,
                cached: false,
            });
            engines.push(PathEngine::Mono(Box::new(warm(base.clone().hot_row_cache(0))?)));
        }

        let plan = PipelinePlan::per_layer(spec.hidden.len() + 1, 4);
        let staged = PipelineExecutor::with_plan(vec![warm(base.clone())?], &plan)?;
        pipeline_shared.push(Arc::clone(staged.shared()));
        descriptors.push(PathDescriptor {
            name: "pipelined",
            kind: PathKind::Pipelined,
            format,
            cached,
        });
        engines.push(PathEngine::Staged(staged));

        descriptors.push(PathDescriptor {
            name: "pool",
            kind: PathKind::Pool,
            format,
            cached: false,
        });
        engines.push(PathEngine::Pool(EnginePool::from_builder(base.clone().hot_row_cache(0), 2)?));

        let model = match shared {
            Some(model) => {
                {
                    let guard = lock_or_recover(&model);
                    if guard.num_paths() != descriptors.len() {
                        return Err(MicroRecError::Runtime(format!(
                            "shared cost model covers {} paths, this builder produces {}",
                            guard.num_paths(),
                            descriptors.len()
                        )));
                    }
                }
                model
            }
            None => Arc::new(Mutex::new(PathCostModel::new(descriptors))),
        };

        let mut set = PathSet { engines, model, pipeline_shared };
        if !lock_or_recover(&set.model).is_seeded() {
            set.calibrate(&spec, max_batch)?;
        }
        Ok(set)
    }

    /// Measures each path at batch 1 and batch `min(max_batch, 32)` on a
    /// deterministic query stream and seeds the cost model.
    fn calibrate(&mut self, spec: &ModelSpec, max_batch: usize) -> Result<(), MicroRecError> {
        let batch = max_batch.clamp(2, 32);
        let queries = calibration_queries(spec, batch * 3);
        let model = &self.model;
        for (i, engine) in self.engines.iter_mut().enumerate() {
            let path = engine.as_path();
            // Warm: touch the datapath (and any cache) once.
            path.predict_batch(&queries[..batch])?;
            let start = Instant::now();
            for q in queries.iter().take(CALIBRATION_SINGLES) {
                path.predict(q)?;
            }
            let single_us = start.elapsed().as_secs_f64() * 1e6 / CALIBRATION_SINGLES as f64;
            let start = Instant::now();
            path.predict_batch(&queries[batch..2 * batch])?;
            path.predict_batch(&queries[2 * batch..3 * batch])?;
            let batch_us = start.elapsed().as_secs_f64() * 1e6 / 2.0;
            lock_or_recover(model).seed_cost(i, PathCost::fit(single_us, batch_us, batch));
        }
        Ok(())
    }

    /// Number of routable paths.
    #[must_use]
    pub fn num_paths(&self) -> usize {
        self.engines.len()
    }

    /// Descriptor of path `i`.
    #[must_use]
    pub fn descriptor(&self, i: usize) -> Option<PathDescriptor> {
        lock_or_recover(&self.model).descriptor(i)
    }

    /// The shared cost model (for reuse via [`PathSet::build_shared`]).
    #[must_use]
    pub fn model(&self) -> Arc<Mutex<PathCostModel>> {
        Arc::clone(&self.model)
    }

    /// Stage counters of the staged paths in this set.
    pub(crate) fn pipeline_shared(&self) -> &[Arc<PipelineShared>] {
        &self.pipeline_shared
    }

    /// Folds the batch into the traffic sketch and picks a path (see
    /// [`PathCostModel::route`] for `remaining_us`/`overload` semantics).
    pub fn route(
        &mut self,
        queries: &[Vec<u64>],
        remaining_us: Option<f64>,
        overload: bool,
    ) -> RouteDecision {
        let mut model = lock_or_recover(&self.model);
        model.note_traffic(queries);
        model.route(queries.len(), remaining_us, overload)
    }

    /// Runs a batch on path `path`.
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] for an unknown path index, or
    /// the underlying engine's error.
    pub fn predict_batch_on(
        &mut self,
        path: usize,
        queries: &[Vec<u64>],
    ) -> Result<Vec<f32>, MicroRecError> {
        match self.engines.get_mut(path) {
            Some(engine) => engine.as_path().predict_batch(queries),
            // lint: allow(transitive-hot-path-alloc) cold arm: an unknown path index is a routing bug, not steady state
            None => Err(MicroRecError::Runtime(format!("unknown path index {path}"))),
        }
    }

    /// Runs one query on path `path` (per-item fallback path).
    ///
    /// # Errors
    ///
    /// Returns [`MicroRecError::Runtime`] for an unknown path index, or
    /// the underlying engine's error.
    pub fn predict_on(&mut self, path: usize, query: &[u64]) -> Result<f32, MicroRecError> {
        match self.engines.get_mut(path) {
            Some(engine) => engine.as_path().predict(query),
            // lint: allow(transitive-hot-path-alloc) cold arm: an unknown path index is a routing bug, not steady state
            None => Err(MicroRecError::Runtime(format!("unknown path index {path}"))),
        }
    }

    /// Feeds an observed batch latency back into the cost model.
    pub fn observe(&self, decision: &RouteDecision, items: usize, observed_us: f64) {
        lock_or_recover(&self.model).observe(decision, items, observed_us);
    }

    /// Routes, executes, times, and feeds back one batch.
    ///
    /// # Errors
    ///
    /// Returns the underlying engine's error (no feedback is recorded
    /// for failed batches).
    pub fn run_batch(
        &mut self,
        queries: &[Vec<u64>],
        remaining_us: Option<f64>,
        overload: bool,
    ) -> Result<(RouteDecision, Vec<f32>), MicroRecError> {
        let decision = self.route(queries, remaining_us, overload);
        let start = Instant::now();
        let outputs = self.predict_batch_on(decision.path, queries)?;
        self.observe(&decision, queries.len(), start.elapsed().as_secs_f64() * 1e6);
        Ok((decision, outputs))
    }

    /// Point-in-time router statistics.
    #[must_use]
    pub fn snapshot(&self) -> RouterSnapshot {
        lock_or_recover(&self.model).snapshot()
    }

    /// Joins the staged paths' stage threads and drops every engine.
    pub fn shutdown(self) {
        for engine in self.engines {
            if let PathEngine::Staged(executor) = engine {
                drop(executor.shutdown_all());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor(name: &'static str, kind: PathKind, cached: bool) -> PathDescriptor {
        PathDescriptor { name, kind, format: "f16", cached }
    }

    fn seeded_two_path() -> PathCostModel {
        let mut model = PathCostModel::new(vec![
            descriptor("pipelined", PathKind::Pipelined, false),
            descriptor("monolithic", PathKind::Monolithic, false),
        ]);
        // Pipelined: high fixed fill cost, cheap marginal items — the
        // throughput winner at batch 32, latency loser at batch 1.
        model.seed_cost(0, PathCost { fixed_us: 400.0, per_item_us: 10.0, single_us: 410.0 });
        model.seed_cost(1, PathCost { fixed_us: 0.0, per_item_us: 50.0, single_us: 50.0 });
        model
    }

    #[test]
    fn routes_to_the_predicted_fastest_path() {
        let mut model = seeded_two_path();
        // Batch 32: 400 + 320 = 720 beats 1600.
        assert_eq!(model.route(32, None, false).path, 0);
        // Batch 2: 420 loses to 100.
        assert_eq!(model.route(2, None, false).path, 1);
    }

    #[test]
    fn slo_guard_falls_back_to_the_lowest_latency_path() {
        let mut model = seeded_two_path();
        let relaxed = model.route(32, Some(10_000.0), false);
        assert_eq!(relaxed.path, 0);
        assert!(!relaxed.slo_fallback);
        // 500 µs remaining < the winner's predicted 720 µs: take the
        // measured lowest single-item-latency path instead.
        let tight = model.route(32, Some(500.0), false);
        assert_eq!(tight.path, 1);
        assert!(tight.slo_fallback);
        assert_eq!(model.snapshot().slo_fallbacks, 1);
    }

    #[test]
    fn ewma_feedback_overrides_a_stale_calibration() {
        let mut model = seeded_two_path();
        let decision = model.route(32, None, false);
        assert_eq!(decision.path, 0);
        // The pipelined path turns out far worse than calibrated:
        // 3200 µs per 32-item batch = 100 µs/item vs the 50 of path 1.
        for _ in 0..8 {
            model.observe(&decision, 32, 3200.0);
        }
        assert_eq!(model.route(32, None, false).path, 1);
    }

    #[test]
    fn reseed_after_swap_drops_observed_history_but_keeps_calibration() {
        let mut model = seeded_two_path();
        let decision = model.route(32, None, false);
        assert_eq!(decision.path, 0);
        // Pre-swap feedback poisons the pipelined path's estimate far
        // above its calibrated line (old-layout measurements).
        for _ in 0..8 {
            model.observe(&decision, 32, 3200.0);
        }
        assert_eq!(model.route(32, None, false).path, 1, "EWMA overrode calibration");
        model.reseed_after_swap();
        let snap = model.snapshot();
        assert!(snap.paths.iter().all(|p| p.ewma_us.is_none()), "observed history cleared");
        assert!(model.is_seeded(), "calibrated cost lines survive the swap");
        // Routing falls back to the calibrated lines: the pipelined path
        // wins batch 32 again, exactly like startup.
        assert_eq!(model.route(32, None, false).path, 0);
    }

    #[test]
    fn cold_traffic_routes_around_the_cache_path() {
        let mut model = PathCostModel::new(vec![
            descriptor("monolithic", PathKind::Monolithic, true),
            descriptor("monolithic-nocache", PathKind::Monolithic, false),
        ]);
        // Cache path slightly cheaper per calibration (warm stream).
        model.seed_cost(0, PathCost { fixed_us: 0.0, per_item_us: 40.0, single_us: 40.0 });
        model.seed_cost(1, PathCost { fixed_us: 0.0, per_item_us: 50.0, single_us: 50.0 });
        assert_eq!(model.route(16, None, false).path, 0);
        // Uniform traffic: every (slot, id) key distinct → sketch rate ~0.
        let uniform: Vec<Vec<u64>> =
            (0..64u64).map(|i| (0..32u64).map(|j| i * 1000 + j * 31).collect()).collect();
        for chunk in uniform.chunks(8) {
            model.note_traffic(chunk);
        }
        assert!(model.traffic_hit_rate().is_some_and(|r| r < 0.10));
        assert_eq!(model.route(16, None, false).path, 1);
        // Skewed traffic (one hot query repeated) warms the sketch back up.
        let hot: Vec<Vec<u64>> = (0..64).map(|_| vec![7u64; 32]).collect();
        for chunk in hot.chunks(8) {
            model.note_traffic(chunk);
        }
        assert!(model.traffic_hit_rate().is_some_and(|r| r > 0.5));
        assert_eq!(model.route(16, None, false).path, 0);
    }

    #[test]
    fn shape_model_prefers_monolithic_for_tiny_mlps_and_pipelined_for_deep_ones() {
        use microrec_embedding::TableSpec;
        let tiny = ModelSpec::new(
            "tiny-mlp",
            (0..4).map(|i| TableSpec::new(format!("t{i}"), 1_000, 4)).collect(),
            vec![16],
            2,
        );
        let tiny_model = PathCostModel::from_shape(&tiny, SHAPE_DEFAULT_HOP_US);
        assert_eq!(tiny_model.choose_mode(), ExecutionMode::Monolithic);

        let deep = ModelSpec::dlrm_rmc2(8, 16);
        let deep_model = PathCostModel::from_shape(&deep, SHAPE_DEFAULT_HOP_US);
        assert_eq!(deep_model.choose_mode(), ExecutionMode::Pipelined);
    }

    #[test]
    fn cost_fit_recovers_fixed_and_marginal_terms() {
        let cost = PathCost::fit(410.0, 400.0 + 32.0 * 10.0, 32);
        assert!((cost.per_item_us - 10.0).abs() < 1.0, "{cost:?}");
        assert!((cost.fixed_us - 400.0).abs() < 11.0, "{cost:?}");
        assert!((cost.batch_us(10) - 500.0).abs() < 15.0, "{cost:?}");
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_across_noise_but_not_regressions() {
        let mut model = PathCostModel::new(vec![
            descriptor("a", PathKind::Monolithic, false),
            descriptor("b", PathKind::Pool, false),
        ]);
        model.seed_cost(0, PathCost { fixed_us: 0.0, per_item_us: 10.0, single_us: 10.0 });
        model.seed_cost(1, PathCost { fixed_us: 0.0, per_item_us: 10.4, single_us: 10.4 });
        let d = model.route(16, None, false);
        assert_eq!(d.path, 0);
        // Noise nudges the incumbent 2% past the challenger: within the
        // hysteresis band, the incumbent keeps the traffic.
        for _ in 0..16 {
            model.observe(&d, 16, 16.0 * 10.6);
        }
        assert_eq!(model.route(16, None, false).path, 0);
        // A real regression (2x) is decisive and displaces it.
        for _ in 0..16 {
            model.observe(&d, 16, 16.0 * 20.0);
        }
        assert_eq!(model.route(16, None, false).path, 1);
    }

    #[test]
    fn an_isolated_latency_outlier_never_moves_the_estimate() {
        let mut model = PathCostModel::new(vec![
            descriptor("a", PathKind::Monolithic, false),
            descriptor("b", PathKind::Pool, false),
        ]);
        model.seed_cost(0, PathCost { fixed_us: 0.0, per_item_us: 10.0, single_us: 10.0 });
        model.seed_cost(1, PathCost { fixed_us: 0.0, per_item_us: 11.0, single_us: 11.0 });
        let d = model.route(16, None, false);
        assert_eq!(d.path, 0);
        for _ in 0..8 {
            model.observe(&d, 16, 16.0 * 10.0);
        }
        // One scheduler-preempted batch at 5x the true cost: the
        // median-of-3 window rejects it, the estimate holds, and the
        // router must not flee to the slower path.
        model.observe(&d, 16, 16.0 * 50.0);
        let next = model.route(16, None, false);
        assert_eq!(next.path, 0, "a single outlier made the router flee its best path");
        let ewma = model.snapshot().paths[0].ewma_us.expect("feedback recorded");
        assert!((ewma - 10.0).abs() < 0.5, "outlier leaked into the EWMA: {ewma}");
    }

    #[test]
    fn probe_redispatches_a_stale_near_winner() {
        let mut model = PathCostModel::new(vec![
            descriptor("a", PathKind::Monolithic, false),
            descriptor("b", PathKind::Pool, false),
        ]);
        model.seed_cost(0, PathCost { fixed_us: 0.0, per_item_us: 10.0, single_us: 10.0 });
        model.seed_cost(1, PathCost { fixed_us: 0.0, per_item_us: 12.0, single_us: 12.0 });
        let mut probed = 0;
        for _ in 0..(REPROBE_IDLE + PROBE_SPACING + 4) {
            let d = model.route(16, None, false);
            if d.probe {
                probed += 1;
                assert_eq!(d.path, 1);
            } else {
                assert_eq!(d.path, 0);
            }
        }
        assert!(probed >= 1, "stale near-winner was never re-probed");
        // Under overload, probing is disabled entirely.
        let mut model = seeded_two_path();
        for _ in 0..(REPROBE_IDLE + PROBE_SPACING + 4) {
            assert!(!model.route(32, None, true).probe);
        }
    }
}
