//! Placement plans: which physical table sits in which memory bank.

use std::collections::BTreeMap;

use microrec_embedding::{cartesian, MergePlan, ModelSpec, Precision, TableSpec};
use microrec_memsim::{BankId, HybridMemory, MemoryConfig, SimTime};

use crate::error::PlacementError;
use crate::traffic::TrafficProfile;

/// One physical table (single or Cartesian product) placed in memory.
///
/// A table may be *replicated* across several banks; replicas share the
/// contents, and the `lookups_per_table` reads of one inference are spread
/// round-robin over them. Replication only pays off for models that look up
/// each table several times (DLRM-RMC2's 4 lookups per table, §5.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedTable {
    /// Spec of the stored table (the product spec for merged tables).
    pub spec: TableSpec,
    /// Logical table indices served by this physical table, in
    /// concatenation order (length 1 for unmerged tables).
    pub members: Vec<usize>,
    /// Banks holding a full copy (≥ 1 entry).
    pub banks: Vec<BankId>,
}

impl PlacedTable {
    /// Whether this is a Cartesian product.
    #[must_use]
    pub fn is_merged(&self) -> bool {
        self.members.len() > 1
    }

    /// Bytes of one stored row at `precision`.
    #[must_use]
    pub fn row_bytes(&self, precision: Precision) -> u32 {
        self.spec.row_bytes(precision)
    }
}

/// Cost summary of a plan — the objective of Algorithm 1.
///
/// Plans are compared by embedding-lookup latency first and total storage
/// second ("for ties in latency, the solution with the least storage
/// overhead is chosen", §3.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCost {
    /// Time for the embedding-lookup stage of one inference (bottleneck
    /// bank; banks work in parallel).
    pub lookup_latency: SimTime,
    /// Total bytes stored across all banks (replicas included).
    pub storage_bytes: u64,
    /// Largest number of serialized reads on any off-chip DRAM bank — the
    /// paper's "DRAM access rounds".
    pub dram_rounds: usize,
    /// Physical tables resident in DRAM (HBM or DDR), counting each table
    /// once regardless of replicas.
    pub tables_in_dram: usize,
    /// Physical tables cached on chip.
    pub tables_on_chip: usize,
}

impl PlanCost {
    /// `true` if `self` beats `other` under the paper's objective.
    #[must_use]
    pub fn better_than(&self, other: &PlanCost) -> bool {
        (self.lookup_latency, self.storage_bytes) < (other.lookup_latency, other.storage_bytes)
    }
}

/// A complete solution: merge plan plus bank assignment for every physical
/// table.
///
/// The physical table order matches
/// [`Catalog::from_tables`](microrec_embedding::Catalog): merged groups
/// first (in merge-plan order), then unmerged singles in logical order, so
/// index `i` here corresponds to physical table `i` in the catalog built
/// from [`Plan::merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Name of the model this plan was built for.
    pub model_name: String,
    /// The Cartesian merge decisions.
    pub merge: MergePlan,
    /// Every physical table with its bank assignment, in catalog order.
    pub placed: Vec<PlacedTable>,
    /// Storage precision the plan was sized for.
    pub precision: Precision,
}

impl Plan {
    /// Number of physical tables (the paper's "Table Num" column of
    /// Table 3 counts these plus nothing else).
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.placed.len()
    }

    /// The banks holding physical table `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn banks_for(&self, idx: usize) -> &[BankId] {
        &self.placed[idx].banks
    }

    /// Evaluates the plan's cost for a model issuing `lookups_per_table`
    /// reads per logical table.
    ///
    /// Each physical table is read `lookups_per_table` times per inference
    /// (a merged table's single read serves all its members simultaneously);
    /// reads are spread round-robin over replicas; banks service their reads
    /// serially and in parallel with each other.
    #[must_use]
    pub fn cost(&self, config: &MemoryConfig, lookups_per_table: u32) -> PlanCost {
        let mut bank_time: BTreeMap<BankId, SimTime> = BTreeMap::new();
        let mut bank_reads: BTreeMap<BankId, usize> = BTreeMap::new();
        let mut storage = 0u64;
        let mut tables_in_dram = 0usize;
        let mut tables_on_chip = 0usize;

        for table in &self.placed {
            storage += table.spec.bytes(self.precision) * table.banks.len() as u64;
            let primary_kind = table.banks[0].kind;
            if primary_kind.is_dram() {
                tables_in_dram += 1;
            } else {
                tables_on_chip += 1;
            }
            let replicas = table.banks.len() as u32;
            let row_bytes = table.row_bytes(self.precision);
            for (r, &bank) in table.banks.iter().enumerate() {
                // Round-robin: replica r serves lookups r, r+replicas, ...
                let reads = (u64::from(lookups_per_table) + replicas as u64 - 1 - r as u64)
                    / u64::from(replicas);
                if reads == 0 {
                    continue;
                }
                let timing = config
                    .bank_spec(bank)
                    .map(|s| s.timing.access_time(row_bytes))
                    .unwrap_or(SimTime::ZERO);
                *bank_time.entry(bank).or_insert(SimTime::ZERO) += timing * reads;
                *bank_reads.entry(bank).or_insert(0) += reads as usize;
            }
        }

        let lookup_latency = bank_time.values().copied().max().unwrap_or(SimTime::ZERO);
        let dram_rounds = bank_reads
            .iter()
            .filter(|(id, _)| id.kind.is_dram())
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        PlanCost {
            lookup_latency,
            storage_bytes: storage,
            dram_rounds,
            tables_in_dram,
            tables_on_chip,
        }
    }

    /// Evaluates the plan's cost re-weighted by an observed
    /// [`TrafficProfile`].
    ///
    /// With a uniform profile this delegates to [`Plan::cost`] and is
    /// bit-identical to it. With a skewed profile, each physical table's
    /// bank time is scaled by the observed demand of its logical members
    /// (normalized so that a uniform profile yields weight 1 for every
    /// table): a table whose members drew `w` of the `total` observed
    /// backing accesses contributes `w · N / (total · |members|)` of its
    /// unweighted bank time, where `N` is the number of logical tables.
    /// The weighted `lookup_latency` is a deterministic *comparison score*
    /// for plan selection under skew — not a physical latency prediction.
    /// Structural fields (`storage_bytes`, `dram_rounds`, table counts)
    /// are unweighted.
    ///
    /// All arithmetic is integer fixed-point (u128, 16 fractional bits),
    /// so two processes scoring the same plan under the same counter
    /// snapshot produce identical results.
    #[must_use]
    pub fn cost_with_traffic(
        &self,
        config: &MemoryConfig,
        lookups_per_table: u32,
        profile: &TrafficProfile,
    ) -> PlanCost {
        if profile.is_uniform() {
            return self.cost(config, lookups_per_table);
        }
        const FIX: u128 = 1 << 16;
        let n_logical: u128 =
            self.placed.iter().map(|t| t.members.len() as u128).sum::<u128>().max(1);
        let total = u128::from(profile.total()).max(1);

        let mut bank_fix: BTreeMap<BankId, u128> = BTreeMap::new();
        let mut bank_reads: BTreeMap<BankId, usize> = BTreeMap::new();
        let mut storage = 0u64;
        let mut tables_in_dram = 0usize;
        let mut tables_on_chip = 0usize;

        for table in &self.placed {
            storage += table.spec.bytes(self.precision) * table.banks.len() as u64;
            if table.banks[0].kind.is_dram() {
                tables_in_dram += 1;
            } else {
                tables_on_chip += 1;
            }
            let weight: u128 = table
                .members
                .iter()
                .map(|&m| u128::from(profile.count(m)))
                .sum();
            let members = table.members.len() as u128;
            let replicas = table.banks.len() as u32;
            let row_bytes = table.row_bytes(self.precision);
            for (r, &bank) in table.banks.iter().enumerate() {
                let reads = (u64::from(lookups_per_table) + replicas as u64 - 1 - r as u64)
                    / u64::from(replicas);
                if reads == 0 {
                    continue;
                }
                let timing = config
                    .bank_spec(bank)
                    .map(|s| s.timing.access_time(row_bytes))
                    .unwrap_or(SimTime::ZERO);
                let contrib = u128::from(timing.as_ps()) * u128::from(reads) * FIX * weight
                    * n_logical
                    / (total * members);
                *bank_fix.entry(bank).or_insert(0) += contrib;
                *bank_reads.entry(bank).or_insert(0) += reads as usize;
            }
        }

        let max_fix = bank_fix.values().copied().max().unwrap_or(0);
        let lookup_latency = SimTime::from_ps((max_fix / FIX) as u64);
        let dram_rounds = bank_reads
            .iter()
            .filter(|(id, _)| id.kind.is_dram())
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        PlanCost {
            lookup_latency,
            storage_bytes: storage,
            dram_rounds,
            tables_in_dram,
            tables_on_chip,
        }
    }

    /// Checks the plan against a model and memory configuration: every
    /// logical table appears exactly once, every referenced bank exists, no
    /// bank's capacity is exceeded, and replica sets are non-empty and
    /// duplicate-free.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InvalidPlan`] describing the first
    /// violation found.
    pub fn validate(&self, model: &ModelSpec, config: &MemoryConfig) -> Result<(), PlacementError> {
        let mut seen = vec![false; model.num_tables()];
        for table in &self.placed {
            if table.banks.is_empty() {
                return Err(PlacementError::InvalidPlan(format!(
                    "table `{}` has no banks",
                    table.spec.name
                )));
            }
            let mut banks = table.banks.clone();
            banks.sort_unstable();
            banks.dedup();
            if banks.len() != table.banks.len() {
                return Err(PlacementError::InvalidPlan(format!(
                    "table `{}` lists a bank twice",
                    table.spec.name
                )));
            }
            for &member in &table.members {
                if member >= seen.len() {
                    return Err(PlacementError::InvalidPlan(format!(
                        "logical table index {member} out of range"
                    )));
                }
                if seen[member] {
                    return Err(PlacementError::InvalidPlan(format!(
                        "logical table {member} placed twice"
                    )));
                }
                seen[member] = true;
            }
            // Product spec consistency for merged tables.
            if table.is_merged() {
                let members: Vec<&TableSpec> =
                    table.members.iter().map(|&i| &model.tables[i]).collect();
                let expect = cartesian::product_spec(&members)?;
                if expect.rows != table.spec.rows || expect.dim != table.spec.dim {
                    return Err(PlacementError::InvalidPlan(format!(
                        "table `{}` has inconsistent product spec",
                        table.spec.name
                    )));
                }
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(PlacementError::InvalidPlan(format!("logical table {missing} not placed")));
        }

        // Capacity check via a scratch ledger.
        let mut used: BTreeMap<BankId, u64> = BTreeMap::new();
        for table in &self.placed {
            for &bank in &table.banks {
                let spec = config.bank_spec(bank).ok_or_else(|| {
                    PlacementError::InvalidPlan(format!("bank {bank} not in configuration"))
                })?;
                let u = used.entry(bank).or_insert(0);
                *u += table.spec.bytes(self.precision);
                if *u > spec.capacity {
                    return Err(PlacementError::InvalidPlan(format!(
                        "bank {bank} over capacity ({} > {})",
                        u, spec.capacity
                    )));
                }
            }
        }
        Ok(())
    }

    /// Applies the plan to a [`HybridMemory`], allocating one region per
    /// (table, replica).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures (unknown bank, over capacity).
    pub fn apply(&self, memory: &mut HybridMemory) -> Result<(), PlacementError> {
        for table in &self.placed {
            let bytes = table.spec.bytes(self.precision);
            for (r, &bank) in table.banks.iter().enumerate() {
                let label = if table.banks.len() > 1 {
                    format!("{}#r{r}", table.spec.name)
                } else {
                    table.spec.name.clone()
                };
                memory.alloc(bank, label, bytes)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microrec_memsim::MemoryKind;

    fn model() -> ModelSpec {
        ModelSpec::new(
            "toy",
            vec![
                TableSpec::new("a", 100, 4),
                TableSpec::new("b", 200, 8),
                TableSpec::new("c", 50, 4),
            ],
            vec![16],
            1,
        )
    }

    fn hbm(i: u16) -> BankId {
        BankId::new(MemoryKind::Hbm, i)
    }

    fn unmerged_plan() -> Plan {
        let m = model();
        Plan {
            model_name: m.name.clone(),
            merge: MergePlan::none(),
            placed: m
                .tables
                .iter()
                .enumerate()
                .map(|(i, spec)| PlacedTable {
                    spec: spec.clone(),
                    members: vec![i],
                    banks: vec![hbm(i as u16)],
                })
                .collect(),
            precision: Precision::F32,
        }
    }

    #[test]
    fn valid_plan_passes() {
        unmerged_plan().validate(&model(), &MemoryConfig::u280()).unwrap();
    }

    #[test]
    fn cost_one_table_per_bank_is_one_round() {
        let cost = unmerged_plan().cost(&MemoryConfig::u280(), 1);
        assert_eq!(cost.dram_rounds, 1);
        assert_eq!(cost.tables_in_dram, 3);
        assert_eq!(cost.tables_on_chip, 0);
        // Bottleneck is the dim-8 table (32-byte row).
        let hbm_t = MemoryConfig::u280().bank_spec(hbm(1)).unwrap().timing.clone();
        assert_eq!(cost.lookup_latency, hbm_t.access_time(32));
    }

    #[test]
    fn co_located_tables_double_rounds() {
        let mut plan = unmerged_plan();
        plan.placed[2].banks = vec![hbm(0)];
        let cost = plan.cost(&MemoryConfig::u280(), 1);
        assert_eq!(cost.dram_rounds, 2);
        let hbm_t = MemoryConfig::u280().bank_spec(hbm(0)).unwrap().timing.clone();
        assert_eq!(cost.lookup_latency, hbm_t.access_time(16) * 2);
    }

    #[test]
    fn replication_splits_multi_lookups() {
        let mut plan = unmerged_plan();
        plan.placed[1].banks = vec![hbm(1), hbm(10)];
        // 4 lookups per table: unreplicated tables serialize 4 reads,
        // the replicated one only 2 per bank.
        let cost = plan.cost(&MemoryConfig::u280(), 4);
        assert_eq!(cost.dram_rounds, 4);
        let t = MemoryConfig::u280().bank_spec(hbm(0)).unwrap().timing.clone();
        // Bottleneck: table b replicated -> 2 reads of 32 B vs table a 4 reads of 16 B.
        let a4 = t.access_time(16) * 4;
        let b2 = t.access_time(32) * 2;
        assert_eq!(cost.lookup_latency, a4.max(b2));
        // Storage counts both replicas.
        let m = model();
        let base: u64 = m.tables.iter().map(|t| t.bytes(Precision::F32)).sum();
        assert_eq!(cost.storage_bytes, base + m.tables[1].bytes(Precision::F32));
    }

    #[test]
    fn validate_rejects_duplicate_and_missing_tables() {
        let mut plan = unmerged_plan();
        plan.placed[2].members = vec![0];
        let err = plan.validate(&model(), &MemoryConfig::u280()).unwrap_err();
        assert!(matches!(err, PlacementError::InvalidPlan(_)));

        let mut plan = unmerged_plan();
        plan.placed.pop();
        assert!(plan.validate(&model(), &MemoryConfig::u280()).is_err());
    }

    #[test]
    fn validate_rejects_overfull_bank() {
        let mut plan = unmerged_plan();
        // A BRAM bank holds 4 KiB; table b needs 200*32 = 6.4 kB.
        plan.placed[1].banks = vec![BankId::new(MemoryKind::Bram, 0)];
        assert!(plan.validate(&model(), &MemoryConfig::u280()).is_err());
    }

    #[test]
    fn validate_rejects_duplicate_replica_banks() {
        let mut plan = unmerged_plan();
        plan.placed[0].banks = vec![hbm(0), hbm(0)];
        assert!(plan.validate(&model(), &MemoryConfig::u280()).is_err());
    }

    #[test]
    fn apply_allocates_regions() {
        let mut mem = HybridMemory::new(MemoryConfig::u280());
        unmerged_plan().apply(&mut mem).unwrap();
        assert_eq!(mem.bank(hbm(0)).unwrap().used(), 100 * 16);
        assert_eq!(mem.bank(hbm(1)).unwrap().used(), 200 * 32);
    }

    #[test]
    fn merged_plan_validates_product_spec() {
        let m = model();
        let merge = MergePlan::pairs(&[(0, 2)]);
        let product = cartesian::product_spec(&[&m.tables[0], &m.tables[2]]).unwrap();
        let good = Plan {
            model_name: m.name.clone(),
            merge: merge.clone(),
            placed: vec![
                PlacedTable { spec: product.clone(), members: vec![0, 2], banks: vec![hbm(0)] },
                PlacedTable { spec: m.tables[1].clone(), members: vec![1], banks: vec![hbm(1)] },
            ],
            precision: Precision::F32,
        };
        good.validate(&m, &MemoryConfig::u280()).unwrap();

        let mut bad = good;
        bad.placed[0].spec.rows = 999;
        assert!(bad.validate(&m, &MemoryConfig::u280()).is_err());
    }

    #[test]
    fn uniform_traffic_cost_is_bit_identical_to_cost() {
        let plan = unmerged_plan();
        let cfg = MemoryConfig::u280();
        for lookups in [1u32, 4] {
            let base = plan.cost(&cfg, lookups);
            for profile in [
                TrafficProfile::uniform(),
                TrafficProfile::from_counts(vec![9, 9, 9]),
                TrafficProfile::from_counts(vec![0, 0, 0]),
            ] {
                assert_eq!(plan.cost_with_traffic(&cfg, lookups, &profile), base);
            }
        }
    }

    #[test]
    fn skewed_traffic_reweights_bottleneck() {
        // Co-locate tables a and c on one bank so that bank serializes two
        // reads; table b sits alone. Uniformly, the shared bank dominates.
        let mut plan = unmerged_plan();
        plan.placed[2].banks = vec![hbm(0)];
        let cfg = MemoryConfig::u280();
        let uniform = plan.cost_with_traffic(&cfg, 1, &TrafficProfile::uniform());

        // All observed traffic on table b: the shared bank's score shrinks
        // toward zero while b's bank is weighted up by N/|members| = 3.
        let all_b = TrafficProfile::from_counts(vec![0, 30, 0]);
        let skewed = plan.cost_with_traffic(&cfg, 1, &all_b);
        let t = cfg.bank_spec(hbm(1)).unwrap().timing.clone();
        // weight 30/30 * 3 logical tables = 3x the single 32-byte read.
        assert_eq!(skewed.lookup_latency, t.access_time(32) * 3);
        assert!(skewed.lookup_latency > uniform.lookup_latency);

        // Structural fields stay unweighted.
        assert_eq!(skewed.storage_bytes, uniform.storage_bytes);
        assert_eq!(skewed.dram_rounds, uniform.dram_rounds);
        assert_eq!(skewed.tables_in_dram, uniform.tables_in_dram);
    }

    #[test]
    fn merged_table_weight_averages_members() {
        let m = model();
        let product = cartesian::product_spec(&[&m.tables[0], &m.tables[2]]).unwrap();
        let plan = Plan {
            model_name: m.name.clone(),
            merge: MergePlan::pairs(&[(0, 2)]),
            placed: vec![
                PlacedTable { spec: product, members: vec![0, 2], banks: vec![hbm(0)] },
                PlacedTable { spec: m.tables[1].clone(), members: vec![1], banks: vec![hbm(1)] },
            ],
            precision: Precision::F32,
        };
        let cfg = MemoryConfig::u280();
        // Unequal logical counts whose *physical* weights both come out 1:
        // merged {0,2} gets (15+5)·3/(30·2) = 1, single {1} gets
        // 10·3/(30·1) = 1 — so the weighted path (taken, since counts are
        // not uniform) must reproduce the unweighted cost exactly.
        let p = TrafficProfile::from_counts(vec![15, 10, 5]);
        assert_eq!(plan.cost_with_traffic(&cfg, 1, &p), plan.cost(&cfg, 1));
    }

    #[test]
    fn plan_cost_ordering() {
        let a = PlanCost {
            lookup_latency: SimTime::from_ns(100.0),
            storage_bytes: 10,
            dram_rounds: 1,
            tables_in_dram: 1,
            tables_on_chip: 0,
        };
        let mut b = a;
        b.storage_bytes = 5;
        assert!(b.better_than(&a), "equal latency -> less storage wins");
        let mut c = a;
        c.lookup_latency = SimTime::from_ns(99.0);
        c.storage_bytes = 1000;
        assert!(c.better_than(&a), "latency dominates storage");
    }
}

microrec_json::impl_json_struct!(PlacedTable, required { spec, members, banks });
microrec_json::impl_json_struct!(Plan, required { model_name, merge, placed, precision });
