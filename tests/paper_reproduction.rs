//! Integration tests asserting the paper's headline results hold in the
//! reproduction — every claim of the abstract and §5, checked end to end
//! across all crates.

use microrec_core::{end_to_end_report, EmbeddingReport, MicroRec};
use microrec_cpu::{facebook_rmc2_baseline_lookup, CpuTimingModel};
use microrec_embedding::{ModelSpec, Precision};
use microrec_memsim::MemoryConfig;
use microrec_placement::{heuristic_search, HeuristicOptions};

/// Abstract: "13.8 ~ 14.7x speedup on embedding lookup alone" (vs the
/// batch-2048 CPU baseline).
#[test]
fn headline_embedding_speedup() {
    let cpu = CpuTimingModel::aws_16vcpu();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        let merged = MicroRec::builder(model.clone()).build().unwrap();
        let unmerged = MicroRec::builder(model.clone())
            .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
            .build()
            .unwrap();
        let report = EmbeddingReport::build(&merged, &unmerged, &cpu, &[2048]);
        let (_, _, speedup) = report.speedups()[0];
        assert!(
            (10.0..20.0).contains(&speedup),
            "{}: embedding speedup {speedup:.1}x, paper band 13.8-14.7x",
            model.name
        );
    }
}

/// Abstract: "2.5 ~ 5.4x speedup for the entire recommendation inference".
#[test]
fn headline_end_to_end_speedup() {
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let report = end_to_end_report(&model, precision, &[2048]).unwrap();
            let speedup = report.speedups()[0];
            assert!(
                (2.0..6.5).contains(&speedup),
                "{} {precision}: end-to-end speedup {speedup:.2}x, paper band 2.5-5.4x",
                model.name
            );
        }
    }
}

/// Abstract / §5.3: "end-to-end latency for a single inference only
/// consumes 16.3 ~ 31.0 microseconds, 3 to 4 orders of magnitude lower
/// than common latency requirements".
#[test]
fn headline_microsecond_latency() {
    let mut latencies = Vec::new();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        for precision in [Precision::Fixed16, Precision::Fixed32] {
            let engine = MicroRec::builder(model.clone()).precision(precision).build().unwrap();
            latencies.push(engine.latency().as_us());
        }
    }
    for lat in &latencies {
        assert!(
            (12.0..36.0).contains(lat),
            "latency {lat:.1} us outside the paper's 16.3-31.0 us band (±tolerance)"
        );
        // 3-4 orders of magnitude below a 10 ms SLA.
        assert!(*lat < 10_000.0 / 300.0);
    }
    // fp16 configurations are the fastest, large fp32 the slowest.
    assert!(latencies[0] < latencies[3]);
}

/// Contribution 1: "high-bandwidth memory to scale up the concurrency of
/// embedding lookups ... 8.2 ~ 11.1x speedup over the CPU baseline" (HBM
/// only, no Cartesian, batch 2048).
#[test]
fn hbm_alone_gives_order_of_magnitude() {
    let cpu = CpuTimingModel::aws_16vcpu();
    for model in [ModelSpec::small_production(), ModelSpec::large_production()] {
        let merged = MicroRec::builder(model.clone()).build().unwrap();
        let unmerged = MicroRec::builder(model.clone())
            .search_options(HeuristicOptions { allow_merge: false, ..Default::default() })
            .build()
            .unwrap();
        let report = EmbeddingReport::build(&merged, &unmerged, &cpu, &[2048]);
        let (_, hbm_only, _) = report.speedups()[0];
        assert!(
            (6.0..14.0).contains(&hbm_only),
            "{}: HBM-only speedup {hbm_only:.1}x, paper band 8.2-11.1x",
            model.name
        );
    }
}

/// Contribution 2: "Cartesian Products ... further improves the lookup
/// performance by 1.39~1.69x with marginal storage overhead (1.9~3.2%)".
#[test]
fn cartesian_contribution_bands() {
    let config = MemoryConfig::u280();
    for (model, paper_gain, paper_overhead) in
        [(ModelSpec::small_production(), 1.69, 3.2), (ModelSpec::large_production(), 1.39, 1.9)]
    {
        let base = heuristic_search(
            &model,
            &config,
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        let merged =
            heuristic_search(&model, &config, Precision::F32, &HeuristicOptions::default())
                .unwrap();
        let gain = base.cost.lookup_latency.as_ns() / merged.cost.lookup_latency.as_ns();
        assert!(
            (gain - paper_gain).abs() < 0.25,
            "{}: cartesian gain {gain:.2}x vs paper {paper_gain}x",
            model.name
        );
        let overhead =
            (merged.cost.storage_bytes as f64 / model.total_bytes(Precision::F32) as f64 - 1.0)
                * 100.0;
        assert!(
            (overhead - paper_overhead).abs() < 1.5,
            "{}: overhead {overhead:.1}% vs paper {paper_overhead}%",
            model.name
        );
    }
}

/// Table 3's full structure, asserted through the public API end to end.
#[test]
fn table3_structure() {
    let cases = [
        (ModelSpec::small_production(), false, 47, 39, 2),
        (ModelSpec::small_production(), true, 42, 34, 1),
        (ModelSpec::large_production(), false, 98, 82, 3),
        (ModelSpec::large_production(), true, 84, 68, 2),
    ];
    for (model, merge, tables, dram, rounds) in cases {
        let out = heuristic_search(
            &model,
            &MemoryConfig::u280(),
            Precision::F32,
            &HeuristicOptions { allow_merge: merge, ..Default::default() },
        )
        .unwrap();
        assert_eq!(out.plan.num_tables(), tables, "{} merge={merge}", model.name);
        assert_eq!(out.cost.tables_in_dram, dram, "{} merge={merge}", model.name);
        assert_eq!(out.cost.dram_rounds, rounds, "{} merge={merge}", model.name);
    }
}

/// Table 5: the DLRM-RMC2 sweep lands within a few percent of every
/// published cell.
#[test]
fn table5_sweep_matches_paper() {
    let paper = [
        (8usize, 4u32, 334.5, 72.4),
        (8, 8, 353.7, 68.4),
        (8, 16, 411.6, 58.8),
        (8, 32, 486.3, 49.7),
        (8, 64, 648.4, 37.3),
        (12, 4, 648.5, 37.3),
        (12, 8, 707.4, 34.2),
        (12, 16, 817.4, 29.6),
        (12, 32, 972.7, 24.8),
        (12, 64, 1296.9, 18.7),
    ];
    let baseline = facebook_rmc2_baseline_lookup();
    for (tables, dim, paper_ns, paper_speedup) in paper {
        let model = ModelSpec::dlrm_rmc2(tables, dim);
        let out = heuristic_search(
            &model,
            &MemoryConfig::u280(),
            Precision::F32,
            &HeuristicOptions { allow_merge: false, ..Default::default() },
        )
        .unwrap();
        let ns = out.cost.lookup_latency.as_ns();
        let err = (ns - paper_ns).abs() / paper_ns;
        assert!(err < 0.08, "{tables}t dim{dim}: {ns:.1} ns vs paper {paper_ns} ({err:.3})");
        let speedup = baseline.as_ns() / ns;
        assert!(
            (speedup - paper_speedup).abs() / paper_speedup < 0.08,
            "{tables}t dim{dim}: speedup {speedup:.1} vs paper {paper_speedup}"
        );
    }
    // Paper band: "18.7~72.4x embedding lookup speedup".
}

/// §5.4: "the embedding lookups only cost less than 1 microsecond ... the
/// bottleneck shifts back to computation".
#[test]
fn bottleneck_shifts_to_compute() {
    let engine = MicroRec::builder(ModelSpec::small_production()).build().unwrap();
    assert!(engine.placement_cost().lookup_latency.as_us() < 1.0);
    assert!(engine.pipeline().bottleneck().contains("compute"));
}

/// Figure 7: multi-round robustness — the small model tolerates more
/// rounds than the large one, and fp16 knees exist while extra rounds
/// degrade throughput proportionally afterwards.
#[test]
fn figure7_knees() {
    let knee = |model: ModelSpec| {
        let engine = MicroRec::builder(model).precision(Precision::Fixed16).build().unwrap();
        let pipe = engine.pipeline();
        let base = pipe.throughput_items_per_sec();
        (1..=16)
            .find(|&r| pipe.with_lookup_rounds(r).throughput_items_per_sec() < base * 0.999)
            .unwrap_or(17)
    };
    let small = knee(ModelSpec::small_production());
    let large = knee(ModelSpec::large_production());
    assert!(small > large, "small knee {small} must exceed large knee {large}");
    assert!((5..=9).contains(&small), "paper: small tolerates 6 rounds, got {small}");
    assert!((3..=7).contains(&large), "paper: large tolerates 4 rounds, got {large}");
}

/// Appendix: the FPGA serves a fixed query volume cheaper than the CPU.
#[test]
fn cost_conclusion() {
    use microrec_core::{AwsPrices, CostReport};
    let report =
        end_to_end_report(&ModelSpec::small_production(), Precision::Fixed32, &[2048]).unwrap();
    let cost = CostReport::build(
        report.cpu[0].items_per_sec,
        report.fpga.items_per_sec,
        AwsPrices::default(),
    );
    assert!(cost.advantage() > 1.0);
}
