//! A minimal row-major matrix type.

use std::fmt;

use crate::error::DnnError;

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use microrec_dnn::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// assert_eq!(m.get(0, 2), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix element-wise from `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, DnnError> {
        if data.len() != rows * cols {
            return Err(DnnError::ShapeMismatch {
                context: "Matrix::from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The transpose.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Largest absolute element (0 for an empty matrix).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f32);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 5]),
            Err(DnnError::ShapeMismatch { expected: 4, actual: 5, .. })
        ));
    }

    #[test]
    fn set_and_mutate() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.0);
        assert_eq!(m.get(1, 0), 7.0);
        m.as_mut_slice()[0] = -3.0;
        assert_eq!(m.get(0, 0), -3.0);
        assert_eq!(m.max_abs(), 7.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = m.transposed();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_index_panics() {
        let _ = Matrix::zeros(1, 1).get(0, 1);
    }
}
