//! Bounded MPSC admission queue with batch-forming pop.
//!
//! Producers (request threads) push single requests; consumers (engine
//! workers) pop whole micro-batches. The queue is bounded, which is the
//! admission-control half of the runtime: when it is full a producer
//! either blocks (`push_blocking`, backpressure) or is turned away
//! (`try_push`, reject policy). The batch-forming pop implements the same
//! close rule as [`plan_batches`](super::batcher::plan_batches), but
//! against the wall clock: close at `max_batch` items or at the oldest
//! request's deadline, whichever first, and drain unconditionally once
//! the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use super::batcher::BatchClose;
use crate::sync::{lock_or_recover, recover};

/// Why a push was refused.
#[derive(Debug)]
pub(crate) enum PushError<T> {
    /// The queue is at capacity (reject-policy admission control).
    Full(T),
    /// The queue has been closed for shutdown.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue whose consumers pop micro-batches.
#[derive(Debug)]
pub(crate) struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // Queue state stays consistent under panics (each mutation is a
        // single push/drain), so a poisoned lock is recovered, not fatal.
        lock_or_recover(&self.state)
    }

    /// Pushes, blocking while the queue is full. Returns the item if the
    /// queue closed before space appeared (the request was never admitted).
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = recover(self.not_full.wait(state));
        }
    }

    /// Pushes without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Closes the queue: future pushes fail, blocked producers wake with
    /// their item returned, and consumers drain what remains.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Pops the next micro-batch, blocking until one closes.
    ///
    /// `head_deadline` maps the oldest queued item to the instant its
    /// batch must close (its enqueue time plus the wait window). Returns
    /// `None` once the queue is closed **and** empty — the clean-drain
    /// termination signal.
    pub fn pop_batch<F>(&self, max_batch: usize, head_deadline: F) -> Option<(Vec<T>, BatchClose)>
    where
        F: Fn(&T) -> Instant,
    {
        let max_batch = max_batch.max(1);
        let mut state = self.lock();
        loop {
            if state.items.len() >= max_batch {
                return Some(self.take(&mut state, max_batch, BatchClose::Size));
            }
            if state.closed {
                if state.items.is_empty() {
                    return None;
                }
                return Some(self.take(&mut state, max_batch, BatchClose::Drain));
            }
            match state.items.front() {
                None => state = recover(self.not_empty.wait(state)),
                Some(head) => {
                    let deadline = head_deadline(head);
                    let now = Instant::now();
                    if now >= deadline {
                        let n = state.items.len();
                        return Some(self.take(&mut state, n, BatchClose::Deadline));
                    }
                    let (s, _timeout) = recover(self.not_empty.wait_timeout(state, deadline - now));
                    state = s;
                }
            }
        }
    }

    fn take(
        &self,
        state: &mut MutexGuard<'_, State<T>>,
        n: usize,
        close: BatchClose,
    ) -> (Vec<T>, BatchClose) {
        let n = n.min(state.items.len());
        // lint: allow(transitive-hot-path-alloc) ownership handoff: one Vec per micro-batch crosses the queue boundary
        let batch: Vec<T> = state.items.drain(..n).collect();
        // Space freed: wake every blocked producer (each re-checks).
        self.not_full.notify_all();
        (batch, close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    /// A queue item carrying its enqueue instant, like a real request.
    struct Item(u32, Instant);

    fn item(v: u32) -> Item {
        Item(v, Instant::now())
    }

    fn deadline_after(wait: Duration) -> impl Fn(&Item) -> Instant {
        move |it: &Item| it.1 + wait
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = BoundedQueue::new(16);
        for v in 0..10u32 {
            q.try_push(item(v)).map_err(|_| ()).unwrap();
        }
        let (batch, close) = q.pop_batch(10, deadline_after(Duration::from_secs(1))).unwrap();
        assert_eq!(close, BatchClose::Size);
        let got: Vec<u32> = batch.iter().map(|i| i.0).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_rejects_when_full() {
        let q = BoundedQueue::new(2);
        q.try_push(item(0)).map_err(|_| ()).unwrap();
        q.try_push(item(1)).map_err(|_| ()).unwrap();
        match q.try_push(item(2)) {
            Err(PushError::Full(it)) => assert_eq!(it.0, 2),
            other => panic!("expected Full, got {:?}", other.map_err(|_| "err")),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn deadline_close_returns_partial_batch() {
        let q = BoundedQueue::new(16);
        q.try_push(item(7)).map_err(|_| ()).unwrap();
        let start = Instant::now();
        let (batch, close) = q.pop_batch(8, deadline_after(Duration::from_millis(20))).unwrap();
        assert_eq!(close, BatchClose::Deadline);
        assert_eq!(batch.len(), 1);
        let waited = start.elapsed();
        assert!(waited >= Duration::from_millis(15), "closed too early: {waited:?}");
    }

    #[test]
    fn close_wakes_blocked_producer_with_item_back() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(item(0)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_blocking(item(1)));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        let refused = producer.join().unwrap();
        assert!(refused.is_err(), "close must hand the item back");
        assert_eq!(refused.unwrap_err().0, 1);
    }

    #[test]
    fn blocked_producer_resumes_when_space_frees() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(item(0)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_blocking(item(1)));
        std::thread::sleep(Duration::from_millis(30));
        // Consume one: the producer must slot in.
        let (batch, _) = q.pop_batch(1, deadline_after(Duration::from_secs(1))).unwrap();
        assert_eq!(batch[0].0, 0);
        producer.join().unwrap().map_err(|_| ()).unwrap();
        let (batch, _) = q.pop_batch(1, deadline_after(Duration::from_secs(1))).unwrap();
        assert_eq!(batch[0].0, 1);
    }

    #[test]
    fn poisoned_queue_still_closes_and_drains() {
        // Regression for poison tolerance: `head_deadline` runs while the
        // state lock is held, so a panic inside it poisons the mutex with
        // items still queued. Every subsequent operation — push, close,
        // drain — must recover the lock instead of propagating the panic,
        // otherwise shutdown would deadlock or crash the caller.
        let q = Arc::new(BoundedQueue::new(16));
        q.try_push(item(1)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            q2.pop_batch(8, |_: &Item| panic!("engine worker dies mid-batch"))
        });
        assert!(consumer.join().is_err(), "the injected panic must surface");

        // The queue must remain fully operational on the poisoned lock.
        q.try_push(item(2)).map_err(|_| ()).unwrap();
        assert_eq!(q.len(), 2);
        q.close();
        let (batch, close) = q.pop_batch(8, deadline_after(Duration::from_secs(1))).unwrap();
        assert_eq!(close, BatchClose::Drain);
        let got: Vec<u32> = batch.iter().map(|i| i.0).collect();
        assert_eq!(got, vec![1, 2], "no item may be lost to the poisoned lock");
        assert!(q.pop_batch(8, deadline_after(Duration::from_secs(1))).is_none());
    }

    #[test]
    fn closed_queue_drains_then_signals_done() {
        let q = BoundedQueue::new(16);
        for v in 0..5u32 {
            q.try_push(item(v)).map_err(|_| ()).unwrap();
        }
        q.close();
        assert!(matches!(q.try_push(item(99)), Err(PushError::Closed(_))));
        let (batch, close) = q.pop_batch(3, deadline_after(Duration::from_secs(1))).unwrap();
        // A full batch is still a size close even mid-drain.
        assert_eq!(close, BatchClose::Size);
        assert_eq!(batch.len(), 3);
        let (batch, close) = q.pop_batch(3, deadline_after(Duration::from_secs(1))).unwrap();
        assert_eq!(close, BatchClose::Drain);
        assert_eq!(batch.len(), 2);
        assert!(q.pop_batch(3, deadline_after(Duration::from_secs(1))).is_none());
    }
}
