//! Steady-state hot function: writes into a caller-provided buffer.

pub fn hot_fn(out: &mut [u32]) {
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = (i as u32) * 2;
    }
}
