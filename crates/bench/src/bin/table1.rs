//! Regenerates Table 1: specification of the production models.

use microrec_bench::print_table;
use microrec_embedding::{ModelSpec, Precision};

fn main() {
    let rows: Vec<Vec<String>> = [ModelSpec::small_production(), ModelSpec::large_production()]
        .iter()
        .map(|m| {
            vec![
                m.name.clone(),
                m.num_tables().to_string(),
                m.feature_len().to_string(),
                format!("{:?}", m.hidden),
                format!("{:.1} GB", m.total_bytes(Precision::F32) as f64 / 1e9),
            ]
        })
        .collect();
    print_table(
        "Table 1: Specification of the production models",
        &["Model", "Table Num", "Feat Len", "Hidden-Layer", "Size"],
        &rows,
    );
    println!("\nPaper: Small 47 tables / 352 / (1024,512,256) / 1.3 GB");
    println!("       Large 98 tables / 876 / (1024,512,256) / 15.1 GB");
}
