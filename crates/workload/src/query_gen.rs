//! Query generation: sparse-feature index sampling.
//!
//! Production recommendation traffic is heavily skewed — a few hot users,
//! items and categories dominate (this is what makes memory-side caching
//! viable in RecNMP, cited in §6, and what keeps CPU caches thrashing on
//! the long tail). Queries here sample each table's index from a Zipfian
//! distribution with configurable skew; `s = 0` recovers uniform traffic.

use microrec_embedding::ModelSpec;
use microrec_rng::{Rng, Zipf};

use crate::error::WorkloadError;

/// Configuration of the query generator.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGenConfig {
    /// Zipf exponent (`0.0` = uniform; production traces are typically
    /// 0.9–1.2).
    pub zipf_exponent: f64,
    /// RNG seed; equal seeds give identical query streams.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig { zipf_exponent: 1.05, seed: 0x4D1C_20EC }
    }
}

/// A reproducible stream of queries for one model.
///
/// Each query carries `lookups_per_table` indices per table, round-major
/// (matching [`CpuReferenceEngine::predict`]'s layout).
///
/// [`CpuReferenceEngine::predict`]: https://docs.rs/microrec-cpu
///
/// # Examples
///
/// ```
/// use microrec_embedding::ModelSpec;
/// use microrec_workload::{QueryGenConfig, QueryGenerator};
///
/// let model = ModelSpec::dlrm_rmc2(8, 16);
/// let mut generator = QueryGenerator::new(&model, QueryGenConfig::default())?;
/// let query = generator.next_query();
/// assert_eq!(query.len(), 8 * 4);
/// # Ok::<(), microrec_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    rows: Vec<u64>,
    lookups_per_table: u32,
    zipf_exponent: f64,
    rng: Rng,
}

impl QueryGenerator {
    /// Creates a generator for `model`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for a negative or
    /// non-finite Zipf exponent.
    pub fn new(model: &ModelSpec, config: QueryGenConfig) -> Result<Self, WorkloadError> {
        if !config.zipf_exponent.is_finite() || config.zipf_exponent < 0.0 {
            return Err(WorkloadError::InvalidConfig(format!(
                "zipf exponent must be finite and >= 0, got {}",
                config.zipf_exponent
            )));
        }
        Ok(QueryGenerator {
            rows: model.tables.iter().map(|t| t.rows).collect(),
            lookups_per_table: model.lookups_per_table,
            zipf_exponent: config.zipf_exponent,
            rng: Rng::seed_from_u64(config.seed),
        })
    }

    /// Samples one index in `[0, rows)`.
    fn sample_index(&mut self, rows: u64) -> u64 {
        if rows <= 1 {
            return 0;
        }
        if self.zipf_exponent == 0.0 {
            return self.rng.gen_range_u64(0, rows);
        }
        // Zipf ranks are 1-based; rank 1 (hottest) -> 0.
        let zipf = Zipf::new(rows, self.zipf_exponent).expect("validated parameters");
        zipf.sample(&mut self.rng).saturating_sub(1).min(rows - 1)
    }

    /// Generates the next query (round-major index layout).
    pub fn next_query(&mut self) -> Vec<u64> {
        let tables = self.rows.len();
        let mut q = Vec::with_capacity(tables * self.lookups_per_table as usize);
        for _round in 0..self.lookups_per_table {
            for t in 0..tables {
                let rows = self.rows[t];
                q.push(self.sample_index(rows));
            }
        }
        q
    }

    /// Generates a batch of `n` queries.
    pub fn next_batch(&mut self, n: usize) -> Vec<Vec<u64>> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelSpec {
        ModelSpec::dlrm_rmc2(4, 8)
    }

    #[test]
    fn queries_have_correct_shape_and_range() {
        let m = model();
        let mut g = QueryGenerator::new(&m, QueryGenConfig::default()).unwrap();
        for _ in 0..100 {
            let q = g.next_query();
            assert_eq!(q.len(), 16);
            for (i, &idx) in q.iter().enumerate() {
                let rows = m.tables[i % 4].rows;
                assert!(idx < rows, "index {idx} out of range");
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let m = model();
        let mut a = QueryGenerator::new(&m, QueryGenConfig::default()).unwrap();
        let mut b = QueryGenerator::new(&m, QueryGenConfig::default()).unwrap();
        assert_eq!(a.next_batch(10), b.next_batch(10));
        let mut c =
            QueryGenerator::new(&m, QueryGenConfig { seed: 9, ..Default::default() }).unwrap();
        assert_ne!(a.next_batch(10), c.next_batch(10));
    }

    #[test]
    fn zipf_skews_toward_hot_indices() {
        let m = model();
        let cfg = QueryGenConfig { zipf_exponent: 1.2, seed: 1 };
        let mut g = QueryGenerator::new(&m, cfg).unwrap();
        let mut hot = 0usize;
        let n = 2_000;
        for _ in 0..n {
            let q = g.next_query();
            // Count how often table 0's first lookup hits the top-10 ids.
            if q[0] < 10 {
                hot += 1;
            }
        }
        // Under uniform sampling of 500k rows this would be ~0.
        assert!(hot > n / 10, "only {hot}/{n} hot hits under Zipf");
    }

    #[test]
    fn uniform_mode_covers_the_range() {
        let m = model();
        let cfg = QueryGenConfig { zipf_exponent: 0.0, seed: 2 };
        let mut g = QueryGenerator::new(&m, cfg).unwrap();
        let max = (0..500).map(|_| g.next_query()[0]).max().unwrap();
        assert!(max > 250_000, "uniform sampling should reach high ids, max {max}");
    }

    #[test]
    fn invalid_exponent_rejected() {
        let m = model();
        assert!(
            QueryGenerator::new(&m, QueryGenConfig { zipf_exponent: f64::NAN, seed: 0 }).is_err()
        );
        assert!(QueryGenerator::new(&m, QueryGenConfig { zipf_exponent: -1.0, seed: 0 }).is_err());
    }

    #[test]
    fn single_row_tables_always_index_zero() {
        let mut m = model();
        for t in &mut m.tables {
            t.rows = 1;
        }
        let mut g = QueryGenerator::new(&m, QueryGenConfig::default()).unwrap();
        assert!(g.next_query().iter().all(|&i| i == 0));
    }
}
