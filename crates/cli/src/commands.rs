//! Command implementations, returning their output as strings (testable).

use std::fmt::Write as _;

use microrec_core::{
    best_fitting, explore_design_space, replay_trace, simulate_hybrid_serving,
    simulate_microrec_serving, AdmissionPolicy, ExecutionMode, HybridConfig, MicroRec,
    RuntimeConfig, ServingRuntime,
};
use microrec_cpu::CpuTimingModel;
use microrec_embedding::{Precision, RowFormat};
use microrec_memsim::{MemoryConfig, SimTime};
use microrec_placement::{heuristic_search, AllocStrategy, HeuristicOptions};
use microrec_workload::{PoissonArrivals, QueryGenConfig, QueryGenerator, RequestTrace};

use crate::args::ModelArg;

/// Boxed error shorthand.
pub type CliResult = Result<String, Box<dyn std::error::Error>>;

/// `microrec plan`.
pub fn run_plan(
    model: &ModelArg,
    no_merge: bool,
    strategy: AllocStrategy,
    verbose: bool,
    json: bool,
) -> CliResult {
    let spec = model.to_spec();
    let out = heuristic_search(
        &spec,
        &MemoryConfig::u280(),
        Precision::F32,
        &HeuristicOptions { allow_merge: !no_merge, strategy, ..Default::default() },
    )?;
    if json {
        return Ok(microrec_json::to_string_pretty(&out.plan) + "\n");
    }
    let mut s = String::new();
    writeln!(s, "model: {} ({} logical tables)", spec.name, spec.num_tables())?;
    writeln!(
        s,
        "plan:  {} physical tables ({} merged pairs), {} in DRAM, {} on chip",
        out.plan.num_tables(),
        out.plan.merge.groups.len(),
        out.cost.tables_in_dram,
        out.cost.tables_on_chip,
    )?;
    writeln!(
        s,
        "cost:  lookup {} | {} DRAM round(s) | storage {:.2} GB ({:+.2}% overhead)",
        out.cost.lookup_latency,
        out.cost.dram_rounds,
        out.cost.storage_bytes as f64 / 1e9,
        (out.cost.storage_bytes as f64 / spec.total_bytes(Precision::F32) as f64 - 1.0) * 100.0,
    )?;
    writeln!(s, "search: {} solutions evaluated", out.evaluated)?;
    if verbose {
        writeln!(s, "\nbank map:")?;
        for table in &out.plan.placed {
            let banks: Vec<String> = table.banks.iter().map(ToString::to_string).collect();
            writeln!(
                s,
                "  {:<28} {:>12} rows x dim {:<3} -> {}",
                table.spec.name,
                table.spec.rows,
                table.spec.dim,
                banks.join(", ")
            )?;
        }
    }
    Ok(s)
}

/// `microrec predict`.
pub fn run_predict(
    model: &ModelArg,
    queries: usize,
    precision: Precision,
    zipf: f64,
    seed: u64,
) -> CliResult {
    let spec = model.to_spec();
    let mut engine = MicroRec::builder(spec.clone()).precision(precision).seed(seed).build()?;
    let mut gen = QueryGenerator::new(&spec, QueryGenConfig { zipf_exponent: zipf, seed })?;
    let mut s = String::new();
    writeln!(s, "model: {} | precision {precision} | {queries} queries", spec.name)?;
    for i in 0..queries {
        let q = gen.next_query();
        let ctr = engine.predict(&q)?;
        writeln!(s, "  query {i:>3}: CTR {ctr:.4}")?;
    }
    let stats = engine.memory().stats().total();
    writeln!(s, "memory: {} reads, {} bytes, busy {}", stats.reads, stats.bytes, stats.busy)?;
    writeln!(
        s,
        "timing: {} per item, {:.0} items/s steady state",
        engine.latency(),
        engine.throughput_items_per_sec()
    )?;
    Ok(s)
}

/// `microrec compare`.
pub fn run_compare(model: &ModelArg, batch: u64, precision: Precision) -> CliResult {
    let spec = model.to_spec();
    let engine = MicroRec::builder(spec.clone()).precision(precision).build()?;
    let cpu = CpuTimingModel::aws_16vcpu();
    let cpu_latency = cpu.total_time(&spec, batch);
    let fpga_batch = engine.batch_latency(batch);
    let mut s = String::new();
    writeln!(s, "model: {} | batch {batch} | precision {precision}", spec.name)?;
    writeln!(
        s,
        "CPU:      {:>12} for the batch | {:>10.0} items/s | {:.1} GOP/s",
        cpu_latency.to_string(),
        cpu.throughput_items_per_sec(&spec, batch),
        cpu.throughput_ops_per_sec(&spec, batch) / 1e9,
    )?;
    writeln!(
        s,
        "MicroRec: {:>12} for the batch | {:>10.0} items/s | {:.1} GOP/s | {} per item",
        fpga_batch.to_string(),
        engine.throughput_items_per_sec(),
        engine.throughput_ops_per_sec() / 1e9,
        engine.latency(),
    )?;
    writeln!(s, "speedup:  {:.2}x", cpu_latency.as_ns() / fpga_batch.as_ns())?;
    Ok(s)
}

/// `microrec explore`.
pub fn run_explore(model: &ModelArg, precision: Precision, top: usize) -> CliResult {
    let spec = model.to_spec();
    let base = MicroRec::builder(spec.clone()).precision(precision).build()?;
    let lookup = base.placement_cost().lookup_latency;
    let points = explore_design_space(&spec, precision, lookup, 32, 512)?;
    let mut fitting: Vec<_> = points.iter().filter(|p| p.fits).collect();
    fitting.sort_by(|a, b| b.throughput.total_cmp(&a.throughput));
    let mut s = String::new();
    writeln!(
        s,
        "{} {precision}: {} designs evaluated, {} fit the U280",
        spec.name,
        points.len(),
        fitting.len()
    )?;
    for p in fitting.iter().take(top) {
        writeln!(
            s,
            "  {:?} @ {} MHz -> {:.0}k items/s, {:.1} us",
            p.config.pes_per_layer,
            p.config.clock_hz / 1_000_000,
            p.throughput / 1e3,
            p.latency.as_us()
        )?;
    }
    if let Some(best) = best_fitting(&points) {
        writeln!(s, "best: {:?}", best.config.pes_per_layer)?;
    }
    Ok(s)
}

/// `microrec serve`.
pub fn run_serve(
    model: &ModelArg,
    rate: f64,
    queries: usize,
    sla_ms: f64,
    hybrid: bool,
) -> CliResult {
    let spec = model.to_spec();
    let engine = MicroRec::builder(spec.clone()).build()?;
    let sla = SimTime::from_ms(sla_ms);
    let mut arrivals = PoissonArrivals::new(rate, 0xACCE55)?;
    let trace = arrivals.take(queries);
    let mut s = String::new();
    writeln!(
        s,
        "model {} | {rate:.0} QPS offered vs {:.0} items/s capacity | SLA {sla_ms} ms",
        spec.name,
        engine.throughput_items_per_sec()
    )?;
    let fpga = simulate_microrec_serving(&engine, &trace, sla)?;
    writeln!(
        s,
        "MicroRec only: p50 {} p99 {} SLA hit {:.2}%",
        fpga.latency.p50,
        fpga.latency.p99,
        fpga.sla_hit_rate * 100.0
    )?;
    if hybrid {
        let cpu = CpuTimingModel::aws_16vcpu();
        let report =
            simulate_hybrid_serving(&engine, &cpu, &spec, &HybridConfig::default(), &trace, sla)?;
        writeln!(
            s,
            "Hybrid:        p50 {} p99 {} SLA hit {:.2}% ({:.1}% on FPGA)",
            report.combined.latency.p50,
            report.combined.latency.p99,
            report.combined.sla_hit_rate * 100.0,
            report.fpga_fraction * 100.0
        )?;
    }
    Ok(s)
}

/// Hot-row cache capacity used when `--adaptive` asks for per-table
/// traffic counters but the command line did not otherwise request one.
const ADAPTIVE_CACHE_ROWS: usize = 4096;

/// `microrec serve --live`: drives the real micro-batching runtime with a
/// paced wall-clock replay of a seeded Poisson trace. A non-zero
/// `resident_bytes` serves the embeddings through the tiered parameter
/// store, keeping at most that many bytes of tables resident (f32 rows,
/// bit-identical to the all-resident engine) and the rest file-backed.
/// `--adaptive` additionally equips the engine with a shared embedding
/// arena and a hot-row cache so the re-sharding driver has per-table
/// counters to distill and a store generation to republish.
pub fn run_serve_live(
    model: &ModelArg,
    rate: f64,
    queries: usize,
    config: RuntimeConfig,
    resident_bytes: u64,
) -> CliResult {
    let spec = model.to_spec();
    let trace = RequestTrace::generate(&spec, rate, queries, QueryGenConfig::default())?;
    let mut builder = MicroRec::builder(spec.clone());
    if resident_bytes > 0 {
        builder = builder.tiered_storage(resident_bytes, RowFormat::F32);
    } else if config.adaptive {
        builder = builder.embedding_arena(RowFormat::F32);
    }
    if config.adaptive {
        builder = builder.hot_row_cache(ADAPTIVE_CACHE_ROWS);
    }
    let mut runtime = ServingRuntime::start(builder, config)?;
    let resolved = runtime.resolved_execution();
    let plan_line = runtime.plan().map(|p| (p.summary(), p.fifo_depth, p.spin_rounds));
    let calibration = runtime.calibration().cloned();
    let outcome = replay_trace(&runtime, &trace);
    let router = runtime.router_snapshot();
    let snap = runtime.shutdown();
    let lookup = runtime.lookup_stats();
    let migrations = runtime.migration_records();
    let mut s = String::new();
    let mode = if config.execution == ExecutionMode::Auto {
        format!("auto->{}", resolved.as_str())
    } else {
        resolved.as_str().to_string()
    };
    writeln!(
        s,
        "model {} | live runtime: {} {} worker(s), max_batch {}, wait {} us, queue {} ({})",
        spec.name,
        config.workers,
        mode,
        config.max_batch,
        config.max_wait_us,
        config.queue_depth,
        match config.admission {
            AdmissionPolicy::Block => "block",
            AdmissionPolicy::Reject => "reject",
        },
    )?;
    if let Some(cal) = &calibration {
        writeln!(
            s,
            "auto:  monolithic {:.1} us vs pipelined {:.1} us per item \
             (lookup {:.1} us, hop {:.1} us, {} core(s))",
            cal.monolithic_us, cal.pipelined_us, cal.lookup_us, cal.hop_us, cal.cores,
        )?;
    }
    if let Some((summary, fifo_depth, spin_rounds)) = &plan_line {
        writeln!(s, "plan:  {summary} (fifo depth {fifo_depth}, spin {spin_rounds})")?;
    }
    if let Some(router) = &router {
        let hit_rate = router
            .traffic_hit_rate
            .map_or_else(|| "warming".to_string(), |r| format!("{:.0}%", r * 100.0));
        writeln!(
            s,
            "router: {} path(s), {} SLO fallback(s), {} probe(s), traffic hit-rate {}",
            router.paths.len(),
            router.slo_fallbacks,
            router.probes,
            hit_rate,
        )?;
        for path in &router.paths {
            write!(
                s,
                "path {:>20}: {:>5} batches / {:>6} items | cost {:.1} + {:.2}n us",
                path.descriptor.name,
                path.dispatches,
                path.items,
                path.cost.fixed_us,
                path.cost.per_item_us,
            )?;
            if path.dispatches > 0 {
                write!(
                    s,
                    " | predicted {:.1} vs observed {:.1} us",
                    path.mean_predicted_us, path.mean_observed_us,
                )?;
            }
            writeln!(s)?;
        }
    }
    writeln!(
        s,
        "load:  {:.0} QPS offered, {:.0} QPS sustained ({} of {} completed, drop rate {:.2}%)",
        outcome.offered_qps,
        outcome.qps,
        outcome.completed,
        outcome.offered,
        snap.drop_rate() * 100.0,
    )?;
    writeln!(
        s,
        "tail:  p50 {:.0} us | p95 {:.0} us | p99 {:.0} us | p999 {:.0} us | mean {:.0} us",
        snap.latency.p50_us,
        snap.latency.p95_us,
        snap.latency.p99_us,
        snap.latency.p999_us,
        snap.mean_latency_us,
    )?;
    writeln!(
        s,
        "batch: mean size {:.2} over {} batches ({} size-closed, {} deadline-closed, {} drained)",
        snap.mean_batch_size,
        snap.batches,
        snap.size_closes,
        snap.deadline_closes,
        snap.drain_closes,
    )?;
    if let Some(lookup) = lookup.as_ref().filter(|l| l.tiered) {
        writeln!(
            s,
            "tier:  {} resident hits, {} cold reads ({} prefetched, {:.1} KiB from disk), \
             cold tier {}",
            lookup.resident_hits,
            lookup.cold_reads,
            lookup.prefetch_hits,
            lookup.bytes_from_cold as f64 / 1024.0,
            if lookup.cold_tier_healthy() { "healthy" } else { "UNHEALTHY" },
        )?;
    }
    if config.adaptive {
        writeln!(s, "adapt: {} online migration(s)", migrations.len())?;
        for m in &migrations {
            writeln!(
                s,
                "  gen {:>3}: {} table(s) moved | divergence {:.1}% | weighted lookup \
                 {:.2} -> {:.2} us | build {} us, swap {} us",
                m.generation,
                m.tables_moved,
                m.divergence * 100.0,
                m.old_weighted_us,
                m.new_weighted_us,
                m.build_us,
                m.swap_us,
            )?;
        }
    }
    if let Some(stages) = &snap.stages {
        for stage in stages {
            write!(
                s,
                "stage {:>6}: {} items, {} stalls, {} backpressure, mean occupancy {:.2}",
                stage.name,
                stage.items,
                stage.stalls,
                stage.backpressure,
                stage.mean_occupancy(),
            )?;
            if stage.lanes > 1 {
                write!(s, ", {} lanes", stage.lanes)?;
            }
            writeln!(s)?;
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_output_mentions_structure() {
        let out =
            run_plan(&ModelArg::Small, false, AllocStrategy::RoundRobin, false, false).unwrap();
        assert!(out.contains("42 physical tables"), "{out}");
        assert!(out.contains("1 DRAM round"), "{out}");
        let out =
            run_plan(&ModelArg::Small, true, AllocStrategy::RoundRobin, false, false).unwrap();
        assert!(out.contains("47 physical tables"), "{out}");
    }

    #[test]
    fn verbose_plan_lists_every_table() {
        let out = run_plan(
            &ModelArg::Dlrm { tables: 4, dim: 8 },
            false,
            AllocStrategy::RoundRobin,
            true,
            false,
        )
        .unwrap();
        for i in 0..4 {
            assert!(out.contains(&format!("rmc2_{i:02}_d8")), "{out}");
        }
    }

    #[test]
    fn json_plan_round_trips() {
        let out = run_plan(
            &ModelArg::Dlrm { tables: 4, dim: 8 },
            false,
            AllocStrategy::RoundRobin,
            false,
            true,
        )
        .unwrap();
        let plan: microrec_placement::Plan = microrec_json::from_str(&out).unwrap();
        assert_eq!(plan.num_tables(), 4);
        plan.validate(&ModelArg::Dlrm { tables: 4, dim: 8 }.to_spec(), &MemoryConfig::u280())
            .unwrap();
    }

    #[test]
    fn predict_produces_ctrs() {
        let out = run_predict(&ModelArg::Dlrm { tables: 4, dim: 4 }, 3, Precision::Fixed32, 1.0, 9)
            .unwrap();
        assert_eq!(out.matches("CTR 0.").count(), 3, "{out}");
        assert!(out.contains("memory:"), "{out}");
    }

    #[test]
    fn compare_reports_speedup() {
        let out = run_compare(&ModelArg::Small, 2048, Precision::Fixed16).unwrap();
        assert!(out.contains("speedup:"), "{out}");
        let x: f64 = out
            .split("speedup:")
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches("x\n")
            .trim_end_matches('x')
            .trim()
            .parse()
            .unwrap();
        assert!(x > 3.0, "speedup {x}");
    }

    #[test]
    fn serve_reports_sla() {
        let out =
            run_serve(&ModelArg::Dlrm { tables: 4, dim: 4 }, 10_000.0, 2_000, 25.0, true).unwrap();
        assert!(out.contains("SLA hit"), "{out}");
        assert!(out.contains("Hybrid"), "{out}");
    }

    #[test]
    fn serve_live_runs_the_runtime() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Monolithic,
            slo_us: 0,
            adaptive: false,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("200 of 200 completed"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("mean size"), "{out}");
        assert!(!out.contains("stage "), "{out}");
        assert!(!out.contains("adapt:"), "{out}");
    }

    #[test]
    fn serve_live_adaptive_reports_migrations() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Monolithic,
            slo_us: 0,
            adaptive: true,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("200 of 200 completed"), "{out}");
        // The default trace is near-uniform, so the line reports the
        // machinery is live even when no migration fires.
        assert!(out.contains("online migration(s)"), "{out}");
    }

    #[test]
    fn serve_live_pipelined_reports_stage_counters() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Pipelined,
            slo_us: 0,
            adaptive: false,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("pipelined worker(s)"), "{out}");
        assert!(out.contains("200 of 200 completed"), "{out}");
        assert!(out.contains("stage lookup"), "{out}");
        assert!(out.contains("stage   sink"), "{out}");
    }

    #[test]
    fn serve_live_replicated_reports_lanes() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Replicated,
            slo_us: 0,
            adaptive: false,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("replicated worker(s)"), "{out}");
        assert!(out.contains("200 of 200 completed"), "{out}");
        assert!(out.contains("plan:  lookup x2"), "{out}");
        assert!(out.contains("2 lanes"), "{out}");
    }

    #[test]
    fn serve_live_auto_calibrates_and_routes() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Auto,
            slo_us: 0,
            adaptive: false,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("auto->"), "{out}");
        assert!(out.contains("auto:  monolithic"), "{out}");
        assert!(out.contains("200 of 200 completed"), "{out}");
    }

    #[test]
    fn serve_live_routed_reports_dispatch_table() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Routed,
            slo_us: 50_000,
            adaptive: false,
        };
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 0).unwrap();
        assert!(out.contains("routed worker(s)"), "{out}");
        assert!(out.contains("200 of 200 completed"), "{out}");
        assert!(out.contains("router:"), "{out}");
        assert!(out.contains("SLO fallback(s)"), "{out}");
        // The full path matrix is registered and priced (default builder
        // has no hot-row cache, so the monolithic path is the nocache one).
        for path in ["monolithic-nocache", "pipelined", "pool"] {
            assert!(out.contains(&format!("path {path:>20}:")), "missing {path} in {out}");
        }
        // Every admitted batch was dispatched somewhere.
        let dispatched: u64 = out
            .lines()
            .filter(|l| l.starts_with("path "))
            .filter_map(|l| l.split_whitespace().nth(2).and_then(|n| n.parse::<u64>().ok()))
            .sum();
        assert!(dispatched > 0, "{out}");
    }

    #[test]
    fn serve_live_tiered_reports_tier_counters() {
        let config = RuntimeConfig {
            workers: 1,
            max_batch: 8,
            max_wait_us: 2_000,
            queue_depth: 256,
            admission: AdmissionPolicy::Block,
            execution: ExecutionMode::Monolithic,
            slo_us: 0,
            adaptive: false,
        };
        // dlrm:4x4 is 32 MiB of f32 rows; an 8 MiB budget keeps one table
        // resident and serves the other three from the cold file.
        let out =
            run_serve_live(&ModelArg::Dlrm { tables: 4, dim: 4 }, 2_000.0, 200, config, 8 << 20)
                .unwrap();
        assert!(out.contains("200 of 200 completed"), "{out}");
        assert!(out.contains("tier:"), "{out}");
        assert!(out.contains("resident hits"), "{out}");
        assert!(out.contains("cold reads"), "{out}");
        assert!(out.contains("cold tier healthy"), "{out}");
    }

    #[test]
    fn explore_lists_designs() {
        let out = run_explore(&ModelArg::Small, Precision::Fixed16, 3).unwrap();
        assert!(out.contains("best:"), "{out}");
        assert!(out.contains("items/s"), "{out}");
    }
}
