//! Seeded ring-protocol violations: a push after close, a bare try_pop
//! spin loop, and a reorder-buffer insert without an occupancy check.

impl Endpoint {
    pub fn shutdown(&self) {
        self.ring.close();
        let _ = self.ring.try_push(SENTINEL);
    }

    pub fn consume(&mut self) {
        loop {
            if let Some(x) = self.ring.try_pop() {
                self.seen += x;
            }
        }
    }

    pub fn stash(&mut self, seq: u64) {
        if let Some(x) = self.ring.try_pop() {
            self.reorder.insert(seq, x);
        }
    }
}
