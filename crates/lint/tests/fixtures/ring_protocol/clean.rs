//! The close-then-drain consumer: polls, then checks `is_closed` before
//! looping again, and gates reorder inserts on occupancy.

impl Consumer {
    pub fn consume(&mut self) {
        loop {
            if let Some(x) = self.ring.try_pop() {
                self.seen += x;
                continue;
            }
            if self.ring.is_closed() {
                break;
            }
        }
    }

    pub fn stash(&mut self, seq: u64) {
        if let Some(x) = self.ring.try_pop() {
            if !self.reorder.is_full() {
                self.reorder.insert(seq, x);
            }
        }
    }
}
