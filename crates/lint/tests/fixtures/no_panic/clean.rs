//! Serving code that returns errors instead of panicking.

pub fn serve(values: &[f32]) -> Result<f32, &'static str> {
    match values.first() {
        Some(v) => Ok(*v),
        None => Err("empty batch"),
    }
}
